/**
 * @file
 * pf_report: the "where did the cycles go" tool.
 *
 * Runs the timing simulator for any (workload, policy, config) cell
 * — or a whole grid of them — and prints the cycle-accounting
 * breakdown: the share of issue slots each SlotBucket absorbed. The
 * accounting identity (buckets sum to cycles * issueWidth) is
 * re-verified on every run; a violation is a hard error.
 *
 * Usage:
 *   pf_report [--workload NAME]... [--policy NAME]...
 *             [--scale S] [--jobs N] [--width W]
 *             [--json PATH] [--csv PATH]
 *
 * Policies: superscalar, loop, loopFT, procFT, hammock, other,
 * postdoms, rec_pred, dmt. Defaults: every workload, superscalar +
 * postdoms, scale from PF_BENCH_SCALE (else 0.1).
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "driver/sweep.hh"
#include "stats/export.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace polyflow;

namespace {

struct Options
{
    std::vector<std::string> workloads;
    std::vector<std::string> policies;
    double scale = 0.1;
    int jobs = 0;
    int width = 0;  //!< 0 = config default
    std::string jsonPath;
    std::string csvPath;
};

[[noreturn]] void
usage(const char *msg)
{
    if (msg)
        std::fprintf(stderr, "pf_report: %s\n", msg);
    std::fprintf(
        stderr,
        "usage: pf_report [--workload NAME]... [--policy NAME]...\n"
        "                 [--scale S] [--jobs N] [--width W]\n"
        "                 [--json PATH] [--csv PATH]\n"
        "policies: superscalar loop loopFT procFT hammock other\n"
        "          postdoms rec_pred dmt\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    if (const char *s = std::getenv("PF_BENCH_SCALE")) {
        if (auto v = driver::parsePositiveDouble(s))
            opt.scale = *v;
    }
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage("missing value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--workload")) {
            opt.workloads.push_back(value(i));
        } else if (!std::strcmp(a, "--policy")) {
            opt.policies.push_back(value(i));
        } else if (!std::strcmp(a, "--scale")) {
            auto v = driver::parsePositiveDouble(value(i));
            if (!v)
                usage("--scale: expected a positive number");
            opt.scale = *v;
        } else if (!std::strcmp(a, "--jobs")) {
            opt.jobs = std::atoi(value(i));
            if (opt.jobs < 1)
                usage("--jobs: expected a positive integer");
        } else if (!std::strcmp(a, "--width")) {
            opt.width = std::atoi(value(i));
            if (opt.width < 1)
                usage("--width: expected a positive integer");
        } else if (!std::strcmp(a, "--json")) {
            opt.jsonPath = value(i);
        } else if (!std::strcmp(a, "--csv")) {
            opt.csvPath = value(i);
        } else if (!std::strcmp(a, "--help") ||
                   !std::strcmp(a, "-h")) {
            usage(nullptr);
        } else {
            usage(("unknown argument: " + std::string(a)).c_str());
        }
    }
    if (opt.workloads.empty())
        opt.workloads = allWorkloadNames();
    if (opt.policies.empty())
        opt.policies = {"superscalar", "postdoms"};
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    std::vector<driver::SweepCell> cells;
    for (const std::string &w : opt.workloads) {
        for (const std::string &p : opt.policies) {
            auto spec = driver::sourceSpecByName(p);
            if (!spec)
                usage(("unknown policy: " + p).c_str());
            MachineConfig cfg = p == "superscalar"
                ? MachineConfig::superscalar()
                : MachineConfig{};
            if (opt.width > 0)
                cfg.pipelineWidth = opt.width;
            cells.push_back({w, opt.scale, *spec, cfg, p});
        }
    }

    driver::SweepRunner runner(opt.jobs);
    const auto results = runner.run(cells, /*report=*/false);

    std::cout << "=== pf_report: cycle accounting (share of "
              << "cycles x issueWidth slots, %) ===\n"
              << "scale " << opt.scale << ", "
              << cells.size() << " runs\n\n";

    std::vector<std::string> header = {"benchmark", "run", "cycles",
                                       "IPC"};
    for (int b = 0; b < numSlotBuckets; ++b)
        header.push_back(slotBucketName(static_cast<SlotBucket>(b)));
    Table table(header);

    std::vector<stats::RunRecord> records;
    for (size_t i = 0; i < cells.size(); ++i) {
        const TimingResult &s = results[i].sim;
        if (s.slotTotal() != s.cycles * s.issueWidth) {
            std::fprintf(stderr,
                         "pf_report: accounting identity violated "
                         "for %s/%s: %llu slots != %llu cycles x "
                         "%llu\n",
                         cells[i].workload.c_str(),
                         cells[i].label.c_str(),
                         (unsigned long long)s.slotTotal(),
                         (unsigned long long)s.cycles,
                         (unsigned long long)s.issueWidth);
            return 1;
        }
        table.startRow();
        table.cell(cells[i].workload);
        table.cell(cells[i].label);
        table.cell(static_cast<unsigned long long>(s.cycles));
        table.cell(s.ipc());
        for (int b = 0; b < numSlotBuckets; ++b)
            table.cell(s.slotPercent(static_cast<SlotBucket>(b)), 1);
        records.push_back({cells[i].workload, cells[i].scale,
                           cells[i].label, s});
    }
    table.print(std::cout);

    if (!opt.jsonPath.empty()) {
        stats::writeFile(opt.jsonPath, stats::toJson(records));
        std::cout << "\nwrote " << opt.jsonPath << "\n";
    }
    if (!opt.csvPath.empty()) {
        stats::writeFile(opt.csvPath, stats::toCsv(records));
        std::cout << "wrote " << opt.csvPath << "\n";
    }
    return 0;
}
