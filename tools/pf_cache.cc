/**
 * @file
 * pf_cache: inspect and maintain the persistent artifact store
 * (store/artifact_store.hh).
 *
 * Usage:
 *   pf_cache [--dir PATH] list            # every entry, with status
 *   pf_cache [--dir PATH] verify          # validate; exit 1 on bad
 *   pf_cache [--dir PATH] gc [--max-bytes N]
 *                                         # drop invalid entries,
 *                                         # then trim oldest to N
 *   pf_cache [--dir PATH] purge           # delete every entry
 *
 * --dir defaults to $PF_CACHE_DIR, else ".pf-cache". All commands
 * work on a store that other processes are concurrently writing:
 * saves are atomic renames, so every file seen here is either a
 * complete entry or garbage that gc/verify will flag.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "store/artifact_store.hh"

using polyflow::store::ArtifactStore;
using polyflow::store::EntryInfo;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    if (msg)
        std::fprintf(stderr, "pf_cache: %s\n", msg);
    std::fprintf(stderr,
                 "usage: pf_cache [--dir PATH] "
                 "{list | verify | gc [--max-bytes N] | purge}\n");
    std::exit(2);
}

const char *
status(const EntryInfo &e)
{
    return e.valid ? "ok" : e.error.c_str();
}

int
cmdList(ArtifactStore &store)
{
    auto entries = store.entries();
    std::uintmax_t total = 0;
    for (const EntryInfo &e : entries) {
        total += e.fileBytes;
        std::printf("%-10s %10ju  %-44s  %s\n",
                    e.valid ? polyflow::store::artifactKindName(e.kind)
                            : "?",
                    e.fileBytes,
                    e.key.empty() ? "-" : e.key.c_str(), status(e));
    }
    std::printf("%zu entries, %ju bytes in %s\n", entries.size(),
                total, store.root().string().c_str());
    return 0;
}

int
cmdVerify(ArtifactStore &store)
{
    auto entries = store.entries();
    int bad = 0;
    for (const EntryInfo &e : entries) {
        if (e.valid)
            continue;
        ++bad;
        std::fprintf(stderr, "pf_cache: %s: %s\n",
                     e.path.string().c_str(), e.error.c_str());
    }
    std::printf("%zu entries, %d invalid\n", entries.size(), bad);
    return bad ? 1 : 0;
}

int
cmdGc(ArtifactStore &store, std::uintmax_t maxBytes, bool haveMax)
{
    int invalid = store.removeInvalid();
    int trimmed = haveMax ? store.trimToBytes(maxBytes) : 0;
    std::printf("removed %d invalid, trimmed %d entries\n", invalid,
                trimmed);
    return 0;
}

int
cmdPurge(ArtifactStore &store)
{
    std::printf("removed %d entries\n", store.clear());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    if (const char *env = std::getenv("PF_CACHE_DIR"))
        dir = env;
    if (dir.empty() || dir == "off" || dir == "none" || dir == "0")
        dir = ArtifactStore::defaultDir();

    std::string cmd;
    std::uintmax_t maxBytes = 0;
    bool haveMax = false;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage("missing value");
            return argv[++i];
        };
        if (!std::strcmp(a, "--dir")) {
            dir = value();
        } else if (!std::strcmp(a, "--max-bytes")) {
            char *end = nullptr;
            maxBytes = std::strtoumax(value(), &end, 10);
            if (!end || *end != '\0')
                usage("--max-bytes: expected an integer");
            haveMax = true;
        } else if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage(nullptr);
        } else if (cmd.empty()) {
            cmd = a;
        } else {
            usage(("unknown argument: " + std::string(a)).c_str());
        }
    }
    if (cmd.empty())
        usage("missing command");

    ArtifactStore store{dir};
    if (cmd == "list")
        return cmdList(store);
    if (cmd == "verify")
        return cmdVerify(store);
    if (cmd == "gc")
        return cmdGc(store, maxBytes, haveMax);
    if (cmd == "purge")
        return cmdPurge(store);
    usage(("unknown command: " + cmd).c_str());
}
