/**
 * @file
 * Unit tests for the IR: instructions, blocks, functions, modules,
 * the builder and the linker.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/module.hh"

namespace polyflow {
namespace {

TEST(Instruction, Classification)
{
    Instruction i;
    i.op = Opcode::BEQ;
    EXPECT_TRUE(i.isCondBranch());
    EXPECT_TRUE(i.isTerminator());
    EXPECT_TRUE(i.isControl());
    EXPECT_FALSE(i.isCall());

    i.op = Opcode::JAL;
    EXPECT_TRUE(i.isCall());
    EXPECT_FALSE(i.isTerminator());  // calls do not end blocks
    EXPECT_TRUE(i.isControl());

    i.op = Opcode::LD;
    EXPECT_TRUE(i.isLoad());
    EXPECT_TRUE(i.isMem());
    EXPECT_EQ(i.memBytes(), 8);

    i.op = Opcode::LW;
    EXPECT_TRUE(i.loadSigned());
    EXPECT_EQ(i.memBytes(), 4);

    i.op = Opcode::LBU;
    EXPECT_EQ(i.memBytes(), 1);
    EXPECT_FALSE(i.loadSigned());

    i.op = Opcode::SW;
    EXPECT_TRUE(i.isStore());
    EXPECT_EQ(i.memBytes(), 4);
    EXPECT_EQ(i.destReg(), -1);

    i.op = Opcode::JR;
    EXPECT_TRUE(i.isIndirectJump());
    EXPECT_TRUE(i.isTerminator());

    i.op = Opcode::RET;
    EXPECT_TRUE(i.isReturn());
    EXPECT_TRUE(i.isTerminator());
}

TEST(Instruction, DestAndSourceRegs)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.rd = 5;
    i.rs1 = 6;
    i.rs2 = 7;
    EXPECT_EQ(i.destReg(), 5);
    RegId srcs[2];
    EXPECT_EQ(i.srcRegs(srcs), 2);
    EXPECT_EQ(srcs[0], 6);
    EXPECT_EQ(srcs[1], 7);

    // r0 sources and destinations are dropped.
    i.rd = reg::zero;
    i.rs1 = reg::zero;
    EXPECT_EQ(i.destReg(), -1);
    EXPECT_EQ(i.srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], 7);

    // Stores read base and value, write nothing.
    Instruction st;
    st.op = Opcode::SD;
    st.rs1 = 3;
    st.rs2 = 4;
    EXPECT_EQ(st.destReg(), -1);
    EXPECT_EQ(st.srcRegs(srcs), 2);

    // Calls write the return-address register.
    Instruction call;
    call.op = Opcode::JAL;
    EXPECT_EQ(call.destReg(), reg::ra);

    // Returns read it.
    Instruction ret;
    ret.op = Opcode::RET;
    EXPECT_EQ(ret.srcRegs(srcs), 1);
    EXPECT_EQ(srcs[0], reg::ra);
}

TEST(Function, FallThroughResolution)
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    BlockId second = b.newBlock();
    BlockId third = b.newBlock();
    b.beq(reg::a0, reg::zero, third);
    b.setBlock(second);
    b.addi(reg::a0, reg::a0, 1);
    b.setBlock(third);
    b.halt();

    f.resolveFallThroughs();
    EXPECT_EQ(f.block(0).fallSucc(), second);
    EXPECT_EQ(f.block(0).takenSucc(), third);
    EXPECT_EQ(f.block(second).fallSucc(), third);
}

TEST(Function, ValidateRejectsEmptyBlock)
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    b.newBlock();  // never filled
    b.halt();
    EXPECT_THROW(f.validate(), std::runtime_error);
}

TEST(Function, ValidateRejectsMissingTerminator)
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    b.addi(reg::a0, reg::a0, 1);  // last block, no terminator
    EXPECT_THROW(f.resolveFallThroughs(), std::runtime_error);
}

TEST(Function, ValidateRejectsIndirectWithoutTargets)
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    b.jr(reg::a0, {});
    EXPECT_THROW(f.validate(), std::runtime_error);
}

TEST(Module, LinkAssignsSequentialAddresses)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        b.addi(reg::a0, reg::zero, 1);
        b.addi(reg::a0, reg::a0, 2);
        b.halt();
    }
    LinkedProgram p = m.link();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.at(0).addr, m.codeBase());
    EXPECT_EQ(p.at(1).addr, m.codeBase() + instrBytes);
    EXPECT_EQ(p.entryAddr(), m.codeBase());
    EXPECT_TRUE(p.at(0).blockStart);
    EXPECT_FALSE(p.at(1).blockStart);
    EXPECT_EQ(p.idxOf(p.at(2).addr), 2u);
}

TEST(Module, LinkResolvesBranchAndCallTargets)
{
    Module m("t");
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.ret();
    }
    Function &f = m.createFunction("f");
    BlockId target;
    {
        FunctionBuilder b(f);
        target = b.newBlock();
        b.call(g.id());
        b.beq(reg::a0, reg::zero, target);
        b.setBlock(target);
        b.halt();
    }
    m.entryFunction(f.id());
    LinkedProgram p = m.link();

    ImageIdx callIdx = p.idxOf(f.startAddr());
    EXPECT_EQ(p.at(callIdx).targetAddr, g.startAddr());
    ImageIdx branchIdx = callIdx + 1;
    EXPECT_EQ(p.at(branchIdx).targetAddr,
              p.blockAddr(f.id(), target));
}

TEST(Module, FunctionPaddingSeparatesCode)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        b.halt();
    }
    f.padding(256);
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.halt();
    }
    m.link();
    EXPECT_EQ(g.startAddr(), f.startAddr() + instrBytes + 256);
}

TEST(Module, DataAllocationAndJumpTables)
{
    Module m("t");
    Addr a = m.allocData("a", 12);
    Addr bAddr = m.allocData("b", 8);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_GE(bAddr, a + 12);
    EXPECT_EQ(m.dataAddr("a"), a);
    EXPECT_THROW(m.dataAddr("nope"), std::runtime_error);
    EXPECT_THROW(m.allocData("a", 8), std::runtime_error);

    Function &f = m.createFunction("f");
    BlockId t1;
    {
        FunctionBuilder b(f);
        t1 = b.newBlock();
        b.jump(t1);
        b.setBlock(t1);
        b.halt();
    }
    Addr jt = m.allocJumpTable("jt", {{f.id(), t1}});
    LinkedProgram p = m.link();

    // The jump table entry must hold the block's flat address.
    bool found = false;
    for (const DataInit &di : p.dataInits()) {
        if (di.addr == jt) {
            ASSERT_EQ(di.bytes.size(), 8u);
            std::uint64_t v = 0;
            for (int i = 0; i < 8; ++i)
                v |= std::uint64_t(di.bytes[i]) << (8 * i);
            EXPECT_EQ(v, p.blockAddr(f.id(), t1));
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Module, DuplicateTriggerRejectedByLink)
{
    // Calls may appear anywhere in a block; link succeeds and the
    // call gets the return-address fall-through.
    Module m("t");
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.ret();
    }
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        b.call(g.id());
        b.call(g.id());
        b.halt();
    }
    m.entryFunction(f.id());
    LinkedProgram p = m.link();
    EXPECT_EQ(p.size(), 4u);
}

TEST(Builder, EmitsExpectedShapes)
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    b.li(reg::t0, 0x123456789abcdef0);
    b.ld(reg::t1, reg::t0, 16);
    b.sd(reg::t1, reg::t0, 24);
    b.halt();

    const auto &ins = f.block(0).instrs();
    ASSERT_EQ(ins.size(), 4u);
    EXPECT_EQ(ins[0].op, Opcode::LUI);
    EXPECT_EQ(ins[0].imm, 0x123456789abcdef0);
    EXPECT_EQ(ins[1].op, Opcode::LD);
    EXPECT_EQ(ins[1].rs1, reg::t0);
    EXPECT_EQ(ins[2].op, Opcode::SD);
    EXPECT_EQ(ins[2].rs2, reg::t1);  // stored value
    EXPECT_EQ(ins[2].rs1, reg::t0);  // base
}

TEST(Instruction, ToStringSmoke)
{
    Instruction i;
    i.op = Opcode::ADD;
    i.rd = 1;
    i.rs1 = 2;
    i.rs2 = 3;
    EXPECT_EQ(i.toString(), "add r1, r2, r3");
    i.op = Opcode::BEQ;
    i.targetBlock = 7;
    EXPECT_NE(i.toString().find("bb7"), std::string::npos);
}

} // namespace
} // namespace polyflow
