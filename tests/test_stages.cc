/**
 * @file
 * Stage-isolation tests: drive individual pipeline-stage modules on
 * hand-built MachineState instances (the point of the MachineState
 * refactor — no full-run harness required), plus the golden
 * determinism test pinning the fig09 stats export to the byte-exact
 * output of the pre-refactor simulator.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "polyflow.hh"
#include "sim/backend.hh"
#include "sim/commit.hh"
#include "sim/frontend.hh"
#include "sim/recovery.hh"
#include "sim/rename.hh"
#include "stats/export.hh"
#include "store/sha256.hh"

namespace polyflow {
namespace {

/** Functional trace of a built module (keeps the program alive). */
struct Built
{
    Module mod{"t"};
    LinkedProgram prog;
    std::unique_ptr<FunctionalResult> fr;

    void
    finish()
    {
        prog = mod.link();
        FunctionalOptions opt;
        opt.recordTrace = true;
        fr = std::make_unique<FunctionalResult>(
            runFunctional(prog, opt));
    }
};

/** li t0, N; loop: addi t0, t0, -1; bne t0, zero, loop; halt.
 *  Trace: li, then N x (addi, bne), then halt. */
Built
countdownLoop(int n)
{
    Built b;
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        BlockId loop = fb.newBlock();
        BlockId done = fb.newBlock();
        fb.li(reg::t0, n);
        fb.jump(loop);
        fb.setBlock(loop);
        fb.addi(reg::t0, reg::t0, -1);
        fb.bne(reg::t0, reg::zero, loop);
        fb.setBlock(done);
        fb.halt();
    }
    b.finish();
    return b;
}

/** Split the single root task of @p m at trace index @p at, giving
 *  both halves fully-drained fetch windows up to their ends, as if
 *  everything were fetched long ago. */
void
splitTasksAt(sim::MachineState &m, TraceIdx at)
{
    sim::Task &t0 = m.tasks[0];
    sim::Task t1;
    t1.begin = at;
    t1.end = t0.end;
    t0.end = at;
    t0.fetchIdx = t0.dispIdx = t0.begin;
    t1.fetchIdx = t1.dispIdx = t1.begin;
    m.tasks.push_back(t1);
}

/** Spawn source that fires a loop-iteration hint at one PC. */
struct OneShotSource : SpawnSource
{
    Addr triggerPc = invalidAddr;
    Addr targetPc = invalidAddr;

    std::optional<SpawnHint>
    query(const LinkedInstr &li) override
    {
        if (li.addr == triggerPc)
            return SpawnHint{targetPc, SpawnKind::LoopIter, 0};
        return std::nullopt;
    }
    void onCommit(const LinkedInstr &, bool) override {}
};

TEST(Stages, FrontendSpawnTruncatesParentThenAllocates)
{
    // 6 iterations so the backward branch has later re-occurrences
    // of the loop-head PC to spawn at.
    Built b = countdownLoop(6);
    const Trace &tr = b.fr->trace;

    // Trace: li(0), jump(1), then (addi, bne) per iteration.
    // Trigger at the loop branch, target the loop-head (addi) PC.
    OneShotSource src;
    src.triggerPc = tr.staticOf(3).addr;  // bne
    src.targetPc = tr.staticOf(2).addr;   // addi (loop head)

    MachineConfig cfg;
    cfg.minSpawnDistance = 1;  // loop body is only 2 instrs long
    sim::MachineState m(cfg, tr, &src);
    ASSERT_EQ(m.tasks.size(), 1u);
    const TraceIdx rootEnd = m.tasks[0].end;

    sim::Frontend frontend;
    // Fetch until the first bne is reached (cold I-cache misses and
    // the taken-branch limit spread the first instructions over many
    // cycles): the spawn decision lands the moment the trigger is
    // fetched.
    for (int c = 0; c < 200 && !m.pending.valid; ++c) {
        frontend.fetch(m);
        if (m.pending.valid)
            break;
        frontend.applySpawn(m);
        ++m.now;
    }
    ASSERT_TRUE(m.pending.valid);
    // Parent truncated immediately at the spawn start, before the
    // context is allocated: its fetch must stop at the boundary.
    EXPECT_EQ(m.tasks.size(), 1u);
    EXPECT_EQ(m.tasks[0].end, m.pending.start);
    EXPECT_GT(m.pending.start, TraceIdx(3));
    EXPECT_EQ(m.pending.end, rootEnd);
    EXPECT_EQ(m.pending.triggerPc, src.triggerPc);

    // End of cycle: the new context appears right after its parent,
    // owning exactly the truncated-off tail.
    frontend.applySpawn(m);
    EXPECT_FALSE(m.pending.valid);
    ASSERT_EQ(m.tasks.size(), 2u);
    EXPECT_EQ(m.tasks[1].begin, m.tasks[0].end);
    EXPECT_EQ(m.tasks[1].end, rootEnd);
    EXPECT_EQ(m.tasks[1].lastFetchStall,
              sim::FetchStall::SpawnStartup);
    EXPECT_EQ(m.tasks[1].fetchReady, m.now + cfg.spawnStartupDelay);
    EXPECT_EQ(m.res.spawns, 1u);
    EXPECT_EQ(m.feedback[m.tasks[1].triggerImg].spawns, 1);
}

TEST(Stages, RenameBackpressureWhenDivertQueueFull)
{
    Built b = countdownLoop(3);
    const Trace &tr = b.fr->trace;
    // Trace: li(0), jump(1), addi(2), bne(3), addi(4), ... The addi
    // at index 4 reads t0 produced by the addi at index 2.
    ASSERT_EQ(tr.instrs[4].prod[0], TraceIdx(2));

    MachineConfig cfg;
    cfg.divertEntries = 0;  // nothing fits: rename must stall
    sim::MachineState m(cfg, tr, nullptr);
    splitTasksAt(m, 4);  // index 4's producer is now cross-task

    // The consumer has violated before, so the rename-stage
    // predictor synchronizes it; its producer has not issued.
    m.depPred.recordRegViolation(tr.instrs[4].img);
    m.istate[4].stage = sim::InstrStage::Fetched;
    m.istate[4].fetchCycle = 0;
    m.tasks[1].fetchIdx = 5;
    m.now = std::uint64_t(cfg.frontendDepth);

    sim::Rename rename;
    rename.step(m);
    // Backpressure: still in the fetch queue, nothing allocated,
    // and the stall is counted.
    EXPECT_EQ(m.istate[4].stage, sim::InstrStage::Fetched);
    EXPECT_EQ(m.tasks[1].dispIdx, TraceIdx(4));
    EXPECT_TRUE(m.divert.empty());
    EXPECT_EQ(m.robUsed, 0);
    EXPECT_EQ(m.res.divertQueueFullStalls, 1u);

    // With divert capacity the same instruction diverts instead.
    m.cfg.divertEntries = 8;
    rename.step(m);
    EXPECT_EQ(m.istate[4].stage, sim::InstrStage::Diverted);
    ASSERT_EQ(m.divert.size(), 1u);
    EXPECT_EQ(m.divert.front().idx, TraceIdx(4));
    EXPECT_EQ(m.robUsed, 1);
    EXPECT_EQ(m.tasks[1].robHeld, 1);
    EXPECT_EQ(m.res.instrsDiverted, 1u);
}

TEST(Stages, RecoverySquashesYoungTasksAndTrainsPredictor)
{
    Built b = countdownLoop(3);
    const Trace &tr = b.fr->trace;

    MachineConfig cfg;
    sim::MachineState m(cfg, tr, nullptr);
    splitTasksAt(m, 3);
    std::vector<TaskEvent> events;
    m.events = &events;

    // Task 0 is mid-commit: [0,2) committed, index 2 issued. Task 1
    // ran ahead: index 3 issued a stale read, index 4 in the
    // scheduler.
    m.istate[0].stage = sim::InstrStage::Committed;
    m.istate[1].stage = sim::InstrStage::Committed;
    m.istate[2].stage = sim::InstrStage::Issued;
    m.commitIdx = 2;
    m.tasks[0].fetchIdx = m.tasks[0].dispIdx = 3;
    m.tasks[0].robHeld = 1;
    m.tasks[0].inflight = 1;
    m.istate[3].stage = sim::InstrStage::Issued;
    m.istate[4].stage = sim::InstrStage::InSched;
    m.sched = {4};
    m.tasks[1].fetchIdx = m.tasks[1].dispIdx = 5;
    m.tasks[1].robHeld = 2;
    m.tasks[1].inflight = 2;
    m.robUsed = 3;
    m.now = 17;

    m.pendingViolations.push_back({3, invalidTrace});
    sim::Recovery recovery;
    recovery.step(m);

    // Only the violating task (and younger) squash; the head task's
    // in-flight state is untouched and commit can continue.
    EXPECT_EQ(m.res.violations, 1u);
    EXPECT_EQ(m.res.tasksSquashed, 1u);
    EXPECT_TRUE(m.depPred.predictsRegDep(tr.instrs[3].img));
    EXPECT_EQ(m.istate[2].stage, sim::InstrStage::Issued);
    EXPECT_EQ(m.istate[3].stage, sim::InstrStage::None);
    EXPECT_EQ(m.istate[4].stage, sim::InstrStage::None);
    EXPECT_EQ(m.tasks[1].fetchIdx, m.tasks[1].begin);
    EXPECT_EQ(m.tasks[1].robHeld, 0);
    EXPECT_EQ(m.tasks[1].inflight, 0u);
    EXPECT_EQ(m.robUsed, 1);  // task 0's entry survives
    EXPECT_TRUE(m.sched.empty());
    EXPECT_EQ(m.tasks[1].fetchReady,
              m.now + std::uint64_t(cfg.squashRestartPenalty));
    EXPECT_EQ(m.tasks[1].lastFetchStall, sim::FetchStall::Squash);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TaskEvent::Kind::Squash);
}

TEST(Stages, Sha256MatchesKnownVector)
{
    // FIPS 180-4 test vector; guards the hash the golden test below
    // is pinned with.
    EXPECT_EQ(store::sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

/** The full fig09 grid (every workload, superscalar + all six
 *  policies) at reduced scale, exported through the stats layer and
 *  hashed. */
std::string
fig09GridHash(int batchWidth)
{
    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loop(),   SpawnPolicy::loopFT(),
        SpawnPolicy::procFT(), SpawnPolicy::hammock(),
        SpawnPolicy::other(),  SpawnPolicy::postdoms(),
    };
    const double scale = 0.04;
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : allWorkloadNames()) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const auto &p : policies) {
            cells.push_back({name, scale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    driver::SweepRunner runner(4, batchWidth);
    const auto results = runner.run(cells, false);
    std::vector<stats::RunRecord> recs;
    for (size_t i = 0; i < cells.size(); ++i) {
        recs.push_back({cells[i].workload, cells[i].scale,
                        cells[i].label, results[i].sim});
    }
    return store::sha256Hex(stats::toJson(recs));
}

/** The constant below was produced by the simulator BEFORE the
 *  stage decomposition: any cycle, slot-bucket or task-event drift
 *  anywhere in the pipeline changes it. */
const char *const kFig09GoldenSha =
    "6e0f8abd7a59adc605ac66c775f2c4b9c159e4842c9f3018d2ab931e"
    "1d781e77";

TEST(Stages, GoldenFig09StatsAreCycleIdenticalToSeed)
{
    // Width 1 = the scalar TimingSim::run reference path.
    EXPECT_EQ(fig09GridHash(1), kFig09GoldenSha);
}

TEST(Stages, GoldenFig09StatsAreCycleIdenticalWhenBatched)
{
    // Same grid through the stage-major batch engine: batching must
    // not move a single cycle, slot or task event.
    EXPECT_EQ(fig09GridHash(8), kFig09GoldenSha);
}

// ---------------------------------------------------------------
// Batch engine (sim/batch.hh): cycle-identity against the scalar
// reference path and the live-set edge cases.
// ---------------------------------------------------------------

/** Scalar reference run over freshly prepared inputs. */
TimingResult
scalarRun(Session &s, const driver::SourceSpec &spec,
          const MachineConfig &cfg, const std::string &label,
          std::vector<TaskEvent> *events = nullptr)
{
    PreparedRun run = s.prepare(spec, label);
    TimingSim sim(cfg, run.trace(), run.source.get(),
                  run.index.get());
    if (events)
        sim.traceTasks(events);
    return sim.run(label);
}

TEST(Batch, EmptyBatchReturnsNoResults)
{
    std::vector<BatchItem> none;
    EXPECT_TRUE(TimingSim::runBatch(MachineConfig{}, none).empty());
}

TEST(Batch, OfOneIsCycleIdenticalToScalar)
{
    Session s = Session::open("twolf", 0.04);
    const MachineConfig cfg;
    const auto spec =
        driver::SourceSpec::statics(SpawnPolicy::postdoms());

    std::vector<TaskEvent> refEvents;
    TimingResult ref =
        scalarRun(s, spec, cfg, "postdoms", &refEvents);

    std::vector<TaskEvent> batchEvents;
    PreparedRun run = s.prepare(spec, "postdoms");
    std::vector<BatchItem> items = {run.item(&batchEvents)};
    const auto out = TimingSim::runBatch(cfg, items);

    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], ref);
    EXPECT_EQ(batchEvents, refEvents);
}

TEST(Batch, HeterogeneousTracesFinishIndependently)
{
    // Machines over different workloads and scales — different trace
    // lengths, so they leave the live set at different cycles — plus
    // a baseline machine (no spawn source) riding in the same batch.
    // Every per-machine result must match its own scalar run, in
    // add order.
    const MachineConfig cfg;
    const auto postdoms =
        driver::SourceSpec::statics(SpawnPolicy::postdoms());
    const auto baseline = driver::SourceSpec::baseline();

    Session twolfSmall = Session::open("twolf", 0.02);
    Session twolfBig = Session::open("twolf", 0.06);
    Session mcf = Session::open("mcf", 0.04);

    struct Case
    {
        Session *session;
        driver::SourceSpec spec;
        std::string label;
    };
    std::vector<Case> cases = {
        {&twolfBig, postdoms, "pd-big"},
        {&twolfSmall, postdoms, "pd-small"},
        {&mcf, baseline, "base-mcf"},
        {&twolfSmall, baseline, "base-small"},
    };

    std::vector<TimingResult> refs;
    for (Case &c : cases)
        refs.push_back(scalarRun(*c.session, c.spec, cfg, c.label));

    std::vector<PreparedRun> runs;
    for (Case &c : cases)
        runs.push_back(c.session->prepare(c.spec, c.label));
    std::vector<BatchItem> items;
    for (const PreparedRun &r : runs)
        items.push_back(r.item());
    const auto out = TimingSim::runBatch(cfg, items);

    ASSERT_EQ(out.size(), cases.size());
    // Distinct finish cycles, so the live-set compaction actually
    // triggers mid-run (not only at the very end).
    EXPECT_NE(out[0].cycles, out[1].cycles);
    EXPECT_NE(out[1].cycles, out[2].cycles);
    for (size_t i = 0; i < cases.size(); ++i) {
        EXPECT_EQ(out[i], refs[i]) << cases[i].label;
    }
}

TEST(Batch, RunTwiceThrows)
{
    Session s = Session::open("twolf", 0.02);
    PreparedRun run =
        s.prepare(driver::SourceSpec::baseline(), "base");
    sim::MachineBatch batch{MachineConfig::superscalar()};
    batch.add(run.trace(), nullptr, nullptr, "base");
    EXPECT_EQ(batch.size(), 1u);
    batch.run();
    EXPECT_THROW(batch.run(), std::runtime_error);
    EXPECT_THROW(batch.add(run.trace(), nullptr, nullptr, "late"),
                 std::runtime_error);
}

} // namespace
} // namespace polyflow
