/**
 * @file
 * Unit tests for the analysis module: CFG views, dominators,
 * postdominators (against the paper's Figure 1/2 example), control
 * dependence (Figure 3), loops and the call graph. The CHK solver
 * is cross-checked against the independent iterative solver.
 */

#include <gtest/gtest.h>

#include "analysis/callgraph.hh"
#include "analysis/cfg_view.hh"
#include "analysis/control_dep.hh"
#include "analysis/dominators.hh"
#include "analysis/iterative_dom.hh"
#include "analysis/loops.hh"
#include "ir/builder.hh"

namespace polyflow {
namespace {

/**
 * The paper's Figure 1: a loop A->B->{C,D}->E->F with F branching
 * back to A or exiting. Block ids: A=0, B=1, C=2, D=3, E=4, F=5.
 */
Module
makePaperFigure1()
{
    Module m("fig1");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    BlockId B = b.newBlock("B");
    BlockId C = b.newBlock("C");
    BlockId D = b.newBlock("D");
    BlockId E = b.newBlock("E");
    BlockId F = b.newBlock("F");
    BlockId X = b.newBlock("exit");

    // A: falls through to B.
    b.addi(reg::t0, reg::t0, 1);
    b.setBlock(B);
    b.beq(reg::t1, reg::zero, D);  // B -> C (fall) or D (taken)
    b.setBlock(C);
    b.jump(E);
    b.setBlock(D);
    b.addi(reg::t2, reg::t2, 1);   // falls to E
    b.setBlock(E);
    b.addi(reg::t3, reg::t3, 1);   // falls to F
    b.setBlock(F);
    b.bne(reg::t0, reg::t4, 0);    // back edge F -> A
    b.setBlock(X);
    b.halt();
    return m;
}

constexpr int A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, X = 6;

TEST(CfgView, PaperFigure1Shape)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    EXPECT_EQ(cfg.numNodes(), 8);  // 7 blocks + virtual exit
    EXPECT_TRUE(cfg.exitReachesAll());
    for (int n = 0; n < 7; ++n)
        EXPECT_TRUE(cfg.reachable(n)) << n;

    auto has = [&](int from, int to) {
        for (int s : cfg.succs(from)) {
            if (s == to)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has(A, B));
    EXPECT_TRUE(has(B, C));
    EXPECT_TRUE(has(B, D));
    EXPECT_TRUE(has(C, E));
    EXPECT_TRUE(has(D, E));
    EXPECT_TRUE(has(E, F));
    EXPECT_TRUE(has(F, A));
    EXPECT_TRUE(has(F, X));
    EXPECT_TRUE(has(X, cfg.exitNode()));
}

TEST(PostDominators, PaperFigure2Tree)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    PostDominatorTree pdt(cfg);

    // Figure 2: E is the immediate postdominator of B, C and D;
    // F of E; A's ipdom is B; F's ipdom is the exit block X.
    EXPECT_EQ(pdt.ipdomBlock(B), E);
    EXPECT_EQ(pdt.ipdomBlock(C), E);
    EXPECT_EQ(pdt.ipdomBlock(D), E);
    EXPECT_EQ(pdt.ipdomBlock(E), F);
    EXPECT_EQ(pdt.ipdomBlock(A), B);
    EXPECT_EQ(pdt.ipdomBlock(F), X);

    // Postdominance is reflexive and transitive up the tree.
    EXPECT_TRUE(pdt.postDominates(E, B));
    EXPECT_TRUE(pdt.postDominates(F, B));
    EXPECT_TRUE(pdt.postDominates(B, B));
    EXPECT_FALSE(pdt.postDominates(C, B));
    EXPECT_FALSE(pdt.postDominates(B, E));
}

TEST(Dominators, PaperFigure1Forward)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    DominatorTree dt(cfg);
    EXPECT_EQ(dt.idom(B), A);
    EXPECT_EQ(dt.idom(C), B);
    EXPECT_EQ(dt.idom(D), B);
    EXPECT_EQ(dt.idom(E), B);
    EXPECT_EQ(dt.idom(F), E);
    EXPECT_TRUE(dt.dominates(A, F));
    EXPECT_FALSE(dt.dominates(C, E));
}

TEST(ControlDep, PaperFigure3)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    PostDominatorTree pdt(cfg);
    ControlDepGraph cdg(cfg, pdt);

    // "blocks A, B, E and F are all control dependent on the loop
    //  branch in block F, while block E is not control dependent on
    //  either B, C or D".
    EXPECT_TRUE(cdg.dependsOn(A, F));
    EXPECT_TRUE(cdg.dependsOn(B, F));
    EXPECT_TRUE(cdg.dependsOn(E, F));
    EXPECT_TRUE(cdg.dependsOn(F, F));
    EXPECT_FALSE(cdg.dependsOn(E, B));
    EXPECT_FALSE(cdg.dependsOn(E, C));
    EXPECT_FALSE(cdg.dependsOn(E, D));
    // C and D are control dependent on B.
    EXPECT_TRUE(cdg.dependsOn(C, B));
    EXPECT_TRUE(cdg.dependsOn(D, B));
}

TEST(Loops, PaperFigure1Loop)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    DominatorTree dt(cfg);
    LoopForest loops(cfg, dt);

    ASSERT_EQ(loops.numLoops(), 1u);
    const Loop &L = loops.loops()[0];
    EXPECT_EQ(L.header, A);
    ASSERT_EQ(L.latches.size(), 1u);
    EXPECT_EQ(L.latches[0], F);
    EXPECT_EQ(L.blocks.size(), 6u);  // A..F
    EXPECT_TRUE(L.contains(C));
    EXPECT_FALSE(L.contains(X));
    EXPECT_TRUE(loops.isBackEdge(F, A));
    EXPECT_FALSE(loops.isBackEdge(E, F));
    ASSERT_EQ(L.exitEdges.size(), 1u);
    EXPECT_EQ(L.exitEdges[0].first, F);
    EXPECT_EQ(L.exitEdges[0].second, X);
    EXPECT_EQ(loops.innermostLoopOf(C), L.id);
    EXPECT_FALSE(loops.sawIrreducible());
}

/** A nested loop for nesting-forest checks. */
Module
makeNestedLoops()
{
    Module m("nest");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    BlockId outerH = b.newBlock("outerH");
    BlockId innerH = b.newBlock("innerH");
    BlockId innerL = b.newBlock("innerL");
    BlockId outerL = b.newBlock("outerL");
    BlockId done = b.newBlock("done");
    b.li(reg::t0, 3);
    b.setBlock(outerH);
    b.li(reg::t1, 3);
    b.setBlock(innerH);
    b.addi(reg::t2, reg::t2, 1);
    b.setBlock(innerL);
    b.addi(reg::t1, reg::t1, -1);
    b.bne(reg::t1, reg::zero, innerH);
    b.setBlock(outerL);
    b.addi(reg::t0, reg::t0, -1);
    b.bne(reg::t0, reg::zero, outerH);
    b.setBlock(done);
    b.halt();
    return m;
}

TEST(Loops, NestingForest)
{
    Module m = makeNestedLoops();
    m.link();
    CfgView cfg(m.function(0));
    DominatorTree dt(cfg);
    LoopForest loops(cfg, dt);

    ASSERT_EQ(loops.numLoops(), 2u);
    const Loop *inner = nullptr, *outer = nullptr;
    for (const Loop &L : loops.loops()) {
        if (L.header == 2)
            inner = &L;
        if (L.header == 1)
            outer = &L;
    }
    ASSERT_NE(inner, nullptr);
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(inner->depth, 2);
    EXPECT_EQ(outer->depth, 1);
    EXPECT_EQ(outer->parent, -1);
    // Inner blocks report the inner loop as innermost.
    EXPECT_EQ(loops.innermostLoopOf(2), inner->id);
    // Outer-only blocks report the outer loop.
    EXPECT_EQ(loops.innermostLoopOf(4), outer->id);
}

TEST(Dominators, ChkMatchesIterativeOnFigure1)
{
    Module m = makePaperFigure1();
    m.link();
    CfgView cfg(m.function(0));
    DominatorTree dt(cfg);
    PostDominatorTree pdt(cfg);

    auto domSets = iterativeDoms(cfg);
    auto domIdoms = idomsFromSets(domSets, cfg.entryNode());
    auto pdomSets = iterativePostDoms(cfg);
    auto pdomIdoms = idomsFromSets(pdomSets, cfg.exitNode());

    for (int n = 0; n < cfg.numNodes(); ++n) {
        if (!cfg.reachable(n))
            continue;
        if (n != cfg.entryNode())
            EXPECT_EQ(dt.idom(n), domIdoms[n]) << "idom of " << n;
        if (n != cfg.exitNode())
            EXPECT_EQ(pdt.idom(n), pdomIdoms[n]) << "ipdom of " << n;
    }
}

TEST(PostDominators, ThrowsOnInfiniteLoop)
{
    Module m("inf");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    BlockId loop = b.newBlock();
    b.jump(loop);
    b.setBlock(loop);
    b.jump(loop);
    m.link();
    CfgView cfg(f);
    EXPECT_FALSE(cfg.exitReachesAll());
    EXPECT_THROW(PostDominatorTree pdt(cfg), std::runtime_error);
}

TEST(CallGraph, SitesAndReachability)
{
    Module m("cg");
    Function &leaf = m.createFunction("leaf");
    {
        FunctionBuilder b(leaf);
        b.ret();
    }
    Function &mid = m.createFunction("mid");
    {
        FunctionBuilder b(mid);
        b.call(leaf.id());
        b.ret();
    }
    Function &top = m.createFunction("top");
    {
        FunctionBuilder b(top);
        b.call(mid.id());
        b.call(mid.id());
        b.halt();
    }
    m.entryFunction(top.id());
    m.link();
    CallGraph cg(m);
    EXPECT_EQ(cg.sites().size(), 3u);
    EXPECT_EQ(cg.calleesOf(top.id()).size(), 1u);  // deduplicated
    EXPECT_TRUE(cg.reaches(top.id(), leaf.id()));
    EXPECT_FALSE(cg.reaches(leaf.id(), top.id()));
    EXPECT_FALSE(cg.isRecursive(top.id()));
}

TEST(CallGraph, DetectsRecursion)
{
    Module m("rec");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        b.call(0);  // self call
        b.ret();
    }
    m.link();
    CallGraph cg(m);
    EXPECT_TRUE(cg.isRecursive(f.id()));
}

} // namespace
} // namespace polyflow
