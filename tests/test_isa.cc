/**
 * @file
 * Unit tests for the ISA layer: architectural state, instruction
 * semantics and the functional simulator (including trace recording
 * and dependence links).
 */

#include <gtest/gtest.h>

#include <functional>

#include "ir/builder.hh"
#include "isa/exec.hh"
#include "isa/functional_sim.hh"

namespace polyflow {
namespace {

TEST(ArchState, RegisterZeroIsHardwired)
{
    ArchState st;
    st.writeReg(reg::zero, 42);
    EXPECT_EQ(st.readReg(reg::zero), 0);
    st.writeReg(5, -7);
    EXPECT_EQ(st.readReg(5), -7);
}

TEST(ArchState, MemoryLittleEndianAndLazy)
{
    ArchState st;
    EXPECT_EQ(st.readMem(0x5000, 8), 0u);  // unwritten reads zero
    st.writeMem(0x5000, 0x1122334455667788ull, 8);
    EXPECT_EQ(st.readMem(0x5000, 8), 0x1122334455667788ull);
    EXPECT_EQ(st.readByte(0x5000), 0x88);
    EXPECT_EQ(st.readByte(0x5007), 0x11);
    EXPECT_EQ(st.readMem(0x5002, 2), 0x5566u);

    // Cross-page write.
    st.writeMem(ArchState::pageBytes - 2, 0xaabbccddu, 4);
    EXPECT_EQ(st.readMem(ArchState::pageBytes - 2, 4), 0xaabbccddu);
}

TEST(ArchState, ChecksumChangesWithContent)
{
    ArchState a, b;
    a.writeMem(0x100, 1, 8);
    b.writeMem(0x100, 2, 8);
    EXPECT_NE(a.memChecksum(), b.memChecksum());
}

/** Build, link and functionally run a single-function program. */
FunctionalResult
runProgram(const std::function<void(FunctionBuilder &, Module &)> &gen,
           bool record = false)
{
    Module m("t");
    Function &f = m.createFunction("main");
    FunctionBuilder b(f);
    gen(b, m);
    LinkedProgram p = m.link();
    FunctionalOptions opt;
    opt.recordTrace = record;
    return runFunctional(p, opt);
}

TEST(Exec, AluBasics)
{
    auto r = runProgram([](FunctionBuilder &b, Module &) {
        b.li(reg::t0, 10);
        b.li(reg::t1, 3);
        b.add(reg::t2, reg::t0, reg::t1);   // 13
        b.sub(reg::t3, reg::t0, reg::t1);   // 7
        b.mul(reg::t4, reg::t0, reg::t1);   // 30
        b.divu(reg::t5, reg::t0, reg::t1);  // 3
        b.remu(reg::t6, reg::t0, reg::t1);  // 1
        b.slt(reg::t7, reg::t1, reg::t0);   // 1
        b.halt();
    });
    EXPECT_TRUE(r.halted);
    const ArchState &st = *r.finalState;
    EXPECT_EQ(st.readReg(reg::t2), 13);
    EXPECT_EQ(st.readReg(reg::t3), 7);
    EXPECT_EQ(st.readReg(reg::t4), 30);
    EXPECT_EQ(st.readReg(reg::t5), 3);
    EXPECT_EQ(st.readReg(reg::t6), 1);
    EXPECT_EQ(st.readReg(reg::t7), 1);
}

TEST(Exec, ShiftsAndNegativeArithmetic)
{
    auto r = runProgram([](FunctionBuilder &b, Module &) {
        b.li(reg::t0, -16);
        b.srai(reg::t1, reg::t0, 2);        // -4 (arithmetic)
        b.srli(reg::t2, reg::t0, 60);       // high bits of -16
        b.slli(reg::t3, reg::t0, 1);        // -32
        b.li(reg::t4, -1);
        b.sltu(reg::t5, reg::zero, reg::t4);  // 0 < huge unsigned
        b.halt();
    });
    const ArchState &st = *r.finalState;
    EXPECT_EQ(st.readReg(reg::t1), -4);
    EXPECT_EQ(st.readReg(reg::t2), 15);
    EXPECT_EQ(st.readReg(reg::t3), -32);
    EXPECT_EQ(st.readReg(reg::t5), 1);
}

TEST(Exec, DivideByZeroIsDefined)
{
    auto r = runProgram([](FunctionBuilder &b, Module &) {
        b.li(reg::t0, 9);
        b.li(reg::t1, 0);
        b.divu(reg::t2, reg::t0, reg::t1);
        b.remu(reg::t3, reg::t0, reg::t1);
        b.halt();
    });
    EXPECT_EQ(r.finalState->readReg(reg::t2), -1);
    EXPECT_EQ(r.finalState->readReg(reg::t3), 9);
}

TEST(Exec, LoadStoreWidthsAndSignExtension)
{
    auto r = runProgram([](FunctionBuilder &b, Module &m) {
        Addr d = m.allocData("d", 32);
        b.li(reg::t0, std::int64_t(d));
        b.li(reg::t1, -2);             // 0xfffe as 16-bit
        b.sh(reg::t1, reg::t0, 0);
        b.lh(reg::t2, reg::t0, 0);     // sign-extended
        b.lhu(reg::t3, reg::t0, 0);    // zero-extended
        b.li(reg::t4, 0x80);
        b.sb(reg::t4, reg::t0, 8);
        b.lb(reg::t5, reg::t0, 8);     // -128
        b.lbu(reg::t6, reg::t0, 8);    // 128
        b.halt();
    });
    const ArchState &st = *r.finalState;
    EXPECT_EQ(st.readReg(reg::t2), -2);
    EXPECT_EQ(st.readReg(reg::t3), 0xfffe);
    EXPECT_EQ(st.readReg(reg::t5), -128);
    EXPECT_EQ(st.readReg(reg::t6), 128);
}

TEST(Exec, BranchesAndLoop)
{
    // Sum 1..10 with a loop.
    auto r = runProgram([](FunctionBuilder &b, Module &) {
        BlockId loop = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, 10);
        b.li(reg::t1, 0);
        b.jump(loop);
        b.setBlock(loop);
        b.add(reg::t1, reg::t1, reg::t0);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, loop);
        b.setBlock(done);
        b.halt();
    });
    EXPECT_EQ(r.finalState->readReg(reg::t1), 55);
}

TEST(Exec, CallAndReturn)
{
    Module m("t");
    Function &callee = m.createFunction("sq");
    {
        FunctionBuilder b(callee);
        b.mul(reg::a0, reg::a0, reg::a0);
        b.ret();
    }
    Function &main = m.createFunction("main");
    {
        FunctionBuilder b(main);
        b.li(reg::a0, 7);
        b.call(callee.id());
        b.halt();
    }
    m.entryFunction(main.id());
    auto r = runFunctional(m.link());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.finalState->readReg(reg::a0), 49);
}

TEST(Exec, IndirectJumpThroughTable)
{
    Module m("t");
    Function &f = m.createFunction("main");
    BlockId c0, c1;
    {
        FunctionBuilder b(f);
        BlockId dispatch = b.newBlock();
        c0 = b.newBlock();
        c1 = b.newBlock();
        BlockId out = b.newBlock();
        b.jump(dispatch);
        b.setBlock(dispatch);
        // Select table entry 1.
        b.li(reg::t0, 0);  // patched below via data symbol
        b.ld(reg::t1, reg::t0, 8);
        b.jr(reg::t1, {c0, c1});
        b.setBlock(c0);
        b.li(reg::a0, 100);
        b.jump(out);
        b.setBlock(c1);
        b.li(reg::a0, 200);
        b.setBlock(out);
        b.halt();
    }
    Addr jt = m.allocJumpTable("jt", {{f.id(), c0}, {f.id(), c1}});
    // Patch the li with the real table address.
    f.block(1).instrs()[0].imm = std::int64_t(jt);
    auto r = runFunctional(m.link());
    EXPECT_EQ(r.finalState->readReg(reg::a0), 200);
}

TEST(FunctionalSim, MaxInstrsStopsRunaway)
{
    Module m("t");
    Function &f = m.createFunction("main");
    {
        FunctionBuilder b(f);
        BlockId loop = b.newBlock();
        b.jump(loop);
        b.setBlock(loop);
        b.addi(reg::t0, reg::t0, 1);
        b.jump(loop);
    }
    FunctionalOptions opt;
    opt.maxInstrs = 1000;
    auto r = runFunctional(m.link(), opt);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.instrCount, 1000u);
}

TEST(FunctionalSim, TraceRecordsOutcomesAndProducers)
{
    auto r = runProgram(
        [](FunctionBuilder &b, Module &m) {
            Addr d = m.allocData("d", 16);
            b.li(reg::t0, std::int64_t(d));  // 0: producer of t0
            b.li(reg::t1, 5);                // 1: producer of t1
            b.sd(reg::t1, reg::t0, 0);       // 2: store
            b.ld(reg::t2, reg::t0, 0);       // 3: load (dep on 2)
            b.add(reg::t3, reg::t2, reg::t1);  // 4: deps 3 and 1
            b.halt();                        // 5
        },
        true);
    const Trace &t = r.trace;
    ASSERT_EQ(t.size(), 6u);

    // Store reads base (prod 0) and value (prod 1).
    EXPECT_EQ(t.instrs[2].prod[0], 0u);
    EXPECT_EQ(t.instrs[2].prod[1], 1u);
    // Load's memory producer is the store.
    EXPECT_EQ(t.instrs[3].memProd, 2u);
    EXPECT_EQ(t.instrs[3].effAddr, t.instrs[2].effAddr);
    // Add depends on the load and the li.
    EXPECT_EQ(t.instrs[4].prod[0], 3u);
    EXPECT_EQ(t.instrs[4].prod[1], 1u);
    // Nothing marked taken in straight-line code.
    EXPECT_FALSE(t.instrs[0].taken);
}

TEST(FunctionalSim, TraceTakenFlagsOnBranches)
{
    auto r = runProgram(
        [](FunctionBuilder &b, Module &) {
            BlockId target = b.newBlock();
            BlockId last = b.newBlock();
            b.li(reg::t0, 1);
            b.bne(reg::t0, reg::zero, target);  // taken
            b.setBlock(target);
            b.beq(reg::t0, reg::zero, target);  // not taken
            b.setBlock(last);
            b.halt();
        },
        true);
    const Trace &t = r.trace;
    ASSERT_EQ(t.size(), 4u);
    EXPECT_TRUE(t.instrs[1].taken);
    EXPECT_FALSE(t.instrs[2].taken);
}

TEST(FunctionalSim, DeterministicAcrossRuns)
{
    auto gen = [](FunctionBuilder &b, Module &m) {
        Addr d = m.allocData("d", 64);
        BlockId loop = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, std::int64_t(d));
        b.li(reg::t1, 8);
        b.jump(loop);
        b.setBlock(loop);
        b.ld(reg::t2, reg::t0, 0);
        b.addi(reg::t2, reg::t2, 3);
        b.sd(reg::t2, reg::t0, 0);
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, loop);
        b.setBlock(done);
        b.halt();
    };
    auto r1 = runProgram(gen);
    auto r2 = runProgram(gen);
    EXPECT_EQ(r1.instrCount, r2.instrCount);
    EXPECT_EQ(r1.finalState->memChecksum(),
              r2.finalState->memChecksum());
}

} // namespace
} // namespace polyflow
