/**
 * @file
 * Tests for spawn-point identification, classification (Section 2.2
 * taxonomy), policies and hint tables.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "spawn/policy.hh"
#include "spawn/spawn_analysis.hh"

namespace polyflow {
namespace {

/** Find the first point of a given kind, or nullptr. */
const SpawnPoint *
findKind(const SpawnAnalysis &sa, SpawnKind k)
{
    for (const SpawnPoint &p : sa.points()) {
        if (p.kind == k)
            return &p;
    }
    return nullptr;
}

int
countKind(const SpawnAnalysis &sa, SpawnKind k)
{
    int n = 0;
    for (const SpawnPoint &p : sa.points())
        n += (p.kind == k);
    return n;
}

TEST(SpawnClassify, SimpleIfThenIsHammock)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId thenB, join;
    {
        FunctionBuilder b(f);
        thenB = b.newBlock("then");
        join = b.newBlock("join");
        b.beq(reg::a0, reg::zero, join);
        b.setBlock(thenB);
        b.addi(reg::t0, reg::t0, 1);
        b.setBlock(join);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);

    const SpawnPoint *h = findKind(sa, SpawnKind::Hammock);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->triggerPc, f.block(0).termAddr());
    EXPECT_EQ(h->targetPc, f.block(join).startAddr());
    EXPECT_EQ(countKind(sa, SpawnKind::LoopFT), 0);
    EXPECT_EQ(countKind(sa, SpawnKind::Other), 0);
}

TEST(SpawnClassify, IfThenElseIsHammock)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId thenB, elseB, join;
    {
        FunctionBuilder b(f);
        thenB = b.newBlock("then");
        elseB = b.newBlock("else");
        join = b.newBlock("join");
        b.beq(reg::a0, reg::zero, elseB);
        b.setBlock(thenB);
        b.addi(reg::t0, reg::t0, 1);
        b.jump(join);
        b.setBlock(elseB);
        b.addi(reg::t0, reg::t0, 2);
        b.setBlock(join);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    const SpawnPoint *h = findKind(sa, SpawnKind::Hammock);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->targetPc, f.block(join).startAddr());
}

TEST(SpawnClassify, LoopBranchIsLoopFT)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId loop, exit;
    {
        FunctionBuilder b(f);
        loop = b.newBlock("loop");
        exit = b.newBlock("exit");
        b.li(reg::t0, 5);
        b.jump(loop);
        b.setBlock(loop);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, loop);
        b.setBlock(exit);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);

    // The back branch is a loop branch whose ipdom is the exit.
    const SpawnPoint *ft = findKind(sa, SpawnKind::LoopFT);
    ASSERT_NE(ft, nullptr);
    EXPECT_EQ(ft->triggerPc, f.block(loop).termAddr());
    EXPECT_EQ(ft->targetPc, f.block(exit).startAddr());

    // And a loop-iteration spawn from the header to the latch
    // (here the same single block).
    const SpawnPoint *li = findKind(sa, SpawnKind::LoopIter);
    ASSERT_NE(li, nullptr);
    EXPECT_EQ(li->triggerPc, f.block(loop).startAddr());
    EXPECT_EQ(li->targetPc, f.block(loop).startAddr());
}

TEST(SpawnClassify, BreakBranchIsLoopFT)
{
    // while (..) { if (cond) break; body }
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId header, body, latch, exit;
    {
        FunctionBuilder b(f);
        header = b.newBlock("header");
        body = b.newBlock("body");
        latch = b.newBlock("latch");
        exit = b.newBlock("exit");
        b.li(reg::t0, 5);
        b.jump(header);
        b.setBlock(header);
        b.beq(reg::a0, reg::zero, exit);  // break
        b.setBlock(body);
        b.addi(reg::t1, reg::t1, 1);
        b.setBlock(latch);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, header);
        b.setBlock(exit);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);

    // Both the break and the back branch leave the loop: 2 loopFT.
    EXPECT_EQ(countKind(sa, SpawnKind::LoopFT), 2);
    EXPECT_EQ(countKind(sa, SpawnKind::Hammock), 0);
}

TEST(SpawnClassify, CallsAreProcFT)
{
    Module m("t");
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.ret();
    }
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        b.call(g.id());
        b.call(g.id());
        b.halt();
    }
    m.entryFunction(f.id());
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    EXPECT_EQ(countKind(sa, SpawnKind::ProcFT), 2);
    const SpawnPoint *pf = findKind(sa, SpawnKind::ProcFT);
    ASSERT_NE(pf, nullptr);
    EXPECT_EQ(pf->targetPc, pf->triggerPc + instrBytes);
}

TEST(SpawnClassify, IndirectJumpIsOther)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId c0, c1, join;
    {
        FunctionBuilder b(f);
        c0 = b.newBlock("c0");
        c1 = b.newBlock("c1");
        join = b.newBlock("join");
        b.jr(reg::a0, {c0, c1});
        b.setBlock(c0);
        b.addi(reg::t0, reg::t0, 1);
        b.jump(join);
        b.setBlock(c1);
        b.addi(reg::t0, reg::t0, 2);
        b.setBlock(join);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    const SpawnPoint *o = findKind(sa, SpawnKind::Other);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->targetPc, f.block(join).startAddr());
}

TEST(SpawnClassify, SharedRegionIsOtherNotHammock)
{
    // A branch whose region is entered from outside (goto-like
    // shared code) fails the single-entry hammock test.
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId pre = b.newBlock("pre");
        BlockId shared = b.newBlock("shared");
        BlockId branchB = b.newBlock("branch");
        BlockId other = b.newBlock("other");
        BlockId join = b.newBlock("join");
        b.beq(reg::a0, reg::zero, branchB);  // entry: skip ahead
        b.setBlock(pre);
        b.jump(shared);
        b.setBlock(shared);                  // entered two ways
        b.addi(reg::t0, reg::t0, 1);
        b.jump(join);
        b.setBlock(branchB);
        b.beq(reg::a1, reg::zero, shared);   // branch into shared
        b.setBlock(other);
        b.addi(reg::t0, reg::t0, 2);
        b.setBlock(join);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    // The branch in "branch" targets shared code that is also
    // reachable from "pre": not a simple hammock.
    bool sawOther = false;
    for (const SpawnPoint &sp : sa.points()) {
        if (sp.kind == SpawnKind::Other)
            sawOther = true;
    }
    EXPECT_TRUE(sawOther);
}

TEST(SpawnClassify, BranchToExitHasNoSpawn)
{
    // A branch whose ipdom is the virtual exit produces no spawn.
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId a = b.newBlock("a");
        BlockId bb = b.newBlock("b");
        b.beq(reg::a0, reg::zero, bb);
        b.setBlock(a);
        b.halt();      // one side halts
        b.setBlock(bb);
        b.halt();      // the other halts too: no common postdom
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    EXPECT_EQ(sa.census().postdomTotal(), 0);
}

TEST(SpawnPolicy, MasksMatchPaperLineup)
{
    EXPECT_EQ(SpawnPolicy::loop().kindMask, kinds::loopIter);
    EXPECT_EQ(SpawnPolicy::postdoms().kindMask,
              kinds::loopFT | kinds::procFT | kinds::hammock |
                  kinds::other);
    EXPECT_FALSE(SpawnPolicy::postdoms().kindMask & kinds::loopIter);
    EXPECT_EQ(SpawnPolicy::postdomsMinus(SpawnKind::Hammock).kindMask,
              kinds::postdoms & ~kinds::hammock);
    EXPECT_EQ(SpawnPolicy::loopProcFTLoopFT().kindMask,
              kinds::loopIter | kinds::procFT | kinds::loopFT);
}

TEST(HintTable, FiltersByPolicyAndResolvesConflicts)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId loop, exit;
    {
        FunctionBuilder b(f);
        loop = b.newBlock("loop");
        exit = b.newBlock("exit");
        b.li(reg::t0, 5);
        b.jump(loop);
        b.setBlock(loop);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, loop);
        b.setBlock(exit);
        b.halt();
    }
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);

    // Single-block loop: the loop-iteration trigger is the block
    // start; the loopFT trigger is the branch. Under "loop" only
    // the former exists; under loopFT only the latter.
    HintTable loopT(sa, SpawnPolicy::loop());
    HintTable ftT(sa, SpawnPolicy::loopFT());
    EXPECT_EQ(loopT.size(), 1u);
    EXPECT_EQ(ftT.size(), 1u);
    EXPECT_NE(loopT.lookup(f.block(loop).startAddr()), nullptr);
    EXPECT_EQ(loopT.lookup(f.block(loop).termAddr()), nullptr);
    EXPECT_NE(ftT.lookup(f.block(loop).termAddr()), nullptr);

    HintTable none(sa, SpawnPolicy::none());
    EXPECT_EQ(none.size(), 0u);
}

TEST(SpawnCensus, CountsAddUp)
{
    Module m("t");
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.ret();
    }
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId thenB = b.newBlock("then");
        BlockId join = b.newBlock("join");
        b.call(g.id());
        b.beq(reg::a0, reg::zero, join);
        b.setBlock(thenB);
        b.addi(reg::t0, reg::t0, 1);
        b.setBlock(join);
        b.halt();
    }
    m.entryFunction(f.id());
    LinkedProgram p = m.link();
    SpawnAnalysis sa(m, p);
    const SpawnCensus &c = sa.census();
    EXPECT_EQ(c.byKind[int(SpawnKind::ProcFT)], 1);
    EXPECT_EQ(c.byKind[int(SpawnKind::Hammock)], 1);
    EXPECT_EQ(c.postdomTotal(), 2);
    EXPECT_EQ(sa.pointsWithKinds(kinds::postdoms).size(), 2u);
    EXPECT_EQ(sa.pointsWithKinds(kinds::procFT).size(), 1u);
}

} // namespace
} // namespace polyflow
