/**
 * @file
 * Regression tests for the paper's qualitative results — the
 * "shape" EXPERIMENTS.md reports. Everything here is deterministic
 * (fixed seeds, fixed scale), so these lock in the reproduction:
 * if a model or workload change breaks a paper claim, a test fails.
 */

#include <gtest/gtest.h>

#include <map>

#include "polyflow.hh"

namespace polyflow {
namespace {

constexpr double shapeScale = 0.25;

/** Cached per-benchmark speedups for the whole policy lineup. */
class PaperShapes : public ::testing::Test
{
  protected:
    struct Bench
    {
        std::map<std::string, double> speedup;
        double ssIpc = 0;
    };

    static const std::map<std::string, Bench> &
    all()
    {
        static const std::map<std::string, Bench> data = [] {
            std::map<std::string, Bench> out;
            const std::vector<SpawnPolicy> policies = {
                SpawnPolicy::loop(),      SpawnPolicy::loopFT(),
                SpawnPolicy::procFT(),    SpawnPolicy::hammock(),
                SpawnPolicy::other(),     SpawnPolicy::postdoms(),
                SpawnPolicy::loopProcFTLoopFT(),
            };
            for (const std::string &name : allWorkloadNames()) {
                Workload w = buildWorkload(name, shapeScale);
                FunctionalOptions opt;
                opt.recordTrace = true;
                auto fr = runFunctional(w.prog, opt);
                SpawnAnalysis sa(*w.module, w.prog);
                TimingResult base =
                    runTiming(MachineConfig::superscalar(), fr.trace,
                             nullptr, "ss");
                Bench b;
                b.ssIpc = base.ipc();
                for (const SpawnPolicy &pol : policies) {
                    StaticSpawnSource src{HintTable(sa, pol)};
                    TimingResult r = runTiming(MachineConfig{}, fr.trace,
                                           &src, pol.name);
                    b.speedup[pol.name] = r.speedupOver(base);
                }
                out[name] = std::move(b);
            }
            return out;
        }();
        return data;
    }

    static double
    avg(const std::string &policy)
    {
        double s = 0;
        for (const auto &[n, b] : all())
            s += b.speedup.at(policy);
        return s / double(all().size());
    }
};

TEST_F(PaperShapes, PostdomsBeatsEveryIndividualHeuristicOnAverage)
{
    double pd = avg("postdoms");
    for (const char *pol :
         {"loop", "loopFT", "procFT", "hammock", "other"}) {
        EXPECT_GT(pd, avg(pol)) << pol;
    }
}

TEST_F(PaperShapes, PostdomsBeatsTheCombinationOnAverage)
{
    EXPECT_GE(avg("postdoms"), avg("loop+procFT+loopFT"));
}

TEST_F(PaperShapes, PostdomsPositiveAlmostEverywhere)
{
    int positive = 0;
    for (const auto &[n, b] : all())
        positive += b.speedup.at("postdoms") > 0;
    EXPECT_GE(positive, 11) << "postdoms should pay off broadly";
}

TEST_F(PaperShapes, ApplicationsVaryWidelyPerHeuristic)
{
    // Each individual heuristic must be near-zero somewhere and
    // strong somewhere else (paper Section 4.1).
    for (const char *pol : {"loop", "loopFT", "procFT", "hammock"}) {
        double lo = 1e9, hi = -1e9;
        for (const auto &[n, b] : all()) {
            lo = std::min(lo, b.speedup.at(pol));
            hi = std::max(hi, b.speedup.at(pol));
        }
        EXPECT_LT(lo, 5.0) << pol;
        EXPECT_GT(hi, 15.0) << pol;
    }
}

TEST_F(PaperShapes, ProcFTIsVortexsBestHeuristic)
{
    const Bench &v = all().at("vortex");
    double p = v.speedup.at("procFT");
    EXPECT_GT(p, 15.0);
    for (const char *pol : {"loop", "loopFT", "hammock", "other"})
        EXPECT_GT(p, v.speedup.at(pol)) << pol;
}

TEST_F(PaperShapes, HammocksCarryMcf)
{
    const Bench &m = all().at("mcf");
    EXPECT_GT(m.speedup.at("hammock"), 40.0);
    EXPECT_GT(m.speedup.at("hammock"), m.speedup.at("procFT"));
}

TEST_F(PaperShapes, OtherMattersOnlyWhereIndirectJumpsLive)
{
    EXPECT_GT(all().at("perlbmk").speedup.at("other"), 1.0);
    EXPECT_GT(all().at("crafty").speedup.at("other"), 1.0);
    // Benchmarks without indirect jumps see nothing from "other".
    EXPECT_NEAR(all().at("gzip").speedup.at("other"), 0.0, 0.5);
    EXPECT_NEAR(all().at("twolf").speedup.at("other"), 0.0, 0.5);
}

TEST_F(PaperShapes, TwolfRespondsToLoopStructure)
{
    const Bench &t = all().at("twolf");
    EXPECT_GT(t.speedup.at("loop"), 30.0);
    EXPECT_GT(t.speedup.at("loopFT"), 30.0);
    EXPECT_GT(t.speedup.at("postdoms"), 30.0);
}

TEST_F(PaperShapes, PredictableBenchmarksGainLittle)
{
    // gzip and bzip2 have high baseline IPCs; every policy's gain
    // stays modest (paper: small bars across the board).
    for (const char *n : {"gzip", "bzip2"}) {
        const Bench &b = all().at(n);
        EXPECT_GT(b.ssIpc, 2.0) << n;
        EXPECT_LT(b.speedup.at("postdoms"), 35.0) << n;
    }
}

TEST_F(PaperShapes, SuperscalarIpcsInPlausibleBand)
{
    for (const auto &[n, b] : all()) {
        EXPECT_GT(b.ssIpc, 0.5) << n;
        EXPECT_LT(b.ssIpc, 6.5) << n;
    }
}

} // namespace
} // namespace polyflow
