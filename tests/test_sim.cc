/**
 * @file
 * Tests for the cycle-level timing simulator: sanity bounds,
 * resource effects, misprediction penalties, spawning, inter-task
 * synchronization and violation squashes.
 */

#include <gtest/gtest.h>

#include <functional>

#include "ir/builder.hh"
#include "polyflow.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

/** Run a program functionally, recording the trace. */
FunctionalResult
traceOf(const LinkedProgram &prog)
{
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(prog, opt);
    EXPECT_TRUE(r.halted);
    return r;
}

/** Superscalar run of a trace. */
TimingResult
superscalar(const Trace &t)
{
    return runTiming(MachineConfig::superscalar(), t, nullptr, "ss");
}

/** PolyFlow run under a given static policy. */
TimingResult
polyflow(const Workload &w, const Trace &t, const SpawnPolicy &pol,
         MachineConfig cfg = MachineConfig{})
{
    SpawnAnalysis sa(*w.module, w.prog);
    StaticSpawnSource src(HintTable(sa, pol));
    return runTiming(cfg, t, &src, pol.name);
}

TEST(TimingSim, StraightLineBasics)
{
    Module m("t");
    Function &f = m.createFunction("main");
    {
        FunctionBuilder b(f);
        for (int i = 0; i < 64; ++i)
            b.addi(reg::t0, reg::t0, 1);
        b.halt();
    }
    LinkedProgram p = m.link();
    auto r = traceOf(p);
    TimingResult res = superscalar(r.trace);
    EXPECT_EQ(res.instrs, 65u);
    EXPECT_GT(res.cycles, 8u);           // at least width-limited
    EXPECT_LE(res.ipc(), 8.0);
    EXPECT_EQ(res.violations, 0u);
    EXPECT_EQ(res.spawns, 0u);
}

TEST(TimingSim, DependentChainIsSlowerThanIndependent)
{
    // Loop the kernel so cold-cache fetch misses amortize and the
    // backend dominates.
    auto makeProg = [](bool dependent) {
        auto m = std::make_unique<Module>("t");
        Function &f = m->createFunction("main");
        FunctionBuilder b(f);
        BlockId loop = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t1, 30);
        b.jump(loop);
        b.setBlock(loop);
        for (int i = 0; i < 64; ++i) {
            if (dependent)
                b.mul(reg::t0, reg::t0, reg::t0);  // serial chain
            else
                b.mul(RegId(reg::s0 + i % 8), reg::a0, reg::a1);
        }
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, loop);
        b.setBlock(done);
        b.halt();
        return m;
    };
    auto dep = makeProg(true);
    auto ind = makeProg(false);
    // The trace references the program: keep both alive.
    LinkedProgram pd = dep->link();
    LinkedProgram pi = ind->link();
    auto rd = traceOf(pd);
    auto ri = traceOf(pi);
    TimingResult sd = superscalar(rd.trace);
    TimingResult si = superscalar(ri.trace);
    EXPECT_GT(sd.cycles, si.cycles * 2);
}

TEST(TimingSim, MispredictsCostCycles)
{
    // Same instruction count; one version branches on a random data
    // bit, the other on a constant.
    auto makeProg = [](bool random) {
        auto m = std::make_unique<Module>("t");
        WlRng rng(7);
        Addr bits = allocBitWords(*m, "bits", 256, random ? 50 : 0,
                                  rng);
        Function &f = m->createFunction("main");
        FunctionBuilder b(f);
        BlockId loop = b.newBlock();
        BlockId thenB = b.newBlock();
        BlockId latch = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, std::int64_t(bits));
        b.li(reg::t1, 256);
        b.jump(loop);
        b.setBlock(loop);
        b.ld(reg::t2, reg::t0, 0);
        b.beq(reg::t2, reg::zero, latch);
        b.setBlock(thenB);
        b.addi(reg::t3, reg::t3, 1);
        b.setBlock(latch);
        b.addi(reg::t0, reg::t0, 8);
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, loop);
        b.setBlock(done);
        b.halt();
        return m;
    };
    auto hard = makeProg(true);
    auto easy = makeProg(false);
    // The trace keeps a pointer to its program: bind the linked
    // images so they outlive the timing runs below.
    LinkedProgram ph = hard->link();
    LinkedProgram pe = easy->link();
    auto rh = traceOf(ph);
    auto re = traceOf(pe);
    TimingResult sh = superscalar(rh.trace);
    TimingResult se = superscalar(re.trace);
    EXPECT_GT(sh.branchMispredicts, 50u);
    EXPECT_LT(se.branchMispredicts, 20u);
    EXPECT_GT(sh.cycles, se.cycles + 8 * 40);
}

TEST(TimingSim, ICacheMissesAppearWithLargeFootprint)
{
    Workload w = buildWorkload("vortex", 0.05);
    auto r = traceOf(w.prog);
    TimingResult res = superscalar(r.trace);
    EXPECT_GT(res.icacheMisses, 100u);
}

TEST(TimingSim, PostdomSpawningBeatsSuperscalarOnTwolf)
{
    Workload w = buildWorkload("twolf", 0.1);
    auto r = traceOf(w.prog);
    TimingResult ss = superscalar(r.trace);
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::postdoms());
    EXPECT_GT(pf.spawns, 0u);
    EXPECT_GT(pf.tasksRetired, 0u);
    EXPECT_LT(pf.cycles, ss.cycles);
}

TEST(TimingSim, SpawningProducesAllKindsOnTwolf)
{
    Workload w = buildWorkload("twolf", 0.1);
    auto r = traceOf(w.prog);
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::postdoms());
    EXPECT_GT(pf.spawnsByKind[int(SpawnKind::Hammock)], 0u);
    EXPECT_GT(pf.spawnsByKind[int(SpawnKind::LoopFT)], 0u);
    // twolf's call sites span more dynamic instructions than the
    // spawn-distance cap, so no procFT spawns fire here.
    EXPECT_EQ(pf.spawnsByKind[int(SpawnKind::LoopIter)], 0u);
}

TEST(TimingSim, ProcFTSpawnsFireOnCallHeavyWorkload)
{
    Workload w = buildWorkload("vortex", 0.1);
    auto r = traceOf(w.prog);
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::procFT());
    EXPECT_GT(pf.spawnsByKind[int(SpawnKind::ProcFT)], 0u);
}

TEST(TimingSim, LoopPolicySpawnsOnlyLoopIters)
{
    Workload w = buildWorkload("twolf", 0.1);
    auto r = traceOf(w.prog);
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::loop());
    EXPECT_GT(pf.spawnsByKind[int(SpawnKind::LoopIter)], 0u);
    EXPECT_EQ(pf.spawnsByKind[int(SpawnKind::Hammock)], 0u);
    EXPECT_EQ(pf.spawnsByKind[int(SpawnKind::ProcFT)], 0u);
}

TEST(TimingSim, SingleTaskConfigNeverSpawns)
{
    Workload w = buildWorkload("twolf", 0.05);
    auto r = traceOf(w.prog);
    MachineConfig cfg;
    cfg.numTasks = 1;
    TimingResult pf =
        polyflow(w, r.trace, SpawnPolicy::postdoms(), cfg);
    EXPECT_EQ(pf.spawns, 0u);
}

TEST(TimingSim, TaskCountBoundsSpawning)
{
    Workload w = buildWorkload("twolf", 0.1);
    auto r = traceOf(w.prog);
    MachineConfig two;
    two.numTasks = 2;
    TimingResult pf2 = polyflow(w, r.trace, SpawnPolicy::postdoms(), two);
    TimingResult pf8 = polyflow(w, r.trace, SpawnPolicy::postdoms());
    EXPECT_GT(pf8.spawns, pf2.spawns);
    // More contexts should not hurt on this loop-parallel workload.
    EXPECT_LE(pf8.cycles, pf2.cycles * 11 / 10);
}

TEST(TimingSim, DeterministicResults)
{
    Workload w = buildWorkload("mcf", 0.05);
    auto r = traceOf(w.prog);
    TimingResult a = polyflow(w, r.trace, SpawnPolicy::postdoms());
    TimingResult b = polyflow(w, r.trace, SpawnPolicy::postdoms());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.spawns, b.spawns);
    EXPECT_EQ(a.violations, b.violations);
}

TEST(TimingSim, CrossTaskMemoryDependenceIsHonoured)
{
    // Producer loop writes a cell; a consumer loop after it reads
    // the same cell. LoopFT spawning overlaps them; the total must
    // still equal the functional result (the trace guarantees
    // values; here we check the machine reports sync activity).
    Module m("t");
    WlRng rng(3);
    Addr cell = m.allocData("cell", 8);
    Addr arr = allocRandomWords(m, "arr", 64, rng, 0xff);
    Function &f = m.createFunction("main");
    {
        FunctionBuilder b(f);
        BlockId l1 = b.newBlock();
        BlockId mid = b.newBlock();
        BlockId l2 = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, std::int64_t(arr));
        b.li(reg::t1, 64);
        b.li(reg::t4, std::int64_t(cell));
        b.jump(l1);
        // Producer loop: cell += arr[i].
        b.setBlock(l1);
        b.ld(reg::t2, reg::t0, 0);
        b.ld(reg::t3, reg::t4, 0);
        b.add(reg::t3, reg::t3, reg::t2);
        b.sd(reg::t3, reg::t4, 0);
        b.addi(reg::t0, reg::t0, 8);
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, l1);
        // Consumer loop reads cell 64 times.
        b.setBlock(mid);
        b.li(reg::t1, 64);
        b.jump(l2);
        b.setBlock(l2);
        b.ld(reg::t5, reg::t4, 0);
        b.add(reg::t6, reg::t6, reg::t5);
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, l2);
        b.setBlock(done);
        b.halt();
    }
    LinkedProgram p = m.link();
    auto r = traceOf(p);

    Workload w;
    w.name = "t";
    w.prog = p;
    w.module = std::make_unique<Module>(std::move(m));
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::loopFT());
    // Either the machine spawned and synchronized/squashed, or it
    // found no profitable spawn; in all cases it must finish.
    EXPECT_EQ(pf.instrs, r.trace.size());
}

TEST(TimingSim, ViolationSquashLearnsStoreSet)
{
    Workload w = buildWorkload("twolf", 0.1);
    auto r = traceOf(w.prog);
    TimingResult pf = polyflow(w, r.trace, SpawnPolicy::postdoms());
    // twolf's *costptr accumulation conflicts across tasks: the
    // first conflict squashes, then the store set synchronizes.
    if (pf.violations > 0) {
        EXPECT_GT(pf.instrsDiverted, 0u);
    }
    // Violations must not dominate (the predictor must learn).
    EXPECT_LT(pf.violations, pf.spawns + 10);
}

TEST(TimingSim, EmptyTraceRejected)
{
    Trace t;
    MachineConfig cfg;
    EXPECT_THROW(TimingSim(cfg, t, nullptr), std::runtime_error);
}

TEST(TimingSim, RunTwiceRejected)
{
    Workload w = buildWorkload("gzip", 0.02);
    auto r = traceOf(w.prog);
    TimingSim sim(MachineConfig::superscalar(), r.trace, nullptr);
    sim.run("once");
    EXPECT_THROW(sim.run("twice"), std::runtime_error);
}

TEST(TimingSim, AllWorkloadsFinishUnderAllBasePolicies)
{
    for (const std::string &name : allWorkloadNames()) {
        Workload w = buildWorkload(name, 0.03);
        auto r = traceOf(w.prog);
        TimingResult ss = superscalar(r.trace);
        EXPECT_EQ(ss.instrs, r.trace.size()) << name;
        TimingResult pf = polyflow(w, r.trace, SpawnPolicy::postdoms());
        EXPECT_EQ(pf.instrs, r.trace.size()) << name;
    }
}

} // namespace
} // namespace polyflow
