/**
 * @file
 * Cycle-accounting invariants over the whole workload suite.
 *
 * Every (cycle x issue-slot) of every run must be attributed to
 * exactly one SlotBucket, which is machine-checked here as the
 * accounting identity
 *
 *     sum(slots) == cycles * issueWidth
 *
 * for all 12 workloads under the superscalar baseline, the postdoms
 * and loop static policies, and the dynamic reconvergence predictor
 * (rec_pred). Task bookkeeping must be self-consistent (every spawn
 * retires exactly once: tasksRetired == spawns + 1; tasksSquashed
 * counts re-execution events of live tasks, which later retire),
 * and a squash may never touch committed work — squashed task
 * ranges never appear in the commit stream, checked through the
 * TaskEvent commit frontier.
 */

#include <gtest/gtest.h>

#include "polyflow.hh"

namespace polyflow {
namespace {

constexpr double kScale = 0.04;

/** The accounting identity plus basic slot sanity for one run. */
void
checkSlotInvariants(const TimingResult &r, std::uint64_t expectWidth)
{
    EXPECT_EQ(r.issueWidth, expectWidth) << r.policyName;
    EXPECT_EQ(r.slotTotal(), r.cycles * r.issueWidth)
        << r.policyName;

    // The final partial cycle (which commits the last instructions
    // without advancing the cycle counter) is not accounted, so the
    // committed bucket is instrs minus that cycle's commits.
    std::uint64_t committed =
        r.slots[static_cast<int>(SlotBucket::Committed)];
    EXPECT_LT(committed, r.instrs) << r.policyName;
    EXPECT_GE(committed + r.issueWidth, r.instrs) << r.policyName;
}

TEST(Accounting, IdentityHoldsOnEveryWorkloadAndPolicy)
{
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : allWorkloadNames()) {
        cells.push_back({name, kScale,
                         driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const SpawnPolicy &p :
             {SpawnPolicy::postdoms(), SpawnPolicy::loop()}) {
            cells.push_back({name, kScale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
        cells.push_back({name, kScale, driver::SourceSpec::recon(),
                         MachineConfig{}, "rec_pred"});
    }

    driver::SweepRunner runner(4);
    const auto results = runner.run(cells, /*report=*/false);
    ASSERT_EQ(results.size(), cells.size());

    for (size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].workload + "/" + cells[i].label);
        const TimingResult &r = results[i].sim;
        checkSlotInvariants(
            r,
            std::uint64_t(cells[i].config.pipelineWidth));

        // Task bookkeeping: the root task plus every spawned task
        // retires exactly once. Squashes re-execute a live task
        // (they do not terminate it), so they do not change the
        // retirement count.
        EXPECT_EQ(r.tasksRetired, r.spawns + 1);
        std::uint64_t byKind = 0;
        for (int k = 0; k < numSpawnKinds; ++k)
            byKind += r.spawnsByKind[k];
        EXPECT_EQ(byKind, r.spawns);

        // The baseline must not spawn, divert cross-task work, or
        // squash.
        if (cells[i].label == "superscalar") {
            EXPECT_EQ(r.spawns, 0u);
            EXPECT_EQ(r.tasksSquashed, 0u);
            EXPECT_EQ(
                r.slots[static_cast<int>(
                    SlotBucket::SquashRefetch)],
                0u);
        }
    }
}

TEST(Accounting, SquashedRangesNeverAppearInCommitStream)
{
    // Event-level check on workloads/policies that actually squash:
    // at every Squash event, the commit frontier must not have
    // entered the squashed range (committed instructions are
    // architecturally final).
    std::uint64_t totalSquashes = 0;
    for (const std::string &name : {"twolf", "gcc", "vpr.route"}) {
        Workload w = buildWorkload(name, kScale);
        FunctionalOptions opt;
        opt.recordTrace = true;
        auto fr = runFunctional(w.prog, opt);
        ASSERT_TRUE(fr.halted);
        SpawnAnalysis sa(*w.module, w.prog);
        StaticSpawnSource src{
            HintTable(sa, SpawnPolicy::postdoms())};

        std::vector<TaskEvent> events;
        TimingSim sim(MachineConfig{}, fr.trace, &src);
        sim.traceTasks(&events);
        TimingResult res = sim.run("postdoms");
        checkSlotInvariants(res, 8);

        std::uint64_t squashes = 0;
        for (const TaskEvent &e : events) {
            if (e.kind != TaskEvent::Kind::Squash)
                continue;
            ++squashes;
            EXPECT_LE(e.commitFrontier, e.begin) << name;
        }
        EXPECT_EQ(squashes, res.tasksSquashed) << name;
        totalSquashes += squashes;
    }
    // The check must have had something to bite on.
    EXPECT_GT(totalSquashes, 0u);
}

TEST(Accounting, BucketNamesAreStableAndDistinct)
{
    // Export formats and the report tool key on these names;
    // renaming one silently breaks downstream CSV/JSON consumers.
    const std::vector<std::string> expected = {
        "committed",      "fetch-stall:mispredict",
        "fetch-stall:icache", "divert-wait",
        "scheduler-full", "rob-full",
        "squash-refetch", "no-task",
        "drain",
    };
    ASSERT_EQ(static_cast<int>(expected.size()), numSlotBuckets);
    for (int b = 0; b < numSlotBuckets; ++b)
        EXPECT_EQ(slotBucketName(static_cast<SlotBucket>(b)),
                  expected[b]);
}

TEST(Accounting, NarrowMachineKeepsIdentity)
{
    // The identity is per-width, not an artifact of width 8.
    Workload w = buildWorkload("mcf", kScale);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(w.prog, opt);
    ASSERT_TRUE(fr.halted);
    SpawnAnalysis sa(*w.module, w.prog);

    for (int width : {1, 2, 4}) {
        MachineConfig cfg;
        cfg.pipelineWidth = width;
        StaticSpawnSource src{
            HintTable(sa, SpawnPolicy::postdoms())};
        TimingResult r = runTiming(cfg, fr.trace, &src,
                               "w" + std::to_string(width));
        checkSlotInvariants(r, std::uint64_t(width));
    }
}

} // namespace
} // namespace polyflow
