/**
 * @file
 * Regression tests pinning each synthetic workload's architectural
 * character — the properties DESIGN.md engineers them to have
 * (branch hardness, call density, I-cache footprint, pointer
 * chasing). If a workload edit drifts away from its SPEC namesake's
 * mechanism, a test here fails.
 */

#include <gtest/gtest.h>

#include <map>

#include "polyflow.hh"

namespace polyflow {
namespace {

struct Character
{
    double mispredictRate = 0;  // % of conditional branches
    double branchFrac = 0;      // % of dynamic instructions
    double callFrac = 0;
    double loadFrac = 0;
    double ssIpc = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t instrs = 0;
};

const Character &
characterOf(const std::string &name)
{
    static std::map<std::string, Character> cache;
    auto it = cache.find(name);
    if (it != cache.end())
        return it->second;

    Workload w = buildWorkload(name, 0.2);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(w.prog, opt);
    Character c;
    c.instrs = r.instrCount;
    std::uint64_t branches = 0, calls = 0, loads = 0;
    for (TraceIdx i = 0; i < r.trace.size(); ++i) {
        const Instruction &in = r.trace.staticOf(i).instr;
        branches += in.isCondBranch();
        calls += in.isCall();
        loads += in.isLoad();
    }
    TimingResult ss = runTiming(MachineConfig::superscalar(), r.trace,
                            nullptr, "ss");
    double n = double(r.trace.size());
    c.branchFrac = 100.0 * branches / n;
    c.callFrac = 100.0 * calls / n;
    c.loadFrac = 100.0 * loads / n;
    c.mispredictRate =
        branches ? 100.0 * ss.branchMispredicts / branches : 0;
    c.ssIpc = ss.ipc();
    c.icacheMisses = ss.icacheMisses;
    return cache.emplace(name, c).first->second;
}

TEST(WorkloadCharacter2, HardBranchBenchmarks)
{
    // crafty / mcf / twolf / vpr.place live on hard branches.
    for (const char *n : {"crafty", "mcf", "twolf", "vpr.place"}) {
        EXPECT_GT(characterOf(n).mispredictRate, 12.0) << n;
        EXPECT_LT(characterOf(n).ssIpc, 2.6) << n;
    }
}

TEST(WorkloadCharacter2, PredictableBenchmarks)
{
    for (const char *n : {"bzip2", "gzip", "gap"}) {
        EXPECT_LT(characterOf(n).mispredictRate, 8.0) << n;
        EXPECT_GT(characterOf(n).ssIpc, 2.3) << n;
    }
}

TEST(WorkloadCharacter2, CallHeavyBenchmarks)
{
    // vortex and gap have the suite's call density and I-footprint.
    EXPECT_GT(characterOf("vortex").icacheMisses, 400u);
    EXPECT_GT(characterOf("gap").icacheMisses, 150u);
    // Low-footprint benchmarks barely miss.
    EXPECT_LT(characterOf("twolf").icacheMisses, 50u);
    EXPECT_LT(characterOf("gzip").icacheMisses, 50u);
}

TEST(WorkloadCharacter2, MemoryIntensityBands)
{
    // mcf and twolf are the pointer chasers.
    EXPECT_GT(characterOf("mcf").loadFrac, 25.0);
    EXPECT_GT(characterOf("twolf").loadFrac, 18.0);
    // gap's kernels are arithmetic-dense.
    EXPECT_LT(characterOf("gap").loadFrac, 8.0);
}

TEST(WorkloadCharacter2, ParserHasRealCallDensity)
{
    EXPECT_GT(characterOf("parser").callFrac, 2.0);
}

TEST(WorkloadCharacter2, InterpreterHasLowIpc)
{
    // perlbmk's indirect dispatch keeps the superscalar near 1 IPC.
    EXPECT_LT(characterOf("perlbmk").ssIpc, 1.6);
}

TEST(WorkloadCharacter2, BaselineIpcsSpreadLikeThePaper)
{
    // The paper's superscalar IPCs span 1.33..2.8; ours span a
    // comparable (slightly wider) band.
    double lo = 1e9, hi = 0;
    for (const std::string &n : allWorkloadNames()) {
        lo = std::min(lo, characterOf(n).ssIpc);
        hi = std::max(hi, characterOf(n).ssIpc);
    }
    EXPECT_LT(lo, 1.6);
    EXPECT_GT(hi, 2.4);
    EXPECT_GT(lo, 0.6);
    EXPECT_LT(hi, 6.0);
}

} // namespace
} // namespace polyflow
