/**
 * @file
 * Unit tests for the machine-side predictors and memories: gshare,
 * indirect target prediction, the return address stack, the cache
 * hierarchy, the store-set and register dependence predictors, and
 * the trace address index.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "isa/functional_sim.hh"
#include "sim/addr_index.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/dep_predictors.hh"

namespace polyflow {
namespace {

TEST(Gshare, LearnsBiasedBranch)
{
    MachineConfig cfg;
    GsharePredictor g(cfg);
    std::uint32_t h = 0;
    for (int i = 0; i < 50; ++i) {
        g.update(0x4000, h, true);
        h = g.shiftHistory(h, true);
    }
    EXPECT_TRUE(g.predict(0x4000, h));
}

TEST(Gshare, LearnsAlternatingWithHistory)
{
    MachineConfig cfg;
    GsharePredictor g(cfg);
    std::uint32_t h = 0;
    int correct = 0, total = 0;
    for (int i = 0; i < 400; ++i) {
        bool taken = i % 2 == 0;
        bool pred = g.predict(0x4000, h);
        if (i > 100) {
            ++total;
            correct += (pred == taken);
        }
        g.update(0x4000, h, taken);
        h = g.shiftHistory(h, taken);
    }
    // With 8 bits of history an alternating pattern is learnable.
    EXPECT_GT(correct * 100, total * 95);
}

TEST(Gshare, CountsMispredicts)
{
    MachineConfig cfg;
    GsharePredictor g(cfg);
    for (int i = 0; i < 10; ++i)
        g.update(0x4000, 0, false);  // initial counters predict taken
    EXPECT_GT(g.mispredicts(), 0u);
}

TEST(IndirectPredictor, LastTargetBehaviour)
{
    IndirectPredictor p;
    EXPECT_EQ(p.predict(0x100), invalidAddr);
    p.update(0x100, 0x2000);
    EXPECT_EQ(p.predict(0x100), 0x2000u);
    p.update(0x100, 0x3000);
    EXPECT_EQ(p.predict(0x100), 0x3000u);
}

TEST(ReturnAddressStack, LifoAndOverflow)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Capacity 4: oldest two dropped.
    EXPECT_EQ(ras.depth(), 4u);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), invalidAddr);
}

TEST(Cache, HitsAfterFill)
{
    Cache c({1024, 2, 64, 10});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1038));  // same 64B line
    EXPECT_FALSE(c.access(0x1040)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 1KB, 2-way, 64B lines -> 8 sets; addresses 512 bytes apart
    // map to the same set.
    Cache c({1024, 2, 64, 10});
    Addr a = 0x0, b = 0x200, d = 0x400;
    c.access(a);
    c.access(b);
    EXPECT_TRUE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    c.access(d);  // evicts LRU = a
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
    // Touch b, then a: now d is LRU.
    c.access(b);
    c.access(a);
    EXPECT_FALSE(c.probe(d));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({1000, 3, 60, 10}), std::runtime_error);
}

TEST(MemHierarchy, LatenciesCompose)
{
    MachineConfig cfg;
    MemHierarchy h(cfg);
    // Cold: L1 miss + L2 miss.
    EXPECT_EQ(h.accessData(0x8000),
              1 + cfg.l1d.missLatency + cfg.l2.missLatency);
    // Warm in both.
    EXPECT_EQ(h.accessData(0x8000), 1);
    // A different address in the same L2 line but different L1
    // line: L1 miss, L2 hit.
    EXPECT_EQ(h.accessData(0x8040), 1 + cfg.l1d.missLatency);
}

TEST(MemHierarchy, InstrAndDataAreSeparateL1s)
{
    MachineConfig cfg;
    MemHierarchy h(cfg);
    h.accessInstr(0x9000);
    // Data access to the same address still misses L1D (hits L2).
    EXPECT_EQ(h.accessData(0x9000), 1 + cfg.l1d.missLatency);
}

TEST(DepPredictors, MemLearnsAndPredicts)
{
    DepPredictors p(64);
    EXPECT_FALSE(p.predictsMemDep(16));
    p.recordMemViolation(16);
    EXPECT_TRUE(p.predictsMemDep(16));
    EXPECT_FALSE(p.predictsRegDep(16));  // kinds are independent
    EXPECT_EQ(p.violationsRecorded(), 1u);
    EXPECT_FALSE(p.predictsMemDep(17));
}

TEST(DepPredictors, RegLearnsConsumers)
{
    DepPredictors p(64);
    EXPECT_FALSE(p.predictsRegDep(32));
    p.recordRegViolation(32);
    EXPECT_TRUE(p.predictsRegDep(32));
    EXPECT_FALSE(p.predictsMemDep(32));
    EXPECT_EQ(p.numDependent(), 1u);
}

TEST(AddrIndex, NextOccurrence)
{
    // Build a 3-iteration loop and index its trace.
    Module m("t");
    Function &f = m.createFunction("main");
    BlockId loop;
    {
        FunctionBuilder b(f);
        loop = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, 3);
        b.jump(loop);
        b.setBlock(loop);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, loop);
        b.setBlock(done);
        b.halt();
    }
    LinkedProgram p = m.link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(p, opt);
    AddrIndex idx(r.trace);

    Addr loopPc = f.block(loop).startAddr();
    EXPECT_EQ(idx.count(loopPc), 3u);
    TraceIdx first = idx.nextOccurrence(loopPc, 0);
    ASSERT_NE(first, invalidTrace);
    TraceIdx second = idx.nextOccurrence(loopPc, first);
    ASSERT_NE(second, invalidTrace);
    EXPECT_GT(second, first);
    // After the last occurrence, nothing.
    TraceIdx third = idx.nextOccurrence(loopPc, second);
    ASSERT_NE(third, invalidTrace);
    EXPECT_EQ(idx.nextOccurrence(loopPc, third), invalidTrace);
    EXPECT_EQ(idx.nextOccurrence(0xdead, 0), invalidTrace);
}

} // namespace
} // namespace polyflow
