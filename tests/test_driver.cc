/**
 * @file
 * Tests for the parallel sweep engine: a multi-threaded sweep must
 * reproduce the serial reference results cell for cell, the shared
 * cache must trace/analyze each workload exactly once, shared trace
 * indexes must not change simulation outcomes, and the environment
 * knob parsers must reject garbage.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/sweep.hh"
#include "isa/functional_sim.hh"
#include "sim/core.hh"
#include "spawn/policy.hh"
#include "spawn/spawn_analysis.hh"
#include "workloads/workloads.hh"

namespace polyflow {
namespace {

constexpr double kScale = 0.05;

const std::vector<std::string> &
testWorkloads()
{
    static const std::vector<std::string> names = {"twolf", "mcf"};
    return names;
}

std::vector<SpawnPolicy>
testPolicies()
{
    return {SpawnPolicy::loop(), SpawnPolicy::procFT(),
            SpawnPolicy::postdoms()};
}

/** The pre-sweep-engine serial reference: trace, analyze and
 *  simulate each cell in a plain loop, sharing nothing. */
std::vector<SimResult>
serialReference()
{
    std::vector<SimResult> out;
    for (const std::string &name : testWorkloads()) {
        Workload w = buildWorkload(name, kScale);
        FuncSimOptions opt;
        opt.recordTrace = true;
        FuncSimResult fr = runFunctional(w.prog, opt);
        EXPECT_TRUE(fr.halted);
        out.push_back(simulate(MachineConfig::superscalar(),
                               fr.trace, nullptr, "superscalar"));
        for (const SpawnPolicy &p : testPolicies()) {
            SpawnAnalysis sa(*w.module, w.prog);
            StaticSpawnSource src(HintTable(sa, p));
            out.push_back(
                simulate(MachineConfig{}, fr.trace, &src, p.name));
        }
    }
    return out;
}

std::vector<driver::SweepCell>
grid()
{
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : testWorkloads()) {
        cells.push_back({name, kScale,
                         driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const SpawnPolicy &p : testPolicies()) {
            cells.push_back({name, kScale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    return cells;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.spawns, b.spawns);
    EXPECT_EQ(a.spawnsByKind, b.spawnsByKind);
    EXPECT_EQ(a.tasksRetired, b.tasksRetired);
    EXPECT_EQ(a.tasksSquashed, b.tasksSquashed);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.instrsDiverted, b.instrsDiverted);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.triggersDisabled, b.triggersDisabled);
}

TEST(SweepEngine, FourThreadSweepMatchesSerialReference)
{
    const std::vector<SimResult> ref = serialReference();
    driver::SweepRunner runner(4);
    const auto results = runner.run(grid(), /*report=*/false);

    ASSERT_EQ(results.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameResult(results[i].sim, ref[i]);
    }
}

TEST(SweepEngine, CacheTracesEachWorkloadExactlyOnce)
{
    driver::SweepRunner runner(4);
    const auto cells = grid();
    runner.run(cells, /*report=*/false);

    const int nwl = static_cast<int>(testWorkloads().size());
    EXPECT_EQ(runner.cache().workloadsBuilt(), nwl);
    EXPECT_EQ(runner.cache().tracesBuilt(), nwl);
    EXPECT_EQ(runner.cache().analysesBuilt(), nwl);
    EXPECT_EQ(runner.cache().hintTablesBuilt(),
              nwl * static_cast<int>(testPolicies().size()));

    // A second pass over the same grid hits the cache throughout.
    runner.run(cells, /*report=*/false);
    EXPECT_EQ(runner.cache().workloadsBuilt(), nwl);
    EXPECT_EQ(runner.cache().tracesBuilt(), nwl);
    EXPECT_EQ(runner.cache().analysesBuilt(), nwl);
    EXPECT_EQ(runner.cache().hintTablesBuilt(),
              nwl * static_cast<int>(testPolicies().size()));
}

TEST(SweepEngine, ResultsComeBackInCellOrder)
{
    driver::SweepRunner runner(4);
    const auto cells = grid();
    const auto results = runner.run(cells, /*report=*/false);
    ASSERT_EQ(results.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(results[i].sim.policyName, cells[i].label);
}

TEST(SweepEngine, SharedTraceIndexMatchesPrivateIndex)
{
    Workload w = buildWorkload("twolf", kScale);
    FuncSimOptions opt;
    opt.recordTrace = true;
    FuncSimResult fr = runFunctional(w.prog, opt);
    ASSERT_TRUE(fr.halted);

    SpawnAnalysis sa(*w.module, w.prog);
    HintTable table(sa, SpawnPolicy::postdoms());
    TraceIndex shared(fr.trace);

    StaticSpawnSource srcPrivate(table);
    SimResult priv =
        simulate(MachineConfig{}, fr.trace, &srcPrivate, "postdoms");
    StaticSpawnSource srcShared(table);
    SimResult shrd = simulate(MachineConfig{}, fr.trace, &srcShared,
                              "postdoms", &shared);
    expectSameResult(priv, shrd);
    EXPECT_GT(priv.spawns, 0u);
}

TEST(SweepEngine, ParallelForCoversAllIndicesAndRethrows)
{
    driver::SweepRunner runner(4);
    std::vector<std::atomic<int>> hits(64);
    runner.parallelFor(hits.size(),
                       [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    EXPECT_THROW(
        runner.parallelFor(8,
                           [&](size_t i) {
                               if (i == 3)
                                   throw std::runtime_error("boom");
                           }),
        std::runtime_error);
}

TEST(SweepEngine, ParsePositiveDoubleRejectsGarbage)
{
    using driver::parsePositiveDouble;
    ASSERT_TRUE(parsePositiveDouble("1.5").has_value());
    EXPECT_DOUBLE_EQ(*parsePositiveDouble("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*parsePositiveDouble("0.05"), 0.05);

    EXPECT_FALSE(parsePositiveDouble(nullptr).has_value());
    EXPECT_FALSE(parsePositiveDouble("").has_value());
    EXPECT_FALSE(parsePositiveDouble("0").has_value());
    EXPECT_FALSE(parsePositiveDouble("-1").has_value());
    EXPECT_FALSE(parsePositiveDouble("abc").has_value());
    EXPECT_FALSE(parsePositiveDouble("1.5x").has_value());
    EXPECT_FALSE(parsePositiveDouble("nan").has_value());
    EXPECT_FALSE(parsePositiveDouble("inf").has_value());
}

TEST(SweepEngine, DefaultJobsHonorsEnvironment)
{
    ASSERT_EQ(setenv("PF_BENCH_JOBS", "3", 1), 0);
    EXPECT_EQ(driver::defaultJobs(), 3);
    ASSERT_EQ(unsetenv("PF_BENCH_JOBS"), 0);
    EXPECT_GE(driver::defaultJobs(), 1);
}

} // namespace
} // namespace polyflow
