/**
 * @file
 * Tests for the parallel sweep engine: a multi-threaded sweep must
 * reproduce the serial reference results cell for cell, the shared
 * cache must trace/analyze each workload exactly once, shared trace
 * indexes must not change simulation outcomes, and the environment
 * knob parsers must reject garbage.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "polyflow.hh"
#include "stats/export.hh"

namespace polyflow {
namespace {

/** These tests assert on SweepCache build counters, which a
 *  persistent store from an earlier run would legitimately zero
 *  out. Force the in-process tiers only. */
const bool kStoreDisabled = [] {
    ::setenv("PF_CACHE_DIR", "off", 1);
    return true;
}();

constexpr double kScale = 0.05;

const std::vector<std::string> &
testWorkloads()
{
    static const std::vector<std::string> names = {"twolf", "mcf"};
    return names;
}

std::vector<SpawnPolicy>
testPolicies()
{
    return {SpawnPolicy::loop(), SpawnPolicy::procFT(),
            SpawnPolicy::postdoms()};
}

/** The pre-sweep-engine serial reference: trace, analyze and
 *  simulate each cell in a plain loop, sharing nothing. */
std::vector<TimingResult>
serialReference()
{
    std::vector<TimingResult> out;
    for (const std::string &name : testWorkloads()) {
        Workload w = buildWorkload(name, kScale);
        FunctionalOptions opt;
        opt.recordTrace = true;
        FunctionalResult fr = runFunctional(w.prog, opt);
        EXPECT_TRUE(fr.halted);
        out.push_back(runTiming(MachineConfig::superscalar(),
                               fr.trace, nullptr, "superscalar"));
        for (const SpawnPolicy &p : testPolicies()) {
            SpawnAnalysis sa(*w.module, w.prog);
            StaticSpawnSource src(HintTable(sa, p));
            out.push_back(
                runTiming(MachineConfig{}, fr.trace, &src, p.name));
        }
    }
    return out;
}

std::vector<driver::SweepCell>
grid()
{
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : testWorkloads()) {
        cells.push_back({name, kScale,
                         driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const SpawnPolicy &p : testPolicies()) {
            cells.push_back({name, kScale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    return cells;
}

void
expectSameResult(const TimingResult &a, const TimingResult &b)
{
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.spawns, b.spawns);
    EXPECT_EQ(a.spawnsByKind, b.spawnsByKind);
    EXPECT_EQ(a.tasksRetired, b.tasksRetired);
    EXPECT_EQ(a.tasksSquashed, b.tasksSquashed);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.instrsDiverted, b.instrsDiverted);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.dcacheMisses, b.dcacheMisses);
    EXPECT_EQ(a.triggersDisabled, b.triggersDisabled);
    EXPECT_EQ(a.issueWidth, b.issueWidth);
    EXPECT_EQ(a.slots, b.slots);
}

TEST(SweepEngine, FourThreadSweepMatchesSerialReference)
{
    const std::vector<TimingResult> ref = serialReference();
    driver::SweepRunner runner(4);
    const auto results = runner.run(grid(), /*report=*/false);

    ASSERT_EQ(results.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameResult(results[i].sim, ref[i]);
    }
}

TEST(SweepEngine, CacheTracesEachWorkloadExactlyOnce)
{
    driver::SweepRunner runner(4);
    const auto cells = grid();
    runner.run(cells, /*report=*/false);

    const int nwl = static_cast<int>(testWorkloads().size());
    EXPECT_EQ(runner.cache().workloadsBuilt(), nwl);
    EXPECT_EQ(runner.cache().tracesBuilt(), nwl);
    EXPECT_EQ(runner.cache().analysesBuilt(), nwl);
    EXPECT_EQ(runner.cache().hintTablesBuilt(),
              nwl * static_cast<int>(testPolicies().size()));

    // A second pass over the same grid hits the cache throughout.
    runner.run(cells, /*report=*/false);
    EXPECT_EQ(runner.cache().workloadsBuilt(), nwl);
    EXPECT_EQ(runner.cache().tracesBuilt(), nwl);
    EXPECT_EQ(runner.cache().analysesBuilt(), nwl);
    EXPECT_EQ(runner.cache().hintTablesBuilt(),
              nwl * static_cast<int>(testPolicies().size()));
}

TEST(SweepEngine, ResultsComeBackInCellOrder)
{
    driver::SweepRunner runner(4);
    const auto cells = grid();
    const auto results = runner.run(cells, /*report=*/false);
    ASSERT_EQ(results.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(results[i].sim.policyName, cells[i].label);
}

TEST(SweepEngine, SharedTraceIndexMatchesPrivateIndex)
{
    Workload w = buildWorkload("twolf", kScale);
    FunctionalOptions opt;
    opt.recordTrace = true;
    FunctionalResult fr = runFunctional(w.prog, opt);
    ASSERT_TRUE(fr.halted);

    SpawnAnalysis sa(*w.module, w.prog);
    HintTable table(sa, SpawnPolicy::postdoms());
    TraceIndex shared(fr.trace);

    StaticSpawnSource srcPrivate(table);
    TimingResult priv =
        runTiming(MachineConfig{}, fr.trace, &srcPrivate, "postdoms");
    StaticSpawnSource srcShared(table);
    TimingResult shrd = runTiming(MachineConfig{}, fr.trace, &srcShared,
                              "postdoms", &shared);
    expectSameResult(priv, shrd);
    EXPECT_GT(priv.spawns, 0u);
}

TEST(SweepEngine, ParallelForCoversAllIndicesAndRethrows)
{
    driver::SweepRunner runner(4);
    std::vector<std::atomic<int>> hits(64);
    runner.parallelFor(hits.size(),
                       [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);

    EXPECT_THROW(
        runner.parallelFor(8,
                           [&](size_t i) {
                               if (i == 3)
                                   throw std::runtime_error("boom");
                           }),
        std::runtime_error);
}

std::vector<stats::RunRecord>
toRecords(const std::vector<driver::SweepCell> &cells,
          const std::vector<driver::CellResult> &results)
{
    std::vector<stats::RunRecord> recs;
    for (size_t i = 0; i < cells.size(); ++i) {
        recs.push_back({cells[i].workload, cells[i].scale,
                        cells[i].label, results[i].sim});
    }
    return recs;
}

TEST(SweepEngine, JsonStatsExportIsByteIdenticalAcrossJobCounts)
{
    // The structured export must thread through the sweep engine
    // unchanged: a 4-thread sweep serializes to exactly the bytes
    // the serial sweep produces — compared cell by cell so a
    // mismatch names the offender, then on the whole document.
    const auto cells = grid();
    driver::SweepRunner serial(1);
    driver::SweepRunner parallel(4);
    const auto refRecs =
        toRecords(cells, serial.run(cells, /*report=*/false));
    const auto parRecs =
        toRecords(cells, parallel.run(cells, /*report=*/false));
    ASSERT_EQ(refRecs.size(), parRecs.size());

    for (size_t i = 0; i < refRecs.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     cells[i].workload + "/" + cells[i].label + ")");
        EXPECT_EQ(stats::runToJson(parRecs[i]),
                  stats::runToJson(refRecs[i]));
    }
    EXPECT_EQ(stats::toJson(parRecs), stats::toJson(refRecs));
    EXPECT_EQ(stats::toCsv(parRecs), stats::toCsv(refRecs));

    // And the export carries the accounting identity for every
    // cell, so downstream consumers can rely on it.
    for (const auto &rec : parRecs) {
        EXPECT_EQ(rec.sim.slotTotal(),
                  rec.sim.cycles * rec.sim.issueWidth)
            << rec.workload << "/" << rec.label;
    }
}

TEST(SweepEngine, ParsePositiveDoubleRejectsGarbage)
{
    using driver::parsePositiveDouble;
    ASSERT_TRUE(parsePositiveDouble("1.5").has_value());
    EXPECT_DOUBLE_EQ(*parsePositiveDouble("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(*parsePositiveDouble("0.05"), 0.05);

    EXPECT_FALSE(parsePositiveDouble(nullptr).has_value());
    EXPECT_FALSE(parsePositiveDouble("").has_value());
    EXPECT_FALSE(parsePositiveDouble("0").has_value());
    EXPECT_FALSE(parsePositiveDouble("-1").has_value());
    EXPECT_FALSE(parsePositiveDouble("abc").has_value());
    EXPECT_FALSE(parsePositiveDouble("1.5x").has_value());
    EXPECT_FALSE(parsePositiveDouble("nan").has_value());
    EXPECT_FALSE(parsePositiveDouble("inf").has_value());
}

TEST(SweepEngine, DefaultJobsHonorsEnvironment)
{
    ASSERT_EQ(setenv("PF_BENCH_JOBS", "3", 1), 0);
    EXPECT_EQ(driver::defaultJobs(), 3);
    ASSERT_EQ(unsetenv("PF_BENCH_JOBS"), 0);
    EXPECT_GE(driver::defaultJobs(), 1);
}

TEST(SweepEngine, BatchedSweepMatchesScalarSweep)
{
    // The grid mixes two machine configs (superscalar + default), so
    // batching must group by config, chunk each group, and still put
    // every result back at its cell index. Width 1 is the scalar
    // TimingSim::run reference path; width 3 leaves a remainder
    // chunk smaller than the width.
    const auto cells = grid();
    driver::SweepRunner scalar(4, 1);
    driver::SweepRunner batched(4, 3);
    EXPECT_EQ(scalar.batchWidth(), 1);
    EXPECT_EQ(batched.batchWidth(), 3);
    const auto ref = scalar.run(cells, /*report=*/false);
    const auto out = batched.run(cells, /*report=*/false);

    ASSERT_EQ(out.size(), ref.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i) + " (" +
                     cells[i].workload + "/" + cells[i].label + ")");
        EXPECT_EQ(out[i].sim, ref[i].sim);
    }
    // Baseline cells have no spawn source; policy cells keep theirs
    // inspectable, batched or not.
    for (size_t i = 0; i < cells.size(); ++i) {
        bool baseline = cells[i].source.kind ==
            driver::SourceSpec::Kind::Baseline;
        EXPECT_EQ(out[i].source == nullptr, baseline);
    }
}

TEST(SweepEngine, DefaultBatchWidthHonorsEnvironment)
{
    ASSERT_EQ(setenv("PF_BENCH_BATCH", "5", 1), 0);
    EXPECT_EQ(driver::defaultBatchWidth(), 5);
    ASSERT_EQ(unsetenv("PF_BENCH_BATCH"), 0);
    EXPECT_EQ(driver::defaultBatchWidth(), 8);
}

} // namespace
} // namespace polyflow
