/**
 * @file
 * Exhaustive instruction-semantics property tests: every ALU,
 * shift, comparison, branch and memory opcode is checked against a
 * host-side oracle over many random operand pairs.
 */

#include <gtest/gtest.h>

#include <functional>

#include "ir/builder.hh"
#include "isa/exec.hh"
#include "isa/functional_sim.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

using I64 = std::int64_t;
using U64 = std::uint64_t;

/** Run "li a0, x; li a1, y; <op> a2, a0, a1; halt" and read a2. */
I64
runBinop(Opcode op, I64 x, I64 y)
{
    Module m("t");
    Function &f = m.createFunction("main");
    FunctionBuilder b(f);
    b.li(reg::a0, x);
    b.li(reg::a1, y);
    Instruction in;
    in.op = op;
    in.rd = reg::a2;
    in.rs1 = reg::a0;
    in.rs2 = reg::a1;
    b.emit(in);
    b.halt();
    auto r = runFunctional(m.link());
    return r.finalState->readReg(reg::a2);
}

/** Run "li a0, x; <op> a2, a0, imm; halt" and read a2. */
I64
runImmop(Opcode op, I64 x, I64 imm)
{
    Module m("t");
    Function &f = m.createFunction("main");
    FunctionBuilder b(f);
    b.li(reg::a0, x);
    Instruction in;
    in.op = op;
    in.rd = reg::a2;
    in.rs1 = reg::a0;
    in.imm = imm;
    b.emit(in);
    b.halt();
    auto r = runFunctional(m.link());
    return r.finalState->readReg(reg::a2);
}

struct BinCase
{
    Opcode op;
    std::function<I64(I64, I64)> oracle;
    const char *name;
};

TEST(ExecProps, BinaryOpsMatchOracle)
{
    const BinCase cases[] = {
        {Opcode::ADD, [](I64 a, I64 b) { return I64(U64(a) + U64(b)); },
         "add"},
        {Opcode::SUB, [](I64 a, I64 b) { return I64(U64(a) - U64(b)); },
         "sub"},
        {Opcode::MUL, [](I64 a, I64 b) { return I64(U64(a) * U64(b)); },
         "mul"},
        {Opcode::DIVU,
         [](I64 a, I64 b) {
             return b == 0 ? I64(-1) : I64(U64(a) / U64(b));
         },
         "divu"},
        {Opcode::REMU,
         [](I64 a, I64 b) {
             return b == 0 ? a : I64(U64(a) % U64(b));
         },
         "remu"},
        {Opcode::AND, [](I64 a, I64 b) { return a & b; }, "and"},
        {Opcode::OR, [](I64 a, I64 b) { return a | b; }, "or"},
        {Opcode::XOR, [](I64 a, I64 b) { return a ^ b; }, "xor"},
        {Opcode::SLL,
         [](I64 a, I64 b) { return I64(U64(a) << (U64(b) & 63)); },
         "sll"},
        {Opcode::SRL,
         [](I64 a, I64 b) { return I64(U64(a) >> (U64(b) & 63)); },
         "srl"},
        {Opcode::SRA,
         [](I64 a, I64 b) { return a >> (U64(b) & 63); }, "sra"},
        {Opcode::SLT,
         [](I64 a, I64 b) { return I64(a < b ? 1 : 0); }, "slt"},
        {Opcode::SLTU,
         [](I64 a, I64 b) { return I64(U64(a) < U64(b) ? 1 : 0); },
         "sltu"},
    };
    WlRng rng(0xabc);
    for (const BinCase &c : cases) {
        for (int i = 0; i < 24; ++i) {
            I64 x = I64(rng.next());
            I64 y = I64(rng.next());
            if (i % 4 == 0)
                y &= 0xff;  // small operands too
            if (i % 7 == 0)
                y = 0;      // and zero
            EXPECT_EQ(runBinop(c.op, x, y), c.oracle(x, y))
                << c.name << "(" << x << ", " << y << ")";
        }
    }
}

TEST(ExecProps, ImmediateOpsMatchOracle)
{
    struct ImmCase
    {
        Opcode op;
        std::function<I64(I64, I64)> oracle;
        const char *name;
    };
    const ImmCase cases[] = {
        {Opcode::ADDI, [](I64 a, I64 i) { return I64(U64(a) + U64(i)); },
         "addi"},
        {Opcode::ANDI, [](I64 a, I64 i) { return a & i; }, "andi"},
        {Opcode::ORI, [](I64 a, I64 i) { return a | i; }, "ori"},
        {Opcode::XORI, [](I64 a, I64 i) { return a ^ i; }, "xori"},
        {Opcode::SLLI,
         [](I64 a, I64 i) { return I64(U64(a) << (U64(i) & 63)); },
         "slli"},
        {Opcode::SRLI,
         [](I64 a, I64 i) { return I64(U64(a) >> (U64(i) & 63)); },
         "srli"},
        {Opcode::SRAI, [](I64 a, I64 i) { return a >> (U64(i) & 63); },
         "srai"},
        {Opcode::SLTI,
         [](I64 a, I64 i) { return I64(a < i ? 1 : 0); }, "slti"},
    };
    WlRng rng(0xdef);
    for (const ImmCase &c : cases) {
        for (int i = 0; i < 16; ++i) {
            I64 x = I64(rng.next());
            I64 imm = I64(rng.range(8192)) - 4096;
            if (c.op == Opcode::SLLI || c.op == Opcode::SRLI ||
                c.op == Opcode::SRAI) {
                imm = I64(rng.range(64));
            }
            EXPECT_EQ(runImmop(c.op, x, imm), c.oracle(x, imm))
                << c.name << "(" << x << ", " << imm << ")";
        }
    }
}

TEST(ExecProps, BranchDecisionsMatchOracle)
{
    struct BrCase
    {
        Opcode op;
        std::function<bool(I64, I64)> oracle;
        const char *name;
    };
    const BrCase cases[] = {
        {Opcode::BEQ, [](I64 a, I64 b) { return a == b; }, "beq"},
        {Opcode::BNE, [](I64 a, I64 b) { return a != b; }, "bne"},
        {Opcode::BLT, [](I64 a, I64 b) { return a < b; }, "blt"},
        {Opcode::BGE, [](I64 a, I64 b) { return a >= b; }, "bge"},
        {Opcode::BLTZ, [](I64 a, I64) { return a < 0; }, "bltz"},
        {Opcode::BGEZ, [](I64 a, I64) { return a >= 0; }, "bgez"},
    };
    WlRng rng(0x5eed);
    for (const BrCase &c : cases) {
        for (int i = 0; i < 16; ++i) {
            I64 x = I64(rng.next());
            I64 y = (i % 3 == 0) ? x : I64(rng.next());
            if (i % 5 == 0)
                x = -x;

            Module m("t");
            Function &f = m.createFunction("main");
            FunctionBuilder b(f);
            BlockId taken = b.newBlock();
            BlockId out = b.newBlock();
            b.li(reg::a0, x);
            b.li(reg::a1, y);
            b.li(reg::a2, 0);
            Instruction in;
            in.op = c.op;
            in.rs1 = reg::a0;
            in.rs2 = reg::a1;
            in.targetBlock = out;
            b.emit(in);
            f.block(0).takenSucc(out);
            b.setBlock(taken);
            b.li(reg::a2, 1);  // fall-through path
            b.setBlock(out);
            b.halt();
            auto r = runFunctional(m.link());
            bool wasTaken = r.finalState->readReg(reg::a2) == 0;
            EXPECT_EQ(wasTaken, c.oracle(x, y))
                << c.name << "(" << x << ", " << y << ")";
        }
    }
}

TEST(ExecProps, LoadStoreRoundTripsAllWidths)
{
    struct MemCase
    {
        Opcode store, load;
        int bytes;
        bool signExtend;
    };
    const MemCase cases[] = {
        {Opcode::SB, Opcode::LB, 1, true},
        {Opcode::SB, Opcode::LBU, 1, false},
        {Opcode::SH, Opcode::LH, 2, true},
        {Opcode::SH, Opcode::LHU, 2, false},
        {Opcode::SW, Opcode::LW, 4, true},
        {Opcode::SW, Opcode::LWU, 4, false},
        {Opcode::SD, Opcode::LD, 8, true},
    };
    WlRng rng(0x1234);
    for (const MemCase &c : cases) {
        for (int i = 0; i < 12; ++i) {
            U64 value = rng.next();
            I64 offset = I64(rng.range(64)) * 8;

            Module m("t");
            Addr base = m.allocData("d", 1024);
            Function &f = m.createFunction("main");
            FunctionBuilder b(f);
            b.li(reg::a0, I64(base));
            b.li(reg::a1, I64(value));
            Instruction st;
            st.op = c.store;
            st.rs1 = reg::a0;
            st.rs2 = reg::a1;
            st.imm = offset;
            b.emit(st);
            Instruction ld;
            ld.op = c.load;
            ld.rd = reg::a2;
            ld.rs1 = reg::a0;
            ld.imm = offset;
            b.emit(ld);
            b.halt();
            auto r = runFunctional(m.link());

            U64 mask = c.bytes == 8 ? ~U64(0)
                                    : ((U64(1) << (8 * c.bytes)) - 1);
            U64 raw = value & mask;
            I64 expect;
            if (c.signExtend && c.bytes < 8) {
                int shift = 64 - 8 * c.bytes;
                expect = I64(raw << shift) >> shift;
            } else {
                expect = I64(raw);
            }
            EXPECT_EQ(r.finalState->readReg(reg::a2), expect)
                << opcodeName(c.load) << " of " << value;
        }
    }
}

TEST(ExecProps, JalRecordsReturnAddress)
{
    Module m("t");
    Function &g = m.createFunction("g");
    {
        FunctionBuilder b(g);
        b.mov(reg::a1, reg::ra);  // expose ra
        b.ret();
    }
    Function &f = m.createFunction("main");
    {
        FunctionBuilder b(f);
        b.call(g.id());
        b.halt();
    }
    m.entryFunction(f.id());
    LinkedProgram p = m.link();
    auto r = runFunctional(p);
    EXPECT_EQ(Addr(r.finalState->readReg(reg::a1)),
              f.startAddr() + instrBytes);
}

} // namespace
} // namespace polyflow
