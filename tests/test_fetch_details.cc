/**
 * @file
 * Tests pinning down front-end details of the timing model: the
 * taken-branch-per-cycle limit, the fetch-queue cap, frontend
 * depth, I-cache line behaviour during fetch, and the biased-ICount
 * fetch arbitration.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "polyflow.hh"

namespace polyflow {
namespace {

/** Functional trace of a built module (keeps the program alive). */
struct Built
{
    Module mod{"t"};
    LinkedProgram prog;
    std::unique_ptr<FunctionalResult> fr;

    void
    finish(bool record = true)
    {
        prog = mod.link();
        FunctionalOptions opt;
        opt.recordTrace = record;
        fr = std::make_unique<FunctionalResult>(
            runFunctional(prog, opt));
    }
};

TEST(FetchDetails, TakenBranchLimitThrottlesJumpChains)
{
    // A long chain of unconditional jumps: with at most one taken
    // branch fetched per cycle, the superscalar needs >= one cycle
    // per jump even though each block is one instruction.
    Built b;
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        constexpr int n = 200;
        std::vector<BlockId> blocks;
        for (int i = 0; i < n; ++i)
            blocks.push_back(fb.newBlock());
        fb.jump(blocks[0]);
        for (int i = 0; i < n; ++i) {
            fb.setBlock(blocks[i]);
            if (i + 1 < n)
                fb.jump(blocks[i + 1]);
            else
                fb.halt();
        }
    }
    b.finish();
    TimingResult r = runTiming(MachineConfig::superscalar(), b.fr->trace,
                           nullptr, "ss");
    EXPECT_GE(r.cycles, 200u);
}

TEST(FetchDetails, StraightLineFetchesFullWidth)
{
    // Independent straight-line code reaches several IPC once the
    // lines are warm (loop over the same code).
    Built b;
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        BlockId loop = fb.newBlock();
        BlockId done = fb.newBlock();
        fb.li(reg::t1, 50);
        fb.jump(loop);
        fb.setBlock(loop);
        for (int i = 0; i < 24; ++i)
            fb.addi(RegId(reg::s0 + i % 8), reg::a0, i);
        fb.addi(reg::t1, reg::t1, -1);
        fb.bne(reg::t1, reg::zero, loop);
        fb.setBlock(done);
        fb.halt();
    }
    b.finish();
    TimingResult r = runTiming(MachineConfig::superscalar(), b.fr->trace,
                           nullptr, "ss");
    EXPECT_GT(r.ipc(), 3.0);
}

TEST(FetchDetails, FrontendDepthBoundsBestCaseLatency)
{
    // Even a single instruction takes at least
    // frontendDepth + issue + complete cycles.
    Built b;
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        fb.halt();
    }
    b.finish();
    MachineConfig cfg = MachineConfig::superscalar();
    TimingResult r = runTiming(cfg, b.fr->trace, nullptr, "ss");
    EXPECT_GE(r.cycles, std::uint64_t(cfg.frontendDepth + 1));
    EXPECT_LE(r.cycles, 200u);  // and not absurdly slow
}

TEST(FetchDetails, ColdICacheChargesPerLine)
{
    // 256 straight-line instructions = 8 lines of 128B. Every line
    // misses L1I and L2 exactly once on a cold start.
    Built b;
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        for (int i = 0; i < 255; ++i)
            fb.nop();
        fb.halt();
    }
    b.finish();
    MachineConfig cfg = MachineConfig::superscalar();
    TimingResult r = runTiming(cfg, b.fr->trace, nullptr, "ss");
    EXPECT_EQ(r.icacheMisses, 8u);
    // Each cold line costs the full L1->L2->mem latency.
    EXPECT_GE(r.cycles,
              8u * std::uint64_t(cfg.l1i.missLatency +
                                 cfg.l2.missLatency));
}

TEST(FetchDetails, MispredictPenaltyHasFloor)
{
    // One hard-to-predict branch per loop iteration: cycles per
    // iteration on the correct path must reflect at least the
    // minimum penalty on mispredicted iterations.
    Built b;
    Function &f = b.mod.createFunction("main");
    // Pseudo-random branch bits defeat gshare.
    Addr bits = b.mod.allocData("bits", 512 * 8);
    {
        std::vector<std::uint8_t> raw(512 * 8, 0);
        std::uint64_t x = 99;
        for (int i = 0; i < 512; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            raw[size_t(i) * 8] = x & 1;
        }
        b.mod.setData(bits, std::move(raw));
    }
    {
        FunctionBuilder fb(f);
        BlockId loop = fb.newBlock();
        BlockId thenB = fb.newBlock();
        BlockId latch = fb.newBlock();
        BlockId done = fb.newBlock();
        fb.li(reg::t0, std::int64_t(bits));
        fb.li(reg::t1, 512);
        fb.jump(loop);
        fb.setBlock(loop);
        fb.ld(reg::t2, reg::t0, 0);
        fb.beq(reg::t2, reg::zero, latch);
        fb.setBlock(thenB);
        fb.addi(reg::t3, reg::t3, 1);
        fb.setBlock(latch);
        fb.addi(reg::t0, reg::t0, 8);
        fb.addi(reg::t1, reg::t1, -1);
        fb.bne(reg::t1, reg::zero, loop);
        fb.setBlock(done);
        fb.halt();
    }
    b.finish();
    MachineConfig cfg = MachineConfig::superscalar();
    TimingResult r = runTiming(cfg, b.fr->trace, nullptr, "ss");
    ASSERT_GT(r.branchMispredicts, 100u);
    // Lower bound: mispredicts * minimum penalty.
    EXPECT_GE(r.cycles,
              r.branchMispredicts *
                  std::uint64_t(cfg.minMispredictPenalty) / 2);
}

TEST(FetchDetails, PolyFlowFetchesFromTwoTasks)
{
    // Two independent halves separated by a procFT spawn: PolyFlow
    // with fetchTasksPerCycle=2 beats a config limited to 1.
    Built b;
    Function &g = b.mod.createFunction("work");
    {
        FunctionBuilder fb(g);
        BlockId loop = fb.newBlock();
        BlockId done = fb.newBlock();
        fb.li(reg::t1, 30);
        fb.jump(loop);
        fb.setBlock(loop);
        for (int i = 0; i < 24; ++i)
            fb.addi(RegId(reg::t2 + i % 4), reg::a0, i);
        fb.addi(reg::t1, reg::t1, -1);
        fb.bne(reg::t1, reg::zero, loop);
        fb.setBlock(done);
        fb.ret();
    }
    Function &f = b.mod.createFunction("main");
    {
        FunctionBuilder fb(f);
        fb.call(g.id());
        fb.call(g.id());
        fb.halt();
    }
    b.mod.entryFunction(f.id());
    b.finish();

    SpawnAnalysis sa(b.mod, b.prog);
    MachineConfig two;
    two.maxSpawnDistance = 2000;
    MachineConfig one = two;
    one.fetchTasksPerCycle = 1;
    StaticSpawnSource s1{HintTable(sa, SpawnPolicy::procFT())};
    StaticSpawnSource s2{HintTable(sa, SpawnPolicy::procFT())};
    TimingResult rTwo = runTiming(two, b.fr->trace, &s1, "two");
    TimingResult rOne = runTiming(one, b.fr->trace, &s2, "one");
    EXPECT_GT(rTwo.spawns, 0u);
    // Dual-task fetch must help when fetch bandwidth is the
    // bottleneck (small predictor interactions aside).
    EXPECT_LE(rTwo.cycles, rOne.cycles * 101 / 100);
}

} // namespace
} // namespace polyflow
