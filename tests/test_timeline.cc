/**
 * @file
 * Timeline-consistency tests for the TaskEvent stream.
 *
 * The timing simulator's task timeline must be a faithful journal
 * of the task spawn unit: events appear in cycle order, every
 * spawned task's lifetime is bracketed by exactly one Spawn and
 * exactly one Retire (squashes are interior re-execution events of
 * a live task, never of a retired or unknown one), and the retired
 * task ranges partition the committed trace exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "polyflow.hh"

namespace polyflow {
namespace {

constexpr double kScale = 0.04;

struct TimelineRun
{
    std::vector<TaskEvent> events;
    TimingResult res;
    std::uint64_t traceSize = 0;
};

TimelineRun
runWithTimeline(const std::string &name, bool dynamicSource)
{
    Workload w = buildWorkload(name, kScale);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(w.prog, opt);
    EXPECT_TRUE(fr.halted);

    TimelineRun out;
    out.traceSize = fr.trace.size();
    if (dynamicSource) {
        ReconSpawnSource src;
        TimingSim sim(MachineConfig{}, fr.trace, &src);
        sim.traceTasks(&out.events);
        out.res = sim.run("rec_pred");
    } else {
        SpawnAnalysis sa(*w.module, w.prog);
        StaticSpawnSource src{
            HintTable(sa, SpawnPolicy::postdoms())};
        TimingSim sim(MachineConfig{}, fr.trace, &src);
        sim.traceTasks(&out.events);
        out.res = sim.run("postdoms");
    }
    return out;
}

void
checkTimeline(const TimelineRun &run)
{
    const auto &events = run.events;

    // The stream is cycle-monotonic (globally, hence also per
    // task), and the commit frontier never moves backwards.
    for (size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].cycle, events[i - 1].cycle)
            << "event " << i;
        EXPECT_GE(events[i].commitFrontier,
                  events[i - 1].commitFrontier)
            << "event " << i;
    }

    // Lifetime brackets. Task identity is its begin index: task
    // ranges are disjoint and a trace index is only ever the start
    // of one task.
    std::set<std::uint32_t> open;   // spawned, not yet retired
    std::map<std::uint32_t, std::uint32_t> retired;  // begin -> end
    std::uint64_t spawns = 0, squashes = 0;
    for (const TaskEvent &e : events) {
        switch (e.kind) {
          case TaskEvent::Kind::Spawn:
            ++spawns;
            EXPECT_TRUE(open.insert(e.begin).second)
                << "double spawn of begin " << e.begin;
            EXPECT_FALSE(retired.count(e.begin))
                << "spawn of retired begin " << e.begin;
            // The spawn target lies beyond everything committed.
            EXPECT_LT(e.commitFrontier, e.begin);
            EXPECT_LT(e.begin, e.end);
            EXPECT_EQ(e.diverted, 0u);
            break;
          case TaskEvent::Kind::Squash:
            ++squashes;
            // Only live tasks (the root, begin 0, never appears:
            // the head task cannot violate).
            EXPECT_TRUE(open.count(e.begin))
                << "squash of unknown/retired begin " << e.begin;
            // Committed work is final; a squash never reaches it.
            EXPECT_LE(e.commitFrontier, e.begin);
            // Diverted instructions of the squashed incarnation
            // are bounded by its range.
            EXPECT_LE(e.diverted, e.end - e.begin);
            break;
          case TaskEvent::Kind::Retire:
            if (e.begin == 0) {
                // Root task: no Spawn event exists for it.
                EXPECT_FALSE(retired.count(0u));
            } else {
                EXPECT_TRUE(open.count(e.begin))
                    << "retire without spawn, begin " << e.begin;
                open.erase(e.begin);
            }
            EXPECT_TRUE(
                retired.emplace(e.begin, e.end).second)
                << "double retire of begin " << e.begin;
            // Retirement happens exactly when the commit frontier
            // reaches the task's end.
            EXPECT_EQ(e.commitFrontier, e.end);
            EXPECT_LE(e.diverted, e.end - e.begin);
            break;
        }
    }

    // Every Spawn was closed by exactly one Retire.
    EXPECT_TRUE(open.empty())
        << open.size() << " spawned tasks never retired";
    EXPECT_EQ(retired.size(), spawns + 1);  // + the root task
    EXPECT_EQ(spawns, run.res.spawns);
    EXPECT_EQ(squashes, run.res.tasksSquashed);
    EXPECT_EQ(retired.size(), run.res.tasksRetired);

    // Retired ranges partition [0, trace.size()): std::map is
    // begin-sorted, so consecutive ranges must chain exactly.
    std::uint64_t expectBegin = 0;
    for (const auto &[begin, end] : retired) {
        EXPECT_EQ(begin, expectBegin);
        EXPECT_LT(begin, end);
        expectBegin = end;
    }
    EXPECT_EQ(expectBegin, run.traceSize);
}

TEST(Timeline, PostdomsTwolf)
{
    TimelineRun run = runWithTimeline("twolf", false);
    EXPECT_GT(run.res.spawns, 0u);
    checkTimeline(run);
}

TEST(Timeline, PostdomsGcc)
{
    TimelineRun run = runWithTimeline("gcc", false);
    EXPECT_GT(run.res.spawns, 0u);
    checkTimeline(run);
}

TEST(Timeline, ReconPredictorTwolf)
{
    TimelineRun run = runWithTimeline("twolf", true);
    checkTimeline(run);
}

TEST(Timeline, SuperscalarHasBareTimeline)
{
    // The baseline never spawns: its timeline is exactly one Retire
    // of the whole trace.
    Workload w = buildWorkload("mcf", kScale);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(w.prog, opt);
    ASSERT_TRUE(fr.halted);

    std::vector<TaskEvent> events;
    TimingSim sim(MachineConfig::superscalar(), fr.trace, nullptr);
    sim.traceTasks(&events);
    TimingResult res = sim.run("superscalar");

    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, TaskEvent::Kind::Retire);
    EXPECT_EQ(events[0].begin, 0u);
    EXPECT_EQ(events[0].end, fr.trace.size());
    EXPECT_EQ(res.tasksRetired, 1u);
}

} // namespace
} // namespace polyflow
