/**
 * @file
 * Tests for the persistent artifact store: exact round-trips of
 * every artifact kind, rejection (as a miss, never a crash) of
 * corrupt / truncated / version-skewed containers, rebuild fallback
 * through SweepCache, concurrent same-key writers, cold-vs-warm
 * equality of whole pipeline outputs, and the maintenance surface
 * the pf_cache CLI drives.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "driver/session.hh"
#include "driver/sweep.hh"
#include "isa/functional_sim.hh"
#include "isa/trace_io.hh"
#include "spawn/spawn_io.hh"
#include "store/artifact_store.hh"
#include "workloads/workloads.hh"

namespace polyflow {
namespace {

namespace fs = std::filesystem;
using store::ArtifactStore;

/** These tests manage their own store roots. */
const bool kEnvStoreDisabled = [] {
    ::setenv("PF_CACHE_DIR", "off", 1);
    return true;
}();

/** Fresh private store root per test. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _root = fs::temp_directory_path() /
            ("pf-store-test-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
        fs::remove_all(_root);
    }

    void TearDown() override { fs::remove_all(_root); }

    fs::path _root;
};

Workload
smallWorkload()
{
    return buildWorkload("twolf", 0.02);
}

Trace
traceOf(const Workload &w)
{
    FunctionalOptions opt;
    opt.recordTrace = true;
    FunctionalResult r = runFunctional(w.prog, opt);
    EXPECT_TRUE(r.halted);
    return std::move(r.trace);
}

void
expectSameTrace(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (TraceIdx i = 0; i < a.size(); ++i) {
        const DynInstr &x = a.instrs[i];
        const DynInstr &y = b.instrs[i];
        ASSERT_EQ(x.img, y.img) << "at " << i;
        ASSERT_EQ(x.taken, y.taken) << "at " << i;
        ASSERT_EQ(x.effAddr, y.effAddr) << "at " << i;
        ASSERT_EQ(x.prod[0], y.prod[0]) << "at " << i;
        ASSERT_EQ(x.prod[1], y.prod[1]) << "at " << i;
        ASSERT_EQ(x.memProd, y.memProd) << "at " << i;
    }
}

void
expectSamePoints(const std::vector<SpawnPoint> &a,
                 const std::vector<SpawnPoint> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].triggerPc, b[i].triggerPc) << "at " << i;
        EXPECT_EQ(a[i].targetPc, b[i].targetPc) << "at " << i;
        EXPECT_EQ(a[i].kind, b[i].kind) << "at " << i;
        EXPECT_EQ(a[i].func, b[i].func) << "at " << i;
        EXPECT_EQ(a[i].depMask, b[i].depMask) << "at " << i;
    }
}

// --- Codec round-trips (no filesystem involved).

TEST(TraceCodec, RoundTripsExactly)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);

    std::string payload;
    encodeTrace(t, payload);
    Trace back;
    ASSERT_TRUE(decodeTrace(payload, w.prog, back));
    EXPECT_EQ(back.prog, &w.prog);
    expectSameTrace(t, back);
}

TEST(TraceCodec, RejectsTruncatedAndTrailingPayloads)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);
    std::string payload;
    encodeTrace(t, payload);

    Trace back;
    EXPECT_FALSE(decodeTrace(
        std::string_view(payload).substr(0, payload.size() - 1),
        w.prog, back));
    EXPECT_FALSE(decodeTrace(payload + "x", w.prog, back));
    EXPECT_FALSE(decodeTrace("", w.prog, back));
}

TEST(TraceCodec, RejectsOutOfRangeStaticIndex)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);
    // One record whose static-image index is past program end.
    Trace evil;
    evil.prog = &w.prog;
    evil.instrs.push_back(t.instrs.front());
    evil.instrs.back().img =
        static_cast<std::uint32_t>(w.prog.size());
    std::string payload;
    encodeTrace(evil, payload);
    Trace back;
    EXPECT_FALSE(decodeTrace(payload, w.prog, back));
}

TEST(SpawnCodec, RoundTripsExactly)
{
    Workload w = smallWorkload();
    SpawnAnalysis sa(*w.module, w.prog);
    std::string payload;
    encodeSpawnPoints(sa.points(), payload);
    std::vector<SpawnPoint> back;
    ASSERT_TRUE(decodeSpawnPoints(payload, back));
    expectSamePoints(sa.points(), back);
}

// --- Store round-trips.

TEST_F(StoreTest, TraceRoundTripsThroughStore)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);

    ArtifactStore store(_root);
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));
    EXPECT_EQ(store.misses(), 1);
    ASSERT_TRUE(store.saveTrace("twolf", 0.02, w.prog, t));
    auto back = store.loadTrace("twolf", 0.02, w.prog);
    ASSERT_TRUE(back);
    EXPECT_EQ(store.hits(), 1);
    expectSameTrace(t, *back);

    // Wrong scale, wrong name: misses, not collisions.
    EXPECT_FALSE(store.loadTrace("twolf", 0.021, w.prog));
    EXPECT_FALSE(store.loadTrace("twolf2", 0.02, w.prog));
}

TEST_F(StoreTest, ProgramContentChangesTheKey)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);
    ArtifactStore store(_root);
    ASSERT_TRUE(store.saveTrace("twolf", 0.02, w.prog, t));

    // A workload whose program content differs (scale 0.1 emits a
    // different trip-count immediate) must miss even when queried
    // under the exact same (name, scale) key — the content hash is
    // what protects renamed or edited workloads.
    Workload w2 = buildWorkload("twolf", 0.1);
    ASSERT_NE(store::programContentHash(w.prog),
              store::programContentHash(w2.prog));
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w2.prog));
}

TEST_F(StoreTest, AnalysisAndHintsRoundTrip)
{
    Workload w = smallWorkload();
    SpawnAnalysis sa(*w.module, w.prog);
    SpawnPolicy pol = SpawnPolicy::postdoms();
    HintTable ht(sa, pol);

    ArtifactStore store(_root);
    ASSERT_TRUE(
        store.saveAnalysisPoints("twolf", 0.02, w.prog, sa.points()));
    ASSERT_TRUE(store.saveHintPoints("twolf", 0.02, w.prog,
                                     pol.kindMask, ht.points()));

    auto pts = store.loadAnalysisPoints("twolf", 0.02, w.prog);
    ASSERT_TRUE(pts);
    expectSamePoints(sa.points(), *pts);
    // Rehydrated analysis preserves the census.
    SpawnAnalysis sa2(std::move(*pts));
    for (int k = 0; k < numSpawnKinds; ++k)
        EXPECT_EQ(sa.census().byKind[k], sa2.census().byKind[k]);

    auto hp = store.loadHintPoints("twolf", 0.02, w.prog,
                                   pol.kindMask);
    ASSERT_TRUE(hp);
    HintTable ht2(*hp);
    ASSERT_EQ(ht.size(), ht2.size());
    expectSamePoints(ht.points(), ht2.points());
    // A different policy mask is a different key.
    EXPECT_FALSE(store.loadHintPoints(
        "twolf", 0.02, w.prog, SpawnPolicy::loop().kindMask));
}

// --- Validation: every broken container is a miss, never a crash.

TEST_F(StoreTest, CorruptTruncatedAndVersionSkewAreMisses)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);
    ArtifactStore store(_root);
    ASSERT_TRUE(store.saveTrace("twolf", 0.02, w.prog, t));

    auto entries = store.entries();
    ASSERT_EQ(entries.size(), 1u);
    ASSERT_TRUE(entries[0].valid);
    const fs::path file = entries[0].path;
    std::string pristine;
    {
        std::ifstream in(file, std::ios::binary);
        pristine.assign(std::istreambuf_iterator<char>(in), {});
    }

    auto rewrite = [&](const std::string &bytes) {
        std::ofstream out(file,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // Flipped payload byte: checksum mismatch.
    std::string corrupt = pristine;
    corrupt[corrupt.size() - 5] ^= 0x40;
    rewrite(corrupt);
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));
    EXPECT_FALSE(store.entries()[0].valid);

    // Truncation: header says more payload than the file holds.
    rewrite(pristine.substr(0, pristine.size() / 2));
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));
    EXPECT_FALSE(store.entries()[0].valid);

    // Version skew: bump the u32 after the 8-byte magic.
    std::string skew = pristine;
    skew[8] = char(store::formatVersion + 1);
    rewrite(skew);
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));
    EXPECT_FALSE(store.entries()[0].valid);

    // Garbage and empty files.
    rewrite("not a container at all");
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));
    rewrite("");
    EXPECT_FALSE(store.loadTrace("twolf", 0.02, w.prog));

    // Restored pristine bytes hit again.
    rewrite(pristine);
    EXPECT_TRUE(store.loadTrace("twolf", 0.02, w.prog));
    EXPECT_TRUE(store.entries()[0].valid);
}

TEST_F(StoreTest, SweepCacheRebuildsOverACorruptStore)
{
    // Cold pass populates the store.
    auto seed = std::make_shared<ArtifactStore>(_root);
    driver::SweepCache cold;
    cold.attachStore(seed);
    auto ref = cold.traced("twolf", 0.02);
    EXPECT_EQ(cold.tracesBuilt(), 1);

    // Vandalize every entry.
    for (const auto &e : seed->entries()) {
        std::ofstream out(e.path,
                          std::ios::binary | std::ios::trunc);
        out << "vandalized";
    }

    // A fresh process-equivalent must rebuild and agree.
    driver::SweepCache warm;
    warm.attachStore(std::make_shared<ArtifactStore>(_root));
    auto re = warm.traced("twolf", 0.02);
    EXPECT_EQ(warm.tracesBuilt(), 1);
    expectSameTrace(ref->trace, re->trace);
}

// --- Concurrency: same-key writers race benignly.

TEST_F(StoreTest, ConcurrentSameKeyWritersLeaveOneValidEntry)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);

    constexpr int kWriters = 8;
    std::vector<std::thread> pool;
    for (int i = 0; i < kWriters; ++i) {
        pool.emplace_back([&] {
            ArtifactStore store(_root);
            store.saveTrace("twolf", 0.02, w.prog, t);
        });
    }
    for (auto &th : pool)
        th.join();

    ArtifactStore store(_root);
    auto entries = store.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries[0].valid) << entries[0].error;
    auto back = store.loadTrace("twolf", 0.02, w.prog);
    ASSERT_TRUE(back);
    expectSameTrace(t, *back);
}

// --- Cold vs warm: a second pipeline over a warm store performs
// zero functional simulations and reproduces every artifact.

TEST_F(StoreTest, WarmPipelineBuildsNothingAndMatchesCold)
{
    const std::vector<std::string> names = {"twolf", "mcf"};
    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loop(), SpawnPolicy::postdoms()};

    auto runAll = [&](driver::SweepCache &cache) {
        std::vector<TimingResult> out;
        for (const auto &n : names) {
            Session s = Session::open(
                n, 0.02,
                std::shared_ptr<driver::SweepCache>(
                    &cache, [](driver::SweepCache *) {}));
            for (const auto &p : policies)
                out.push_back(s.simulate(MachineConfig{}, p));
        }
        return out;
    };

    driver::SweepCache cold;
    cold.attachStore(std::make_shared<ArtifactStore>(_root));
    auto coldRes = runAll(cold);
    EXPECT_EQ(cold.tracesBuilt(), int(names.size()));
    EXPECT_EQ(cold.analysesBuilt(), int(names.size()));

    driver::SweepCache warm;
    warm.attachStore(std::make_shared<ArtifactStore>(_root));
    auto warmRes = runAll(warm);
    EXPECT_EQ(warm.tracesBuilt(), 0);
    EXPECT_EQ(warm.analysesBuilt(), 0);
    EXPECT_EQ(warm.hintTablesBuilt(), 0);

    ASSERT_EQ(coldRes.size(), warmRes.size());
    for (size_t i = 0; i < coldRes.size(); ++i) {
        EXPECT_EQ(coldRes[i].cycles, warmRes[i].cycles) << i;
        EXPECT_EQ(coldRes[i].instrs, warmRes[i].instrs) << i;
        EXPECT_EQ(coldRes[i].spawns, warmRes[i].spawns) << i;
        EXPECT_EQ(coldRes[i].violations, warmRes[i].violations)
            << i;
    }
}

// --- Maintenance surface (what tools/pf_cache drives).

TEST_F(StoreTest, MaintenanceRemovesInvalidTrimsAndClears)
{
    Workload w = smallWorkload();
    Trace t = traceOf(w);
    SpawnAnalysis sa(*w.module, w.prog);

    ArtifactStore store(_root);
    ASSERT_TRUE(store.saveTrace("twolf", 0.02, w.prog, t));
    ASSERT_TRUE(
        store.saveAnalysisPoints("twolf", 0.02, w.prog, sa.points()));
    ASSERT_EQ(store.entries().size(), 2u);

    EXPECT_EQ(store.removeInvalid(), 0);

    // Break one entry; removeInvalid drops exactly it.
    {
        std::ofstream out(store.entries()[0].path,
                          std::ios::binary | std::ios::trunc);
        out << "junk";
    }
    EXPECT_EQ(store.removeInvalid(), 1);
    ASSERT_EQ(store.entries().size(), 1u);
    EXPECT_TRUE(store.entries()[0].valid);

    // trimToBytes(0) empties; clear() on empty is a no-op.
    EXPECT_EQ(store.trimToBytes(0), 1);
    EXPECT_EQ(store.entries().size(), 0u);
    EXPECT_EQ(store.clear(), 0);
}

TEST(StoreEnv, OffDisablesTheStore)
{
    ::setenv("PF_CACHE_DIR", "off", 1);
    EXPECT_EQ(ArtifactStore::openFromEnv(), nullptr);
    ::setenv("PF_CACHE_DIR", "none", 1);
    EXPECT_EQ(ArtifactStore::openFromEnv(), nullptr);
    ::setenv("PF_CACHE_DIR", "0", 1);
    EXPECT_EQ(ArtifactStore::openFromEnv(), nullptr);

    auto dir = fs::temp_directory_path() / "pf-store-test-env";
    fs::remove_all(dir);
    ::setenv("PF_CACHE_DIR", dir.string().c_str(), 1);
    auto store = ArtifactStore::openFromEnv();
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(store->root(), dir);
    ::setenv("PF_CACHE_DIR", "off", 1);
    fs::remove_all(dir);
}

} // namespace
} // namespace polyflow
