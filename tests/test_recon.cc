/**
 * @file
 * Tests for the dynamic reconvergence predictor: training on
 * synthetic retirement streams and on real program traces, warm-up
 * behaviour, and agreement with static immediate postdominators.
 */

#include <gtest/gtest.h>

#include "analysis/cfg_view.hh"
#include "analysis/dominators.hh"
#include "ir/builder.hh"
#include "isa/functional_sim.hh"
#include "recon/recon_predictor.hh"
#include "workloads/wl_common.hh"
#include "workloads/workloads.hh"

namespace polyflow {
namespace {

/** Feed a trace into a predictor. */
void
train(ReconPredictor &pred, const Trace &t)
{
    for (TraceIdx i = 0; i < t.size(); ++i) {
        const LinkedInstr &li = t.staticOf(i);
        pred.observeCommit(li.addr, li.instr.isCondBranch(),
                           t.instrs[i].taken, li.blockStart);
    }
}

/** Build, run and return {program, trace}. */
struct Traced
{
    Module mod{"t"};
    LinkedProgram prog;
    Trace trace;
    std::unique_ptr<FunctionalResult> result;
};

Traced
makeIfThenElseLoop()
{
    Traced t;
    Function &f = t.mod.createFunction("main");
    WlRng rng(11);
    Addr bits = allocBitWords(t.mod, "bits", 256, 50, rng);
    FunctionBuilder b(f);
    BlockId loop = b.newBlock("loop");
    BlockId thenB = b.newBlock("then");
    BlockId elseB = b.newBlock("else");
    BlockId join = b.newBlock("join");
    BlockId done = b.newBlock("done");
    b.li(reg::t0, std::int64_t(bits));
    b.li(reg::t1, 256);
    b.jump(loop);
    b.setBlock(loop);
    b.ld(reg::t2, reg::t0, 0);
    b.beq(reg::t2, reg::zero, elseB);
    b.setBlock(thenB);
    b.addi(reg::t3, reg::t3, 1);
    b.jump(join);
    b.setBlock(elseB);
    b.addi(reg::t3, reg::t3, 2);
    b.setBlock(join);
    b.addi(reg::t0, reg::t0, 8);
    b.addi(reg::t1, reg::t1, -1);
    b.bne(reg::t1, reg::zero, loop);
    b.setBlock(done);
    b.halt();
    t.prog = t.mod.link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    t.result = std::make_unique<FunctionalResult>(
        runFunctional(t.prog, opt));
    t.trace = std::move(t.result->trace);
    return t;
}

TEST(ReconPredictor, ColdPredictorPredictsNothing)
{
    ReconPredictor p;
    EXPECT_EQ(p.predict(0x1000), invalidAddr);
    EXPECT_EQ(p.numTrackedBranches(), 0u);
}

TEST(ReconPredictor, LearnsIfThenElseJoin)
{
    Traced t = makeIfThenElseLoop();
    ReconPredictor pred;
    train(pred, t.trace);

    const Function &f = t.mod.function(0);
    Addr branchPc = f.block(1).termAddr();  // the beq in "loop"
    Addr joinPc = f.block(4).startAddr();   // "join"
    EXPECT_EQ(pred.predict(branchPc), joinPc);
}

TEST(ReconPredictor, LearnsLoopFallThrough)
{
    Traced t = makeIfThenElseLoop();
    ReconPredictor pred;
    train(pred, t.trace);

    // The back branch's reconvergence is the loop fall-through
    // ("done"), observed when the loop finally exits... but a
    // single exit gives only one not-taken instance, so the
    // predictor may or may not reach confidence. Train twice.
    train(pred, t.trace);
    const Function &f = t.mod.function(0);
    Addr backPc = f.block(4).termAddr();
    Addr pred_pc = pred.predict(backPc);
    // Either unpredicted (not enough exits) or the fall-through.
    if (pred_pc != invalidAddr)
        EXPECT_EQ(pred_pc, f.block(5).startAddr());
}

TEST(ReconPredictor, WarmupNeedsBothOutcomes)
{
    ReconPredictor pred;
    // Only taken instances of a synthetic branch: no prediction.
    for (int i = 0; i < 50; ++i) {
        pred.observeCommit(0x1000, true, true, true);
        pred.observeCommit(0x2000, false, false, true);
        pred.observeCommit(0x3000, false, false, true);
    }
    EXPECT_EQ(pred.predict(0x1000), invalidAddr);
}

TEST(ReconPredictor, SyntheticDiamondConverges)
{
    ReconPredictor pred;
    // branch at 0x100: taken -> 0x200 then 0x300; not-taken ->
    // 0x180 then 0x300. Reconvergence = 0x300.
    for (int i = 0; i < 20; ++i) {
        bool taken = i % 2 == 0;
        pred.observeCommit(0x100, true, taken, true);
        if (taken)
            pred.observeCommit(0x200, false, false, true);
        else
            pred.observeCommit(0x180, false, false, true);
        pred.observeCommit(0x300, false, false, true);
        pred.observeCommit(0x304, false, false, false);
    }
    EXPECT_EQ(pred.predict(0x100), 0x300u);
    EXPECT_GT(pred.instancesCompleted(), 0u);
}

TEST(ReconPredictor, ConfidentPredictionsListsLearned)
{
    ReconPredictor pred;
    for (int i = 0; i < 20; ++i) {
        bool taken = i % 2 == 0;
        pred.observeCommit(0x100, true, taken, true);
        pred.observeCommit(taken ? 0x200 : 0x180, false, false,
                           true);
        pred.observeCommit(0x300, false, false, true);
    }
    auto all = pred.confidentPredictions();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].first, 0x100u);
    EXPECT_EQ(all[0].second, 0x300u);
}

TEST(ReconPredictor, AgreesWithStaticIpdomsOnWorkloads)
{
    // Across real workloads, confident predictions should mostly
    // match the compiler's immediate postdominators.
    int match = 0, total = 0;
    for (const std::string &name :
         {"crafty", "twolf", "mcf", "bzip2"}) {
        Workload w = buildWorkload(name, 0.05);
        FunctionalOptions opt;
        opt.recordTrace = true;
        auto r = runFunctional(w.prog, opt);
        ReconPredictor pred;
        train(pred, r.trace);

        // Static map branch PC -> ipdom start PC.
        std::unordered_map<Addr, Addr> ipdoms;
        for (size_t fi = 0; fi < w.module->numFunctions(); ++fi) {
            const Function &fn = w.module->function(FuncId(fi));
            CfgView cfg(fn);
            PostDominatorTree pdt(cfg);
            for (size_t bi = 0; bi < fn.numBlocks(); ++bi) {
                const BasicBlock &bb = fn.block(BlockId(bi));
                if (!bb.hasTerminator() ||
                    !bb.terminator().isCondBranch())
                    continue;
                BlockId j = pdt.ipdomBlock(BlockId(bi));
                if (j != invalidBlock)
                    ipdoms[bb.termAddr()] = fn.block(j).startAddr();
            }
        }
        for (auto [pc, target] : pred.confidentPredictions()) {
            auto it = ipdoms.find(pc);
            if (it == ipdoms.end())
                continue;
            ++total;
            match += (it->second == target);
        }
    }
    ASSERT_GE(total, 8);
    EXPECT_GE(match * 100, total * 60)
        << "predictor agreement too low: " << match << "/" << total;
}

TEST(ReconPredictor, BoundedState)
{
    // Feed many distinct branches; active-table stays bounded.
    ReconConfig cfg;
    cfg.maxActive = 4;
    ReconPredictor pred(cfg);
    for (int i = 0; i < 1000; ++i)
        pred.observeCommit(0x1000 + 8 * (i % 100), true, i % 2, true);
    EXPECT_LE(pred.numTrackedBranches(), 100u);
    EXPECT_GT(pred.instancesCompleted() + pred.instancesAborted(),
              500u);
}

} // namespace
} // namespace polyflow
