/**
 * @file
 * Property tests over randomly generated CFGs: the CHK dominator /
 * postdominator implementation against the independent iterative
 * solver, structural invariants of dominance, the
 * Ferrante-Ottenstein-Warren control dependence construction
 * against a brute-force of its definition, loop invariants, and
 * liveness dataflow invariants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "analysis/cfg_view.hh"
#include "analysis/control_dep.hh"
#include "analysis/dominators.hh"
#include "analysis/iterative_dom.hh"
#include "analysis/liveness.hh"
#include "analysis/loops.hh"
#include "ir/builder.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

/**
 * Generate a random function whose every reachable block can reach
 * the exit (postdominators are then total).
 */
std::unique_ptr<Module>
randomCfg(std::uint64_t seed)
{
    WlRng rng(seed);
    auto mod = std::make_unique<Module>("rand");
    Function &fn = mod->createFunction("f");
    int n = 4 + int(rng.range(20));
    FunctionBuilder b(fn);
    for (int i = 1; i < n; ++i)
        b.newBlock();

    for (int i = 0; i < n; ++i) {
        b.setBlock(i);
        int pad = int(rng.range(3));
        for (int k = 0; k < pad; ++k)
            b.addi(reg::t0, reg::t0, 1);
        if (i == n - 1) {
            b.halt();
            continue;
        }
        int roll = int(rng.range(100));
        int target = int(rng.range(n));
        if (roll < 45) {
            b.beq(reg::t1, reg::zero, target);  // falls to i+1
        } else if (roll < 65) {
            b.jump(target);
        } else if (roll < 72) {
            b.ret();
        } else {
            b.addi(reg::t2, reg::t2, 1);  // plain fall-through
        }
    }

    // Repair blocks that cannot reach the exit (infinite regions):
    // rewrite their terminator into a jump to the final block.
    for (int guard = 0; guard < n + 2; ++guard) {
        fn.resolveFallThroughs();
        CfgView cfg(fn);
        if (cfg.exitReachesAll())
            break;
        // Find reachable nodes that cannot reach the exit.
        std::vector<bool> toExit(cfg.numNodes(), false);
        std::vector<int> work{cfg.exitNode()};
        toExit[cfg.exitNode()] = true;
        while (!work.empty()) {
            int x = work.back();
            work.pop_back();
            for (int p : cfg.preds(x)) {
                if (!toExit[p]) {
                    toExit[p] = true;
                    work.push_back(p);
                }
            }
        }
        for (int i = 0; i < n; ++i) {
            if (cfg.reachable(i) && !toExit[i]) {
                BasicBlock &bb = fn.block(i);
                if (bb.hasTerminator())
                    bb.instrs().pop_back();
                bb.takenSucc(invalidBlock);
                bb.fallSucc(invalidBlock);
                b.setBlock(i);
                b.jump(n - 1);
                break;  // re-evaluate after each repair
            }
        }
    }
    fn.resolveFallThroughs();
    fn.validate();
    return mod;
}

class CfgProperty : public ::testing::TestWithParam<int>
{};

TEST_P(CfgProperty, ChkMatchesIterativeDominators)
{
    auto mod = randomCfg(GetParam() * 7919 + 17);
    CfgView cfg(mod->function(0));
    DominatorTree dt(cfg);
    auto sets = iterativeDoms(cfg);
    auto ref = idomsFromSets(sets, cfg.entryNode());
    for (int v = 0; v < cfg.numNodes(); ++v) {
        if (!cfg.reachable(v) || v == cfg.entryNode())
            continue;
        EXPECT_EQ(dt.idom(v), ref[v]) << "node " << v;
    }
}

TEST_P(CfgProperty, ChkMatchesIterativePostdominators)
{
    auto mod = randomCfg(GetParam() * 104729 + 5);
    CfgView cfg(mod->function(0));
    ASSERT_TRUE(cfg.exitReachesAll());
    PostDominatorTree pdt(cfg);
    auto sets = iterativePostDoms(cfg);
    auto ref = idomsFromSets(sets, cfg.exitNode());
    for (int v = 0; v < cfg.numNodes(); ++v) {
        if (!cfg.reachable(v) || v == cfg.exitNode())
            continue;
        EXPECT_EQ(pdt.idom(v), ref[v]) << "node " << v;
    }
}

TEST_P(CfgProperty, DominanceStructuralInvariants)
{
    auto mod = randomCfg(GetParam() * 31337 + 3);
    CfgView cfg(mod->function(0));
    DominatorTree dt(cfg);
    PostDominatorTree pdt(cfg);
    auto domSets = iterativeDoms(cfg);

    for (int v = 0; v < cfg.numNodes(); ++v) {
        if (!cfg.reachable(v))
            continue;
        // The entry dominates every reachable node.
        EXPECT_TRUE(dt.dominates(cfg.entryNode(), v));
        // The exit postdominates every reachable node.
        EXPECT_TRUE(pdt.postDominates(cfg.exitNode(), v));
        // Dominance is reflexive.
        EXPECT_TRUE(dt.dominates(v, v));
        // Tree queries agree with full sets.
        for (int u = 0; u < cfg.numNodes(); ++u) {
            if (!cfg.reachable(u))
                continue;
            EXPECT_EQ(dt.dominates(u, v),
                      bool(domSets[v][u]))
                << u << " dom " << v;
        }
        // The immediate postdominator strictly postdominates v.
        if (v != cfg.exitNode() && pdt.idom(v) >= 0) {
            EXPECT_TRUE(pdt.postDominates(pdt.idom(v), v));
            EXPECT_NE(pdt.idom(v), v);
        }
    }
}

TEST_P(CfgProperty, ControlDepsMatchDefinition)
{
    auto mod = randomCfg(GetParam() * 999331 + 1);
    CfgView cfg(mod->function(0));
    PostDominatorTree pdt(cfg);
    ControlDepGraph cdg(cfg, pdt);

    // Definition: Y is control dependent on X iff Y postdominates
    // some successor of X but does not strictly postdominate X.
    for (int x = 0; x < cfg.numNodes(); ++x) {
        if (!cfg.reachable(x))
            continue;
        for (int y = 0; y < cfg.numNodes(); ++y) {
            if (!cfg.reachable(y))
                continue;
            bool someSucc = false;
            for (int s : cfg.succs(x))
                someSucc = someSucc || pdt.postDominates(y, s);
            bool expected = someSucc &&
                !(y != x && pdt.postDominates(y, x));
            EXPECT_EQ(cdg.dependsOn(y, x), expected)
                << y << " cd " << x;
        }
    }
}

TEST_P(CfgProperty, LoopInvariants)
{
    auto mod = randomCfg(GetParam() * 271828 + 9);
    CfgView cfg(mod->function(0));
    DominatorTree dt(cfg);
    LoopForest loops(cfg, dt);

    for (const Loop &L : loops.loops()) {
        // Headers dominate all loop members.
        for (int m : L.blocks)
            EXPECT_TRUE(dt.dominates(L.header, m))
                << "header " << L.header << " member " << m;
        // Latches are members with an edge to the header.
        for (int latch : L.latches) {
            EXPECT_TRUE(L.contains(latch));
            bool edge = false;
            for (int s : cfg.succs(latch))
                edge = edge || (s == L.header);
            EXPECT_TRUE(edge);
        }
        // Parent loops strictly contain children.
        if (L.parent >= 0) {
            const Loop &P = loops.loops()[L.parent];
            EXPECT_GT(P.blocks.size(), L.blocks.size());
            for (int m : L.blocks)
                EXPECT_TRUE(P.contains(m));
            EXPECT_EQ(L.depth, P.depth + 1);
        }
        // Exit edges lead outside.
        for (auto [from, to] : L.exitEdges) {
            EXPECT_TRUE(L.contains(from));
            EXPECT_FALSE(L.contains(to));
        }
    }
    // Innermost membership is consistent.
    for (int v = 0; v < cfg.numNodes(); ++v) {
        int id = loops.innermostLoopOf(v);
        if (id >= 0)
            EXPECT_TRUE(loops.loops()[id].contains(v));
    }
}

TEST_P(CfgProperty, LivenessDataflowInvariants)
{
    auto mod = randomCfg(GetParam() * 65537 + 21);
    const Function &fn = mod->function(0);
    Liveness lv(fn, {});
    CfgView cfg(fn);
    int n = static_cast<int>(fn.numBlocks());
    for (int bIdx = 0; bIdx < n; ++bIdx) {
        // liveIn = use | (liveOut & ~def)
        EXPECT_EQ(lv.liveIn(bIdx),
                  lv.use(bIdx) |
                      (lv.liveOut(bIdx) & ~lv.def(bIdx)));
        // liveOut contains every successor's liveIn.
        for (int s : cfg.succs(bIdx)) {
            if (s < n) {
                EXPECT_EQ(lv.liveOut(bIdx) & lv.liveIn(s),
                          lv.liveIn(s));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgProperty,
                         ::testing::Range(0, 25));

} // namespace
} // namespace polyflow
