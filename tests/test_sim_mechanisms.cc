/**
 * @file
 * Targeted tests for the timing simulator's individual mechanisms:
 * wrong-path ghost contexts, compiler dependence hints, spawn
 * feedback, divert-release delay, return-address-stack and
 * indirect-target misprediction accounting.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "polyflow.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

struct Prepared
{
    Workload w;
    std::unique_ptr<FunctionalResult> fr;
    std::unique_ptr<SpawnAnalysis> sa;

    TimingResult
    run(const SpawnPolicy &pol, const MachineConfig &cfg)
    {
        StaticSpawnSource src{HintTable(*sa, pol)};
        return runTiming(cfg, fr->trace, &src, pol.name);
    }
};

Prepared
prepare(const std::string &name, double scale)
{
    Prepared p;
    p.w = buildWorkload(name, scale);
    FunctionalOptions opt;
    opt.recordTrace = true;
    p.fr = std::make_unique<FunctionalResult>(
        runFunctional(p.w.prog, opt));
    p.sa = std::make_unique<SpawnAnalysis>(*p.w.module, p.w.prog);
    return p;
}

TEST(Mechanisms, GhostContextsThrottleSpawnsUnderMispredicts)
{
    // twolf is mispredict-dense: holding a context per unresolved
    // mispredict must reduce spawn throughput.
    Prepared p = prepare("twolf", 0.1);
    MachineConfig on;
    MachineConfig off;
    off.wrongPathGhosts = false;
    TimingResult rOn = p.run(SpawnPolicy::loop(), on);
    TimingResult rOff = p.run(SpawnPolicy::loop(), off);
    EXPECT_LT(rOn.spawns, rOff.spawns);
}

TEST(Mechanisms, CompilerHintsPreventViolations)
{
    // Without hints, cross-task register consumers speculate and
    // squash once per consumer PC before the predictor learns.
    Prepared p = prepare("twolf", 0.1);
    MachineConfig hints;
    MachineConfig noHints;
    noHints.compilerDepHints = false;
    TimingResult rH = p.run(SpawnPolicy::postdoms(), hints);
    TimingResult rN = p.run(SpawnPolicy::postdoms(), noHints);
    EXPECT_LT(rH.violations, rN.violations);
}

TEST(Mechanisms, DependenceMasksComputed)
{
    // twolf's loopFT spawn out of the inner loop must carry a
    // nonempty dependence mask (the accumulator registers and the
    // list cursor are written in the region and live at the join).
    Prepared p = prepare("twolf", 0.05);
    bool sawMask = false;
    for (const SpawnPoint &sp : p.sa->points()) {
        if (sp.kind == SpawnKind::LoopFT && sp.depMask != 0)
            sawMask = true;
        // r0 never appears in a mask.
        EXPECT_EQ(sp.depMask & 1u, 0u);
    }
    EXPECT_TRUE(sawMask);
}

TEST(Mechanisms, FeedbackDisablesUnprofitableTriggers)
{
    // A fully serial chain loop: every loop-iteration task's
    // instructions cascade into the divert queue (the first consumer
    // synchronizes cross-task, and its same-task dependents follow
    // it), so the profitability feedback must disable the trigger.
    Module m("t");
    Function &f = m.createFunction("main");
    {
        FunctionBuilder b(f);
        BlockId loop = b.newBlock();
        BlockId done = b.newBlock();
        b.li(reg::t0, 3);
        b.li(reg::t1, 800);
        b.jump(loop);
        b.setBlock(loop);
        for (int i = 0; i < 8; ++i) {
            b.slli(reg::t2, reg::t0, 1);
            b.add(reg::t0, reg::t0, reg::t2);
        }
        b.addi(reg::t1, reg::t1, -1);
        b.bne(reg::t1, reg::zero, loop);
        b.setBlock(done);
        b.halt();
    }
    LinkedProgram prog = m.link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(prog, opt);
    ASSERT_TRUE(fr.halted);
    SpawnAnalysis sa(m, prog);

    MachineConfig fb;
    StaticSpawnSource s1{HintTable(sa, SpawnPolicy::loop())};
    TimingResult r = runTiming(fb, fr.trace, &s1, "loop");
    EXPECT_GT(r.spawnsSkippedFeedback, 0u);
    EXPECT_GT(r.triggersDisabled, 0u);

    MachineConfig noFb;
    noFb.spawnFeedback = false;
    StaticSpawnSource s2{HintTable(sa, SpawnPolicy::loop())};
    TimingResult r2 = runTiming(noFb, fr.trace, &s2, "loop");
    EXPECT_EQ(r2.spawnsSkippedFeedback, 0u);
    EXPECT_GT(r2.spawns, r.spawns);
}

TEST(Mechanisms, DivertReleaseDelaySlowsSynchronizedChains)
{
    Prepared p = prepare("twolf", 0.1);
    MachineConfig fast;
    fast.divertReleaseDelay = 0;
    MachineConfig slow;
    slow.divertReleaseDelay = 12;
    TimingResult rF = p.run(SpawnPolicy::postdoms(), fast);
    TimingResult rS = p.run(SpawnPolicy::postdoms(), slow);
    EXPECT_LT(rF.cycles, rS.cycles);
}

TEST(Mechanisms, SpawnDistanceCapFiltersFarTargets)
{
    Prepared p = prepare("twolf", 0.1);
    MachineConfig tight;
    tight.maxSpawnDistance = 16;
    TimingResult r = p.run(SpawnPolicy::postdoms(), tight);
    EXPECT_GT(r.spawnsSkippedDistance, 0u);
}

TEST(Mechanisms, ReturnMispredictsOnDeepRecursion)
{
    // Recursion deeper than the 16-entry RAS must overflow it and
    // mispredict some returns.
    Module m("t");
    Function &f = m.createFunction("rec");
    {
        FunctionBuilder b(f);
        BlockId recurse = b.newBlock();
        BlockId out = b.newBlock();
        b.beq(reg::a0, reg::zero, out);
        b.setBlock(recurse);
        b.addi(reg::sp, reg::sp, -16);
        b.sd(reg::ra, reg::sp, 0);
        b.addi(reg::a0, reg::a0, -1);
        b.call(0);
        b.ld(reg::ra, reg::sp, 0);
        b.addi(reg::sp, reg::sp, 16);
        b.setBlock(out);
        b.ret();
    }
    Function &main = m.createFunction("main");
    {
        FunctionBuilder b(main);
        b.li(reg::a0, 40);  // depth 40 >> 16 RAS entries
        b.call(f.id());
        b.halt();
    }
    m.entryFunction(main.id());
    LinkedProgram prog = m.link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(prog, opt);
    ASSERT_TRUE(r.halted);
    TimingResult s = runTiming(MachineConfig::superscalar(), r.trace,
                           nullptr, "ss");
    EXPECT_GT(s.returnMispredicts, 10u);

    // A generous RAS removes them.
    MachineConfig big = MachineConfig::superscalar();
    big.returnStackEntries = 64;
    TimingResult s2 = runTiming(big, r.trace, nullptr, "ss");
    EXPECT_EQ(s2.returnMispredicts, 0u);
}

TEST(Mechanisms, IndirectTargetPredictionAccounting)
{
    // A two-target switch alternating every iteration defeats the
    // last-target predictor almost always.
    Module m("t");
    WlRng rng(5);
    Function &f = m.createFunction("main");
    BlockId c0, c1;
    Addr jt;
    {
        FunctionBuilder b(f);
        BlockId loop = b.newBlock("loop");
        BlockId disp = b.newBlock("disp");
        c0 = b.newBlock("c0");
        c1 = b.newBlock("c1");
        BlockId latch = b.newBlock("latch");
        BlockId done = b.newBlock("done");
        b.li(reg::t0, 200);
        b.li(reg::t1, 0);
        b.jump(loop);
        b.setBlock(loop);
        b.andi(reg::t2, reg::t0, 1);  // alternate
        b.slli(reg::t2, reg::t2, 3);
        b.jump(disp);
        b.setBlock(disp);
        b.add(reg::t3, reg::t2, reg::t4);  // t4 = table base
        b.ld(reg::t3, reg::t3, 0);
        b.jr(reg::t3, {c0, c1});
        b.setBlock(c0);
        b.addi(reg::t1, reg::t1, 1);
        b.jump(latch);
        b.setBlock(c1);
        b.addi(reg::t1, reg::t1, 2);
        b.setBlock(latch);
        b.addi(reg::t0, reg::t0, -1);
        b.bne(reg::t0, reg::zero, loop);
        b.setBlock(done);
        b.halt();
    }
    jt = m.allocJumpTable("jt", {{f.id(), c0}, {f.id(), c1}});
    // Patch t4 with the table base via an li at entry.
    f.block(0).instrs().insert(
        f.block(0).instrs().begin(), [&] {
            Instruction i;
            i.op = Opcode::LUI;
            i.rd = reg::t4;
            i.imm = std::int64_t(jt);
            return i;
        }());
    LinkedProgram prog = m.link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(prog, opt);
    ASSERT_TRUE(r.halted);
    TimingResult s = runTiming(MachineConfig::superscalar(), r.trace,
                           nullptr, "ss");
    EXPECT_GT(s.indirectMispredicts, 150u);
}

TEST(Mechanisms, TasksRetiredEqualsSpawnsPlusOne)
{
    for (const std::string &name : {"twolf", "mcf", "vortex"}) {
        Prepared p = prepare(name, 0.05);
        TimingResult r = p.run(SpawnPolicy::postdoms(), MachineConfig{});
        EXPECT_EQ(r.tasksRetired, r.spawns + 1) << name;
    }
}

TEST(Mechanisms, AnyTaskSpawningLiftsTailRestriction)
{
    // Section 6 extension: with spawn-from-any-task, non-tail tasks
    // keep spawning, so total spawns must not drop and usually rise.
    Prepared p = prepare("twolf", 0.1);
    MachineConfig tail;
    MachineConfig any;
    any.spawnFromAnyTask = true;
    TimingResult rT = p.run(SpawnPolicy::postdoms(), tail);
    TimingResult rA = p.run(SpawnPolicy::postdoms(), any);
    EXPECT_EQ(rA.instrs, rT.instrs);
    EXPECT_GE(rA.spawns + 8, rT.spawns);
    EXPECT_EQ(rA.tasksRetired, rA.spawns + 1);
}

TEST(Mechanisms, DmtSourceSpawnsLoopAndProcFallThroughs)
{
    Prepared p = prepare("twolf", 0.1);
    DmtSpawnSource dmt;
    TimingResult r = runTiming(MachineConfig{}, p.fr->trace, &dmt, "dmt");
    EXPECT_EQ(r.instrs, p.fr->trace.size());
    EXPECT_GT(r.spawnsByKind[int(SpawnKind::LoopFT)], 0u);
    EXPECT_EQ(r.spawnsByKind[int(SpawnKind::Hammock)], 0u);
    EXPECT_EQ(r.spawnsByKind[int(SpawnKind::Other)], 0u);
}

TEST(Mechanisms, TaskEventsAreConsistent)
{
    Prepared p = prepare("mcf", 0.05);
    StaticSpawnSource src{
        HintTable(*p.sa, SpawnPolicy::postdoms())};
    std::vector<TaskEvent> events;
    TimingSim sim(MachineConfig{}, p.fr->trace, &src);
    sim.traceTasks(&events);
    TimingResult r = sim.run("postdoms");

    std::uint64_t spawns = 0, retires = 0, squashes = 0;
    std::uint64_t last = 0;
    for (const TaskEvent &e : events) {
        EXPECT_GE(e.cycle, last * 0);  // cycles are sane
        EXPECT_LT(e.begin, e.end);
        switch (e.kind) {
          case TaskEvent::Kind::Spawn: ++spawns; break;
          case TaskEvent::Kind::Retire: ++retires; break;
          case TaskEvent::Kind::Squash: ++squashes; break;
        }
        last = e.cycle;
    }
    EXPECT_EQ(spawns, r.spawns);
    EXPECT_EQ(retires, r.tasksRetired);
    EXPECT_EQ(squashes, r.tasksSquashed);
}

TEST(Mechanisms, SpeedupArithmetic)
{
    TimingResult base;
    base.cycles = 2000;
    base.instrs = 1000;
    TimingResult faster;
    faster.cycles = 1000;
    faster.instrs = 1000;
    EXPECT_DOUBLE_EQ(faster.speedupOver(base), 100.0);
    EXPECT_DOUBLE_EQ(base.speedupOver(base), 0.0);
    EXPECT_DOUBLE_EQ(base.ipc(), 0.5);
}

} // namespace
} // namespace polyflow
