/**
 * @file
 * Unit tests for the three spawn sources the Task Spawn Unit can be
 * wired to: static hint tables, the reconvergence-predictor source
 * and the DMT-style heuristics.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "sim/spawn_source.hh"

namespace polyflow {
namespace {

/** A linked two-function program with a call, a loop and an
 *  if-then, exercising every source. */
struct Fixture
{
    Module mod{"t"};
    LinkedProgram prog;
    Addr callPc = invalidAddr;
    Addr branchPc = invalidAddr;
    Addr backPc = invalidAddr;
    Addr joinPc = invalidAddr;

    Fixture()
    {
        Function &g = mod.createFunction("g");
        {
            FunctionBuilder b(g);
            b.ret();
        }
        Function &f = mod.createFunction("main");
        BlockId thenB, join, loop, done;
        {
            FunctionBuilder b(f);
            thenB = b.newBlock("then");
            join = b.newBlock("join");
            loop = b.newBlock("loop");
            done = b.newBlock("done");
            b.call(g.id());
            b.beq(reg::a0, reg::zero, join);
            b.setBlock(thenB);
            b.addi(reg::t0, reg::t0, 1);
            b.setBlock(join);
            b.li(reg::t1, 3);
            b.setBlock(loop);
            b.addi(reg::t1, reg::t1, -1);
            b.bne(reg::t1, reg::zero, loop);
            b.setBlock(done);
            b.halt();
        }
        mod.entryFunction(f.id());
        prog = mod.link();
        callPc = f.startAddr();
        branchPc = f.block(0).termAddr();
        joinPc = f.block(join).startAddr();
        backPc = f.block(loop).termAddr();
    }

    const LinkedInstr &at(Addr a) { return prog.at(prog.idxOf(a)); }
};

TEST(SpawnSources, StaticSourceFollowsTheTable)
{
    Fixture fx;
    SpawnAnalysis sa(fx.mod, fx.prog);
    StaticSpawnSource src{HintTable(sa, SpawnPolicy::postdoms())};

    auto h = src.query(fx.at(fx.branchPc));
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->targetPc, fx.joinPc);
    EXPECT_EQ(h->kind, SpawnKind::Hammock);

    auto c = src.query(fx.at(fx.callPc));
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->kind, SpawnKind::ProcFT);
    EXPECT_EQ(c->targetPc, fx.callPc + instrBytes);

    // Non-trigger PCs return nothing.
    EXPECT_FALSE(src.query(fx.at(fx.joinPc)).has_value());
}

TEST(SpawnSources, StaticSourceRespectsPolicy)
{
    Fixture fx;
    SpawnAnalysis sa(fx.mod, fx.prog);
    StaticSpawnSource hamOnly{HintTable(sa, SpawnPolicy::hammock())};
    EXPECT_TRUE(hamOnly.query(fx.at(fx.branchPc)).has_value());
    EXPECT_FALSE(hamOnly.query(fx.at(fx.callPc)).has_value());
    EXPECT_FALSE(hamOnly.query(fx.at(fx.backPc)).has_value());
}

TEST(SpawnSources, DmtSpawnsBackwardAndCallFallThroughs)
{
    Fixture fx;
    DmtSpawnSource dmt;

    // Backward branch -> loop fall-through at pc + 4.
    auto lf = dmt.query(fx.at(fx.backPc));
    ASSERT_TRUE(lf.has_value());
    EXPECT_EQ(lf->kind, SpawnKind::LoopFT);
    EXPECT_EQ(lf->targetPc, fx.backPc + instrBytes);

    // Forward branch: DMT has no hammock notion.
    EXPECT_FALSE(dmt.query(fx.at(fx.branchPc)).has_value());

    // Calls spawn the return address.
    auto pf = dmt.query(fx.at(fx.callPc));
    ASSERT_TRUE(pf.has_value());
    EXPECT_EQ(pf->kind, SpawnKind::ProcFT);
}

TEST(SpawnSources, ReconSourceWarmsUpThenPredicts)
{
    Fixture fx;
    ReconSpawnSource rec;

    // Cold: conditional branches yield nothing, calls always do.
    EXPECT_FALSE(rec.query(fx.at(fx.branchPc)).has_value());
    EXPECT_TRUE(rec.query(fx.at(fx.callPc)).has_value());

    // Train with alternating outcomes of the diamond.
    for (int i = 0; i < 30; ++i) {
        bool taken = i % 2 == 0;
        rec.onCommit(fx.at(fx.branchPc), taken);
        if (!taken) {
            // then-block start
            rec.onCommit(fx.at(fx.branchPc + instrBytes), false);
        }
        rec.onCommit(fx.at(fx.joinPc), false);
        rec.onCommit(fx.at(fx.joinPc + instrBytes), false);
    }
    auto h = rec.query(fx.at(fx.branchPc));
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->targetPc, fx.joinPc);
    // Dynamic sources carry no compiler dependence masks.
    EXPECT_EQ(h->depMask, 0u);
}

TEST(SpawnSources, StaticHintsCarryDependenceMasks)
{
    Fixture fx;
    SpawnAnalysis sa(fx.mod, fx.prog);
    StaticSpawnSource src{HintTable(sa, SpawnPolicy::postdoms())};
    auto h = src.query(fx.at(fx.branchPc));
    ASSERT_TRUE(h.has_value());
    // The then-block writes t0, which is dead at the join in this
    // fixture; masks never contain r0 regardless.
    EXPECT_EQ(h->depMask & 1u, 0u);
}

} // namespace
} // namespace polyflow
