/**
 * @file
 * Tests for the auxiliary library surface: liveness and write
 * summaries, dot export, the program printer / disassembler, and
 * the stats table helper.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/dot.hh"
#include "analysis/liveness.hh"
#include "ir/builder.hh"
#include "ir/printer.hh"
#include "stats/table.hh"

namespace polyflow {
namespace {

TEST(Liveness, UseDefAndFlow)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId thenB, join;
    {
        FunctionBuilder b(f);
        thenB = b.newBlock("then");
        join = b.newBlock("join");
        // entry: t0 = a0 + 1; branch on t1 (live-in).
        b.addi(reg::t0, reg::a0, 1);
        b.beq(reg::t1, reg::zero, join);
        b.setBlock(thenB);
        b.addi(reg::t2, reg::t0, 2);  // uses t0 (def upstream)
        b.setBlock(join);
        b.add(reg::a0, reg::t0, reg::t0);
        b.ret();
    }
    m.link();
    Liveness lv(f, {});

    // Entry uses a0 and t1 (read before any def), defines t0.
    EXPECT_TRUE(lv.use(0) & (1u << reg::a0));
    EXPECT_TRUE(lv.use(0) & (1u << reg::t1));
    EXPECT_TRUE(lv.def(0) & (1u << reg::t0));
    EXPECT_FALSE(lv.use(0) & (1u << reg::t0));
    // t0 is live into both successors.
    EXPECT_TRUE(lv.liveIn(thenB) & (1u << reg::t0));
    EXPECT_TRUE(lv.liveIn(join) & (1u << reg::t0));
    // t2 is dead at join.
    EXPECT_FALSE(lv.liveIn(join) & (1u << reg::t2));
}

TEST(Liveness, WriteSummariesPropagate)
{
    Module m("t");
    Function &leaf = m.createFunction("leaf");
    {
        FunctionBuilder b(leaf);
        b.li(reg::t5, 9);
        b.ret();
    }
    Function &mid = m.createFunction("mid");
    {
        FunctionBuilder b(mid);
        b.li(reg::t6, 1);
        b.call(leaf.id());
        b.ret();
    }
    m.link();
    auto ws = moduleWriteSummaries(m);
    EXPECT_TRUE(ws[leaf.id()] & (1u << reg::t5));
    // mid writes t6 itself and t5 through the leaf.
    EXPECT_TRUE(ws[mid.id()] & (1u << reg::t6));
    EXPECT_TRUE(ws[mid.id()] & (1u << reg::t5));
    EXPECT_FALSE(ws[leaf.id()] & (1u << reg::t6));
}

TEST(Liveness, RecursionConverges)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId recurse = b.newBlock();
        BlockId stop = b.newBlock();
        b.li(reg::t4, 1);
        b.beq(reg::a0, reg::zero, stop);
        b.setBlock(recurse);
        b.call(0);  // self-recursive
        b.setBlock(stop);
        b.ret();
    }
    m.link();
    auto ws = moduleWriteSummaries(m);
    EXPECT_TRUE(ws[0] & (1u << reg::t4));
}

Module
smallModule()
{
    Module m("t");
    Function &f = m.createFunction("f");
    FunctionBuilder b(f);
    BlockId loop = b.newBlock("loop");
    BlockId done = b.newBlock("done");
    b.li(reg::t0, 3);
    b.jump(loop);
    b.setBlock(loop);
    b.addi(reg::t0, reg::t0, -1);
    b.bne(reg::t0, reg::zero, loop);
    b.setBlock(done);
    b.halt();
    return m;
}

TEST(Dot, CfgContainsNodesAndEdges)
{
    Module m = smallModule();
    m.link();
    std::string dot = dotCfg(m.function(0));
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("loop"), std::string::npos);
    EXPECT_NE(dot.find("EXIT"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, TreesAndCdgRender)
{
    Module m = smallModule();
    m.link();
    EXPECT_NE(dotDomTree(m.function(0)).find("digraph"),
              std::string::npos);
    EXPECT_NE(dotPostDomTree(m.function(0)).find("digraph"),
              std::string::npos);
    std::string cdg = dotControlDeps(m.function(0));
    EXPECT_NE(cdg.find("dashed"), std::string::npos);
}

TEST(Printer, FunctionAndModule)
{
    Module m = smallModule();
    m.link();
    std::ostringstream os;
    printModule(os, m);
    std::string out = os.str();
    EXPECT_NE(out.find(".func f"), std::string::npos);
    EXPECT_NE(out.find("addi"), std::string::npos);
    EXPECT_NE(out.find("halt"), std::string::npos);
}

TEST(Printer, DisassemblyHasAddressesAndTargets)
{
    Module m = smallModule();
    LinkedProgram p = m.link();
    std::string out = disassemble(p);
    EXPECT_NE(out.find("1000"), std::string::npos);  // code base
    EXPECT_NE(out.find("<entry>"), std::string::npos);
    EXPECT_NE(out.find("; ->"), std::string::npos);  // branch target
}

TEST(Table, AlignmentAndCsv)
{
    Table t({"name", "value"});
    t.startRow();
    t.cell(std::string("alpha"));
    t.cell(3.14159, 2);
    t.startRow();
    t.cell(std::string("b"));
    t.cell(42LL);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_THROW(Table({"x"}).cell(1LL), std::runtime_error);
}

} // namespace
} // namespace polyflow
