/**
 * @file
 * Tests for the PRISC text assembler.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/functional_sim.hh"

namespace polyflow {
namespace {

/** Assemble, link and run. */
FunctionalResult
run(const std::string &src)
{
    auto mod = assemble(src);
    return runFunctional(mod->link());
}

TEST(Assembler, StraightLineArithmetic)
{
    auto r = run(R"(
.func main
.entry
    li   t0, 6
    addi t1, t0, 4      ; 10
    mul  t2, t0, t1     ; 60
    halt
.endfunc
)");
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.finalState->readReg(reg::t2), 60);
}

TEST(Assembler, LabelsAndLoops)
{
    auto r = run(R"(
.func main
.entry
    li   t0, 5
    li   t1, 0
loop:
    add  t1, t1, t0
    addi t0, t0, -1
    bne  t0, zero, loop
done:
    halt
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::t1), 15);
}

TEST(Assembler, DataAndLoadsStores)
{
    auto r = run(R"(
.data buf 64
.word buf 0 1234
.word buf 8 4321
.func main
.entry
    li   t0, buf
    ld   t1, 0(t0)
    ld   t2, 8(t0)
    add  t3, t1, t2
    sd   t3, 16(t0)
    ld   t4, 16(t0)
    halt
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::t4), 5555);
}

TEST(Assembler, CallsAcrossFunctions)
{
    auto r = run(R"(
.func double_it
    add a0, a0, a0
    ret
.endfunc
.func main
.entry
    li a0, 21
    call double_it
    halt
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::a0), 42);
}

TEST(Assembler, ForwardFunctionReference)
{
    auto r = run(R"(
.func main
.entry
    li a0, 1
    call helper
    halt
.endfunc
.func helper
    addi a0, a0, 99
    ret
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::a0), 100);
}

TEST(Assembler, IndirectJumpWithTargets)
{
    auto mod = assemble(R"(
.data jt 16
.func main
.entry
    li   t0, jt
    ld   t1, 8(t0)
    jr   t1, case0, case1
case0:
    li   a0, 1
    j    out
case1:
    li   a0, 2
out:
    halt
.endfunc
)");
    // The jr block declares both cases as indirect successors.
    const Function &f = mod->function(0);
    bool found = false;
    for (size_t b = 0; b < f.numBlocks(); ++b) {
        const BasicBlock &bb = f.block(BlockId(b));
        if (bb.hasTerminator() &&
            bb.terminator().isIndirectJump()) {
            EXPECT_EQ(bb.indirectSuccs().size(), 2u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    mod->link();  // links cleanly
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto mod = assemble(R"(
; leading comment
.func main            # trailing comment
.entry

    li t0, 7          ; mid comment
    halt
.endfunc
)");
    EXPECT_EQ(mod->numFunctions(), 1u);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble(".func main\n.entry\n    bogus t0, t1\n    halt\n"
                 ".endfunc\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 3);
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
    }
}

TEST(Assembler, RejectsUnknownLabel)
{
    EXPECT_THROW(
        assemble(".func main\n.entry\n    j nowhere\n    halt\n"
                 ".endfunc\n"),
        AsmError);
}

TEST(Assembler, RejectsUnknownFunction)
{
    EXPECT_THROW(
        assemble(".func main\n.entry\n    call missing\n    halt\n"
                 ".endfunc\n"),
        AsmError);
}

TEST(Assembler, RejectsDuplicateLabel)
{
    EXPECT_THROW(assemble(".func main\n.entry\nx:\n    nop\nx:\n"
                          "    halt\n.endfunc\n"),
                 AsmError);
}

TEST(Assembler, RejectsMissingEndfunc)
{
    EXPECT_THROW(assemble(".func main\n.entry\n    halt\n"), AsmError);
}

TEST(Assembler, RejectsStatementOutsideFunc)
{
    EXPECT_THROW(assemble("    li t0, 1\n"), AsmError);
}

TEST(Assembler, RejectsBadRegister)
{
    EXPECT_THROW(
        assemble(".func main\n.entry\n    li t99, 1\n    halt\n"
                 ".endfunc\n"),
        AsmError);
}

TEST(Assembler, RegisterAliases)
{
    auto r = run(R"(
.func main
.entry
    li   r8, 3       ; r8 == t0
    addi s0, t0, 2
    halt
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::s0), 5);
}

TEST(Assembler, NegativeAndHexImmediates)
{
    auto r = run(R"(
.func main
.entry
    li   t0, -5
    li   t1, 0xff
    and  t2, t0, t1
    halt
.endfunc
)");
    EXPECT_EQ(r.finalState->readReg(reg::t1), 0xff);
    EXPECT_EQ(r.finalState->readReg(reg::t2), 0xfb);
}

} // namespace
} // namespace polyflow
