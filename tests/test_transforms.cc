/**
 * @file
 * Tests for the CFG cleanup transforms, including
 * behaviour-preservation fuzzing: random programs must compute the
 * same final state before and after every transform.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/transforms.hh"
#include "isa/functional_sim.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

TEST(Transforms, RemovesUnreachableBlocks)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId dead = b.newBlock("dead");
        BlockId live = b.newBlock("live");
        b.jump(live);
        b.setBlock(dead);
        b.addi(reg::t0, reg::t0, 99);
        b.setBlock(live);
        b.halt();
    }
    EXPECT_EQ(removeUnreachableBlocks(f), 1);
    EXPECT_EQ(f.numBlocks(), 2u);
    m.link();  // still links and validates
}

TEST(Transforms, PinnedBlocksSurvive)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId dead;
    {
        FunctionBuilder b(f);
        dead = b.newBlock("dead");
        BlockId live = b.newBlock("live");
        b.jump(live);
        b.setBlock(dead);
        b.addi(reg::t0, reg::t0, 99);
        b.setBlock(live);
        b.halt();
    }
    EXPECT_EQ(removeUnreachableBlocks(f, {dead}), 0);
    EXPECT_EQ(f.numBlocks(), 3u);
}

TEST(Transforms, MergesJumpChains)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId b1 = b.newBlock();
        BlockId b2 = b.newBlock();
        b.addi(reg::t0, reg::t0, 1);
        b.jump(b1);
        b.setBlock(b1);
        b.addi(reg::t0, reg::t0, 2);
        b.jump(b2);
        b.setBlock(b2);
        b.addi(reg::t0, reg::t0, 3);
        b.halt();
    }
    EXPECT_EQ(mergeStraightLineBlocks(f), 2);
    EXPECT_EQ(f.numBlocks(), 1u);
    // The merged block runs the same computation.
    LinkedProgram p = m.link();
    auto r = runFunctional(p);
    EXPECT_EQ(r.finalState->readReg(reg::t0), 6);
}

TEST(Transforms, DoesNotMergeSharedTargets)
{
    // A diamond join has two predecessors: never merged.
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId thenB = b.newBlock();
        BlockId join = b.newBlock();
        b.beq(reg::a0, reg::zero, join);
        b.setBlock(thenB);
        b.addi(reg::t0, reg::t0, 1);
        b.setBlock(join);
        b.halt();
    }
    EXPECT_EQ(mergeStraightLineBlocks(f), 0);
    EXPECT_EQ(f.numBlocks(), 3u);
}

TEST(Transforms, RemoveNopsKeepsBlocksNonEmpty)
{
    Module m("t");
    Function &f = m.createFunction("f");
    {
        FunctionBuilder b(f);
        BlockId allNops = b.newBlock();
        BlockId out = b.newBlock();
        b.nop();
        b.addi(reg::t0, reg::t0, 1);
        b.nop();
        b.jump(allNops);
        b.setBlock(allNops);
        b.nop();
        b.nop();
        b.setBlock(out);
        b.halt();
    }
    int removed = removeNops(f);
    EXPECT_EQ(removed, 3);  // two in entry... one kept in allNops
    for (size_t i = 0; i < f.numBlocks(); ++i)
        EXPECT_FALSE(f.block(BlockId(i)).empty());
    m.link();
}

TEST(Transforms, CleanupModuleSkipsJumpTableFunctions)
{
    Module m("t");
    Function &f = m.createFunction("f");
    BlockId c0, c1;
    {
        FunctionBuilder b(f);
        c0 = b.newBlock("c0");
        c1 = b.newBlock("c1");
        BlockId out = b.newBlock("out");
        b.jr(reg::a0, {c0, c1});
        b.setBlock(c0);
        b.addi(reg::t0, reg::t0, 1);
        b.jump(out);
        b.setBlock(c1);
        b.addi(reg::t0, reg::t0, 2);
        b.setBlock(out);
        b.halt();
    }
    m.allocJumpTable("jt", {{f.id(), c0}, {f.id(), c1}});
    size_t blocksBefore = f.numBlocks();
    cleanupModule(m);
    EXPECT_EQ(f.numBlocks(), blocksBefore);  // structure untouched
    m.link();
}

/** Structured random program (same generator family as the fuzz
 *  suite, kept local and simple: straight line + diamonds + loops,
 *  all register/memory state checkable). */
std::unique_ptr<Module>
randomProgram(std::uint64_t seed)
{
    WlRng rng(seed);
    auto mod = std::make_unique<Module>("t");
    Addr data = allocRandomWords(*mod, "data", 32, rng);
    Function &f = mod->createFunction("main");
    FunctionBuilder b(f);
    b.li(reg::gp, std::int64_t(data));
    int statements = 4 + int(rng.range(8));
    for (int s = 0; s < statements; ++s) {
        switch (rng.range(5)) {
          case 0: {  // dead block after a jump
            BlockId next = b.newBlock();
            BlockId dead = b.newBlock();
            BlockId cont = b.newBlock();
            b.jump(next);
            b.setBlock(next);
            b.jump(cont);
            b.setBlock(dead);
            b.addi(reg::t5, reg::t5, 1000);
            b.setBlock(cont);
            break;
          }
          case 1: {  // nops
            for (int i = 0; i < int(rng.range(4)); ++i)
                b.nop();
            break;
          }
          case 2: {  // diamond
            BlockId thenB = b.newBlock();
            BlockId join = b.newBlock();
            b.ld(reg::t6, reg::gp, std::int64_t(rng.range(16)) * 8);
            b.andi(reg::t6, reg::t6, 1);
            b.beq(reg::t6, reg::zero, join);
            b.setBlock(thenB);
            b.addi(reg::t0, reg::t0, 3);
            b.setBlock(join);
            break;
          }
          case 3: {  // short counted loop
            RegId ctr = reg::s2;
            b.li(ctr, 2 + std::int64_t(rng.range(3)));
            BlockId loop = b.newBlock();
            b.jump(loop);
            b.setBlock(loop);
            b.add(reg::t1, reg::t1, ctr);
            b.addi(ctr, ctr, -1);
            BlockId done = b.newBlock();
            b.bne(ctr, reg::zero, loop);
            b.setBlock(done);
            break;
          }
          default: {  // jump chain (merge fodder)
            BlockId x = b.newBlock();
            BlockId y = b.newBlock();
            b.addi(reg::t2, reg::t2, 7);
            b.jump(x);
            b.setBlock(x);
            b.xor_(reg::t3, reg::t2, reg::t1);
            b.jump(y);
            b.setBlock(y);
            break;
          }
        }
    }
    b.halt();
    return mod;
}

class TransformFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(TransformFuzz, CleanupPreservesBehaviour)
{
    auto before = randomProgram(GetParam() * 31 + 5);
    auto after = randomProgram(GetParam() * 31 + 5);
    int changes = cleanupModule(*after);

    LinkedProgram pb = before->link();
    LinkedProgram pa = after->link();
    auto rb = runFunctional(pb);
    auto ra = runFunctional(pa);
    ASSERT_TRUE(rb.halted);
    ASSERT_TRUE(ra.halted);
    // NOP removal may shrink the dynamic count; architectural state
    // must be identical.
    EXPECT_LE(ra.instrCount, rb.instrCount);
    EXPECT_EQ(ra.finalState->memChecksum(),
              rb.finalState->memChecksum());
    for (int r = 4; r < numArchRegs; ++r) {
        EXPECT_EQ(ra.finalState->readReg(RegId(r)),
                  rb.finalState->readReg(RegId(r)))
            << "r" << r;
    }
    // The generator always plants removable structure.
    EXPECT_GE(changes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformFuzz,
                         ::testing::Range(0, 20));

} // namespace
} // namespace polyflow
