/**
 * @file
 * Fuzz tests: randomly generated structured programs (guaranteed to
 * terminate) run through the whole stack — functional execution,
 * spawn analysis, the superscalar baseline and PolyFlow under
 * several policies — checking global invariants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ir/builder.hh"
#include "polyflow.hh"
#include "workloads/wl_common.hh"

namespace polyflow {
namespace {

/**
 * Random structured program generator: nested counted loops,
 * if-thens on data bits, loads/stores into a private array and
 * calls to random leaf functions. Termination is guaranteed by
 * construction (all loops count down registers initialized to
 * constants).
 */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : _rng(seed) {}

    std::unique_ptr<Module>
    generate()
    {
        auto mod = std::make_unique<Module>("fuzz");
        _data = allocRandomWords(*mod, "data", 64, _rng);

        // A few leaf functions.
        int numLeaves = 1 + int(_rng.range(3));
        std::vector<FuncId> leaves;
        for (int i = 0; i < numLeaves; ++i) {
            Function &fn =
                mod->createFunction("leaf" + std::to_string(i));
            emitLeaf(fn);
            leaves.push_back(fn.id());
        }

        Function &main = mod->createFunction("main");
        {
            FunctionBuilder b(main);
            b.li(reg::gp, std::int64_t(_data));
            emitBody(b, leaves, 0, 3 + int(_rng.range(5)));
            b.halt();
        }
        mod->entryFunction(main.id());
        return mod;
    }

  private:
    void
    emitLeaf(Function &fn)
    {
        FunctionBuilder b(fn);
        int ops = 2 + int(_rng.range(8));
        for (int i = 0; i < ops; ++i)
            randomAlu(b);
        if (_rng.chance(50)) {
            b.ld(reg::t3, reg::gp, std::int64_t(_rng.range(8)) * 8);
            b.add(reg::a0, reg::a0, reg::t3);
        }
        b.ret();
    }

    void
    randomAlu(FunctionBuilder &b)
    {
        RegId rd = RegId(reg::t0 + _rng.range(6));
        RegId rs = RegId(reg::t0 + _rng.range(6));
        switch (_rng.range(5)) {
          case 0: b.add(rd, rd, rs); break;
          case 1: b.xor_(rd, rd, rs); break;
          case 2: b.slli(rd, rs, 1 + _rng.range(5)); break;
          case 3: b.addi(rd, rs, std::int64_t(_rng.range(100))); break;
          default: b.mul(rd, rd, rs); break;
        }
    }

    /** Emit a statement list; recursion depth bounds loop nesting. */
    void
    emitBody(FunctionBuilder &b, const std::vector<FuncId> &leaves,
             int depth, int statements)
    {
        for (int s = 0; s < statements; ++s) {
            switch (_rng.range(6)) {
              case 0:
              case 1:
                randomAlu(b);
                break;
              case 2: {  // if-then on a data bit
                BlockId thenB = b.newBlock();
                BlockId join = b.newBlock();
                b.ld(reg::t6, reg::gp,
                     std::int64_t(_rng.range(16)) * 8);
                b.andi(reg::t6, reg::t6, 1);
                b.beq(reg::t6, reg::zero, join);
                b.setBlock(thenB);
                randomAlu(b);
                randomAlu(b);
                b.setBlock(join);
                break;
              }
              case 3: {  // counted loop
                if (depth >= 2) {
                    randomAlu(b);
                    break;
                }
                // Blocks must be created in layout order (the
                // fall-through successor is the next block id), so
                // the exit block is created only after the body.
                RegId ctr = RegId(reg::s0 + depth);
                b.li(ctr, 2 + std::int64_t(_rng.range(4)));
                BlockId loop = b.newBlock();
                b.jump(loop);
                b.setBlock(loop);
                emitBody(b, leaves, depth + 1,
                         1 + int(_rng.range(3)));
                b.addi(ctr, ctr, -1);
                BlockId done = b.newBlock();
                b.bne(ctr, reg::zero, loop);
                b.setBlock(done);
                break;
              }
              case 4:  // call a leaf
                b.call(leaves[_rng.range(leaves.size())]);
                break;
              default: {  // store + load
                std::int64_t off =
                    std::int64_t(16 + _rng.range(16)) * 8;
                b.sd(reg::t0, reg::gp, off);
                b.ld(reg::t1, reg::gp, off);
                break;
              }
            }
        }
    }

    WlRng _rng;
    Addr _data = 0;
};

/** The cycle-accounting identity: every (cycle x issue-slot) went
 *  to exactly one bucket. Checked on fuzzed CFGs, not just the
 *  curated workloads (tests/test_accounting.cc). */
void
expectSlotIdentity(const TimingResult &r, std::uint64_t width)
{
    EXPECT_EQ(r.issueWidth, width) << r.policyName;
    EXPECT_EQ(r.slotTotal(), r.cycles * r.issueWidth)
        << r.policyName;
    std::uint64_t committed =
        r.slots[static_cast<int>(SlotBucket::Committed)];
    EXPECT_LT(committed, r.instrs) << r.policyName;
    EXPECT_GE(committed + r.issueWidth, r.instrs) << r.policyName;
}

class SimFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(SimFuzz, WholeStackInvariants)
{
    ProgramGen gen(GetParam() * 1000003 + 7);
    auto mod = gen.generate();
    LinkedProgram prog = mod->link();

    // Functional execution terminates and is deterministic.
    FunctionalOptions opt;
    opt.recordTrace = true;
    opt.maxInstrs = 2'000'000;
    auto r1 = runFunctional(prog, opt);
    ASSERT_TRUE(r1.halted);
    auto r2 = runFunctional(prog, opt);
    EXPECT_EQ(r1.instrCount, r2.instrCount);
    EXPECT_EQ(r1.finalState->memChecksum(),
              r2.finalState->memChecksum());

    // Spawn analysis runs and classifies without throwing.
    SpawnAnalysis sa(*mod, prog);

    // Superscalar: completes, IPC within machine width.
    TimingResult ss = runTiming(MachineConfig::superscalar(), r1.trace,
                            nullptr, "ss");
    EXPECT_EQ(ss.instrs, r1.trace.size());
    EXPECT_GT(ss.cycles, 0u);
    EXPECT_LE(ss.ipc(), 8.0);
    expectSlotIdentity(ss, 8);

    // PolyFlow under three policies: completes with the same
    // instruction count; spawn bookkeeping consistent.
    for (const SpawnPolicy &pol :
         {SpawnPolicy::postdoms(), SpawnPolicy::loop(),
          SpawnPolicy::loopFTPlusProcFT()}) {
        StaticSpawnSource src{HintTable(sa, pol)};
        TimingResult pf =
            runTiming(MachineConfig{}, r1.trace, &src, pol.name);
        EXPECT_EQ(pf.instrs, r1.trace.size()) << pol.name;
        EXPECT_LE(pf.ipc(), 16.0) << pol.name;
        EXPECT_GE(pf.tasksRetired, 1u) << pol.name;
        EXPECT_EQ(pf.tasksRetired, pf.spawns + 1) << pol.name;
        std::uint64_t byKind = 0;
        for (int k = 0; k < numSpawnKinds; ++k)
            byKind += pf.spawnsByKind[k];
        EXPECT_EQ(byKind, pf.spawns) << pol.name;
        expectSlotIdentity(pf, 8);
    }

    // The dynamic reconvergence source also completes.
    ReconSpawnSource rec;
    TimingResult rr = runTiming(MachineConfig{}, r1.trace, &rec, "rec");
    EXPECT_EQ(rr.instrs, r1.trace.size());
    expectSlotIdentity(rr, 8);
}

TEST_P(SimFuzz, SqueezeResourcesStillCompletes)
{
    ProgramGen gen(GetParam() * 7777 + 23);
    auto mod = gen.generate();
    LinkedProgram prog = mod->link();
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(prog, opt);
    ASSERT_TRUE(r.halted);
    SpawnAnalysis sa(*mod, prog);

    // Tiny resources stress the deadlock-freedom argument.
    MachineConfig tight;
    tight.robEntries = 48;
    tight.schedEntries = 8;
    tight.divertEntries = 6;
    tight.numTasks = 4;
    tight.robReservePerOlderTask = 8;
    tight.fetchQueueEntries = 4;
    StaticSpawnSource src{HintTable(sa, SpawnPolicy::postdoms())};
    TimingResult pf = runTiming(tight, r.trace, &src, "tight");
    EXPECT_EQ(pf.instrs, r.trace.size());
    // Slot accounting must stay exact even when every resource
    // (ROB, scheduler, divert queue, contexts) is squeezed.
    expectSlotIdentity(pf, std::uint64_t(tight.pipelineWidth));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Range(0, 15));

} // namespace
} // namespace polyflow
