/**
 * @file
 * Tests for the synthetic workload suite: every workload must link,
 * validate, run to completion deterministically, and expose the
 * spawn-point mix its SPEC namesake is meant to model.
 */

#include <gtest/gtest.h>

#include "isa/functional_sim.hh"
#include "spawn/spawn_analysis.hh"
#include "workloads/workloads.hh"

namespace polyflow {
namespace {

constexpr double testScale = 0.05;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadTest, BuildsAndLinks)
{
    Workload w = buildWorkload(GetParam(), testScale);
    EXPECT_EQ(w.name, GetParam());
    EXPECT_GT(w.prog.size(), 10u);
    EXPECT_NE(w.prog.entryAddr(), invalidAddr);
}

TEST_P(WorkloadTest, RunsToCompletion)
{
    Workload w = buildWorkload(GetParam(), testScale);
    FunctionalOptions opt;
    opt.maxInstrs = 20'000'000;
    auto r = runFunctional(w.prog, opt);
    EXPECT_TRUE(r.halted) << "did not reach HALT";
    EXPECT_GT(r.instrCount, 1000u);
}

TEST_P(WorkloadTest, DeterministicExecution)
{
    Workload w1 = buildWorkload(GetParam(), testScale);
    Workload w2 = buildWorkload(GetParam(), testScale);
    auto r1 = runFunctional(w1.prog);
    auto r2 = runFunctional(w2.prog);
    EXPECT_EQ(r1.instrCount, r2.instrCount);
    EXPECT_EQ(r1.finalState->memChecksum(),
              r2.finalState->memChecksum());
}

TEST_P(WorkloadTest, ScaleControlsDynamicLength)
{
    Workload small = buildWorkload(GetParam(), 0.05);
    Workload large = buildWorkload(GetParam(), 1.0);
    auto rs = runFunctional(small.prog);
    auto rl = runFunctional(large.prog);
    EXPECT_LT(rs.instrCount, rl.instrCount);
}

TEST_P(WorkloadTest, SpawnAnalysisFindsPoints)
{
    Workload w = buildWorkload(GetParam(), testScale);
    SpawnAnalysis sa(*w.module, w.prog);
    EXPECT_GT(sa.points().size(), 0u);
    // Every workload has procedure calls and at least one loop.
    EXPECT_GT(sa.census().byKind[int(SpawnKind::ProcFT)], 0);
    EXPECT_GT(sa.census().byKind[int(SpawnKind::LoopIter)], 0);
    EXPECT_GT(sa.census().postdomTotal(), 0);
}

TEST_P(WorkloadTest, TraceRecordingWorks)
{
    Workload w = buildWorkload(GetParam(), 0.02);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto r = runFunctional(w.prog, opt);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.trace.size(), r.instrCount);
    // Every recorded instruction must reference a valid image slot.
    for (TraceIdx i = 0; i < r.trace.size(); i += 97)
        EXPECT_LT(r.trace.instrs[i].img, w.prog.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        return n;
    });

TEST(WorkloadRegistry, UnknownNameThrows)
{
    EXPECT_THROW(buildWorkload("nonesuch"), std::runtime_error);
}

TEST(WorkloadRegistry, HasTwelveBenchmarks)
{
    EXPECT_EQ(allWorkloadNames().size(), 12u);
}

TEST(WorkloadCharacter, PerlbmkHasIndirectJumps)
{
    Workload w = buildWorkload("perlbmk", testScale);
    SpawnAnalysis sa(*w.module, w.prog);
    EXPECT_GT(sa.census().byKind[int(SpawnKind::Other)], 0);
}

TEST(WorkloadCharacter, TwolfHasNestedLoopSpawns)
{
    Workload w = buildWorkload("twolf", testScale);
    SpawnAnalysis sa(*w.module, w.prog);
    // new_dbox_a alone carries two loops (inner and outer).
    EXPECT_GE(sa.census().byKind[int(SpawnKind::LoopIter)], 2);
    EXPECT_GE(sa.census().byKind[int(SpawnKind::LoopFT)], 2);
    EXPECT_GE(sa.census().byKind[int(SpawnKind::Hammock)], 3);
}

TEST(WorkloadCharacter, VortexIsCallHeavy)
{
    Workload w = buildWorkload("vortex", testScale);
    SpawnAnalysis sa(*w.module, w.prog);
    EXPECT_GE(sa.census().byKind[int(SpawnKind::ProcFT)], 6);
}

} // namespace
} // namespace polyflow
