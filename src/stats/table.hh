/**
 * @file
 * Small helpers for printing aligned result tables and CSV files from
 * the benchmark harnesses.
 */

#ifndef POLYFLOW_STATS_TABLE_HH
#define POLYFLOW_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace polyflow {

/** A simple column-aligned text table with an optional CSV dump. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Begin a new row; follow with cell() calls. */
    void startRow();
    void cell(const std::string &s);
    void cell(double v, int precision = 2);
    void cell(long long v);
    void cell(int v) { cell(static_cast<long long>(v)); }
    void cell(unsigned long long v)
    {
        cell(static_cast<long long>(v));
    }

    size_t numRows() const { return _rows.size(); }
    const std::vector<std::string> &row(size_t i) const
    {
        return _rows[i];
    }

    /** Print with aligned columns. */
    void print(std::ostream &os) const;
    /** Write comma-separated values (header + rows). */
    void writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Arithmetic mean of @p v (0 for empty). */
double mean(const std::vector<double> &v);

/** Geometric mean of 1+x/100 style speedups, returned in percent. */
double meanSpeedupPercent(const std::vector<double> &percents);

} // namespace polyflow

#endif // POLYFLOW_STATS_TABLE_HH
