#include "stats/table.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>

namespace polyflow {

Table::Table(std::vector<std::string> header)
    : _header(std::move(header))
{}

void
Table::startRow()
{
    _rows.emplace_back();
}

void
Table::cell(const std::string &s)
{
    if (_rows.empty())
        throw std::runtime_error("Table::cell before startRow");
    _rows.back().push_back(s);
}

void
Table::cell(double v, int precision)
{
    char buf[64];
    snprintf(buf, sizeof(buf), "%.*f", precision, v);
    cell(std::string(buf));
}

void
Table::cell(long long v)
{
    cell(std::to_string(v));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(_header.size());
    for (size_t c = 0; c < _header.size(); ++c)
        width[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < width.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << (c == 0 ? "" : "  ") << std::setw((int)width[c])
               << (c == 0 ? std::left : std::right) << v;
            os << std::right;
        }
        os << "\n";
    };
    line(_header);
    for (const auto &row : _rows)
        line(row);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            f << (c ? "," : "") << cells[c];
        f << "\n";
    };
    line(_header);
    for (const auto &row : _rows)
        line(row);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / double(v.size());
}

double
meanSpeedupPercent(const std::vector<double> &percents)
{
    return mean(percents);
}

} // namespace polyflow
