#include "stats/export.hh"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "spawn/spawn_point.hh"

namespace polyflow::stats {

namespace {

/** Exact round-trip formatting for the scale knob. */
std::string
fmtScale(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtIpc(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/** Minimal JSON string escaping (labels are ASCII identifiers, but
 *  stay safe). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

/** Appends `"key": value` lines with deterministic layout. */
class ObjWriter
{
  public:
    ObjWriter(std::string &out, int indent)
        : _out(out), _indent(indent)
    {
        pad(_indent);
        _out += "{\n";
    }

    void
    field(const std::string &key, const std::string &rawValue)
    {
        if (_fields++)
            _out += ",\n";
        pad(_indent + 2);
        _out += jsonStr(key);
        _out += ": ";
        _out += rawValue;
    }

    void
    field(const std::string &key, std::uint64_t v)
    {
        field(key, std::to_string(v));
    }

    void
    close()
    {
        _out += "\n";
        pad(_indent);
        _out += "}";
    }

    void
    pad(int n)
    {
        _out.append(static_cast<size_t>(n), ' ');
    }

  private:
    std::string &_out;
    int _indent;
    int _fields = 0;
};

/** `{"name": count, ...}` on one line, in enum order. */
template <typename NameFn, typename Array>
std::string
countsObject(const Array &counts, int n, NameFn name)
{
    std::string out = "{";
    for (int k = 0; k < n; ++k) {
        if (k)
            out += ", ";
        out += jsonStr(name(k));
        out += ": ";
        out += std::to_string(counts[static_cast<size_t>(k)]);
    }
    out += "}";
    return out;
}

} // namespace

std::string
runToJson(const RunRecord &r, int indent)
{
    const TimingResult &s = r.sim;
    std::string out;
    ObjWriter w(out, indent);
    w.field("workload", jsonStr(r.workload));
    w.field("scale", fmtScale(r.scale));
    w.field("label", jsonStr(r.label));
    w.field("policyName", jsonStr(s.policyName));
    w.field("cycles", s.cycles);
    w.field("instrs", s.instrs);
    w.field("issueWidth", s.issueWidth);
    w.field("ipc", fmtIpc(s.ipc()));
    w.field("spawns", s.spawns);
    w.field("spawnsByKind",
            countsObject(s.spawnsByKind, numSpawnKinds, [](int k) {
                return spawnKindName(static_cast<SpawnKind>(k));
            }));
    w.field("spawnsSkippedNoContext", s.spawnsSkippedNoContext);
    w.field("spawnsSkippedDistance", s.spawnsSkippedDistance);
    w.field("spawnsSkippedFeedback", s.spawnsSkippedFeedback);
    w.field("triggersDisabled", s.triggersDisabled);
    w.field("tasksRetired", s.tasksRetired);
    w.field("tasksSquashed", s.tasksSquashed);
    w.field("violations", s.violations);
    w.field("instrsDiverted", s.instrsDiverted);
    w.field("divertQueueFullStalls", s.divertQueueFullStalls);
    w.field("condBranches", s.condBranches);
    w.field("branchMispredicts", s.branchMispredicts);
    w.field("indirectMispredicts", s.indirectMispredicts);
    w.field("returnMispredicts", s.returnMispredicts);
    w.field("icacheMisses", s.icacheMisses);
    w.field("dcacheMisses", s.dcacheMisses);
    w.field("slots",
            countsObject(s.slots, numSlotBuckets, [](int k) {
                return slotBucketName(static_cast<SlotBucket>(k));
            }));
    w.field("slotTotal", s.slotTotal());
    w.close();
    return out;
}

std::string
toJson(const std::vector<RunRecord> &records)
{
    std::string out = "{\n  \"runs\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        out += runToJson(records[i], 4);
        out += i + 1 < records.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
toCsv(const std::vector<RunRecord> &records)
{
    std::string out = "workload,scale,label,cycles,instrs,"
                      "issueWidth,ipc,spawns";
    for (int k = 0; k < numSpawnKinds; ++k) {
        out += ",spawns:";
        out += spawnKindName(static_cast<SpawnKind>(k));
    }
    out += ",spawnsSkippedNoContext,spawnsSkippedDistance,"
           "spawnsSkippedFeedback,triggersDisabled,tasksRetired,"
           "tasksSquashed,violations,instrsDiverted,"
           "divertQueueFullStalls,condBranches,branchMispredicts,"
           "indirectMispredicts,returnMispredicts,icacheMisses,"
           "dcacheMisses";
    for (int k = 0; k < numSlotBuckets; ++k) {
        out += ",slot:";
        out += slotBucketName(static_cast<SlotBucket>(k));
    }
    out += "\n";

    for (const RunRecord &r : records) {
        const TimingResult &s = r.sim;
        out += r.workload;
        out += ',';
        out += fmtScale(r.scale);
        out += ',';
        out += r.label;
        auto add = [&](std::uint64_t v) {
            out += ',';
            out += std::to_string(v);
        };
        add(s.cycles);
        add(s.instrs);
        add(s.issueWidth);
        out += ',';
        out += fmtIpc(s.ipc());
        add(s.spawns);
        for (int k = 0; k < numSpawnKinds; ++k)
            add(s.spawnsByKind[static_cast<size_t>(k)]);
        add(s.spawnsSkippedNoContext);
        add(s.spawnsSkippedDistance);
        add(s.spawnsSkippedFeedback);
        add(s.triggersDisabled);
        add(s.tasksRetired);
        add(s.tasksSquashed);
        add(s.violations);
        add(s.instrsDiverted);
        add(s.divertQueueFullStalls);
        add(s.condBranches);
        add(s.branchMispredicts);
        add(s.indirectMispredicts);
        add(s.returnMispredicts);
        add(s.icacheMisses);
        add(s.dcacheMisses);
        for (int k = 0; k < numSlotBuckets; ++k)
            add(s.slots[static_cast<size_t>(k)]);
        out += '\n';
    }
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f.write(content.data(),
            static_cast<std::streamsize>(content.size()));
    if (!f)
        throw std::runtime_error("short write to " + path);
}

} // namespace polyflow::stats
