/**
 * @file
 * Structured export of timing-simulation statistics.
 *
 * A sweep (or a single run) is serialized as a list of RunRecords —
 * (workload, scale, label, TimingResult) — to JSON or CSV. The
 * serialization is fully deterministic: fixed field order, fixed
 * number formatting, LF line endings, no timestamps, no pointers.
 * Because the sweep engine returns results in declaration order at
 * any job count, the exported bytes are identical between `--jobs 1`
 * and `--jobs N` runs; tests/test_driver.cc enforces this per cell.
 *
 * The cycle-accounting buckets (TimingResult::slots) are exported under
 * their stable slotBucketName() keys; see docs/OBSERVABILITY.md for
 * the taxonomy and the accounting identity.
 */

#ifndef POLYFLOW_STATS_EXPORT_HH
#define POLYFLOW_STATS_EXPORT_HH

#include <string>
#include <vector>

#include "sim/result.hh"

namespace polyflow::stats {

/** One exported run: where it ran plus everything it reported. */
struct RunRecord
{
    std::string workload;
    double scale = 1.0;
    /** Run label (usually the policy name). */
    std::string label;
    TimingResult sim;
};

/**
 * One record as a JSON object, indented by @p indent spaces per
 * level with the object itself starting at @p indent. This is the
 * unit the byte-identity tests compare cell by cell.
 */
std::string runToJson(const RunRecord &r, int indent = 0);

/** A full export: `{"runs": [...]}` with one object per record. */
std::string toJson(const std::vector<RunRecord> &records);

/** CSV with a fixed header; one row per record. */
std::string toCsv(const std::vector<RunRecord> &records);

/** Write @p content to @p path (throws on failure). */
void writeFile(const std::string &path, const std::string &content);

} // namespace polyflow::stats

#endif // POLYFLOW_STATS_EXPORT_HH
