/**
 * @file
 * Umbrella header: the whole public PolyFlow surface in one include.
 *
 *     #include "polyflow.hh"
 *
 *     int main() {
 *         polyflow::Session s = polyflow::Session::open("twolf");
 *         polyflow::TimingResult base = s.simulate(
 *             polyflow::MachineConfig{}, polyflow::SpawnPolicy::none());
 *         polyflow::TimingResult pf = s.simulate(
 *             polyflow::MachineConfig{},
 *             polyflow::SpawnPolicy::postdoms());
 *     }
 *
 * Session (driver/session.hh) is the front door; the rest of the
 * includes expose the types its accessors return and the knobs
 * simulate() takes. docs/API.md documents which of these names are
 * stable and which are internal.
 */

#ifndef POLYFLOW_POLYFLOW_HH
#define POLYFLOW_POLYFLOW_HH

#include "driver/session.hh"     // Session, RunOptions
#include "driver/sweep.hh"       // SweepRunner, SweepCache, SourceSpec
#include "ir/module.hh"          // Module, LinkedProgram
#include "isa/functional_sim.hh" // runFunctional, FunctionalResult
#include "isa/trace.hh"          // Trace, DynInstr
#include "sim/batch.hh"          // MachineBatch (batched engine)
#include "sim/config.hh"         // MachineConfig
#include "sim/core.hh"           // runTiming, TimingSim
#include "sim/result.hh"         // TimingResult, TaskEvent
#include "spawn/policy.hh"       // SpawnPolicy, HintTable
#include "spawn/spawn_analysis.hh" // SpawnAnalysis
#include "store/artifact_store.hh" // ArtifactStore (persistent cache)
#include "workloads/workloads.hh"  // buildWorkload, allWorkloadNames

#endif // POLYFLOW_POLYFLOW_HH
