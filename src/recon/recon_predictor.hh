/**
 * @file
 * Dynamic reconvergence predictor, in the spirit of Collins, Tullsen
 * and Wang (MICRO-37): a run-time structure trained on the retirement
 * stream that predicts, for each static branch, the PC where control
 * flow reconverges — an approximation of the branch block's immediate
 * postdominator.
 *
 * Implementation note (documented in DESIGN.md): instead of the
 * original four fixed layout categories, this predictor trains by
 * intersecting the block-start PCs retired after taken and after
 * not-taken instances of each branch — the first PC common to both
 * suffixes is the reconvergence candidate. This is at least as
 * aggressive as the original's best category (reconvergence below the
 * branch PC) while retaining its hardware-like limits: a bounded
 * table of in-flight observations, a bounded suffix window, voting
 * among a small number of candidates, and genuine warm-up effects
 * (no prediction until both outcomes have been observed).
 */

#ifndef POLYFLOW_RECON_RECON_PREDICTOR_HH
#define POLYFLOW_RECON_RECON_PREDICTOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/types.hh"

namespace polyflow {

/** Tuning knobs for the reconvergence predictor. */
struct ReconConfig
{
    /** Max branch instances observed simultaneously. */
    int maxActive = 8;
    /** Block-start PCs collected per instance. */
    int suffixLength = 24;
    /** Retired instructions an instance may span before abort. */
    int windowInstrs = 512;
    /** Candidate slots per static branch. */
    int numCandidates = 4;
    /** Votes needed before a candidate is predicted. */
    int confidenceThreshold = 2;
};

/**
 * The predictor. Call observeCommit() for every committed
 * instruction in order; call predict() at any time (typically at
 * fetch of a branch).
 */
class ReconPredictor
{
  public:
    explicit ReconPredictor(const ReconConfig &config = {});

    /**
     * Feed one committed instruction.
     *
     * @param pc the instruction's address
     * @param isCondBranch true for conditional branches
     * @param taken branch outcome (ignored otherwise)
     * @param blockStart true if the instruction starts a basic block
     */
    void observeCommit(Addr pc, bool isCondBranch, bool taken,
                       bool blockStart);

    /**
     * Predicted reconvergence PC for the branch at @p pc, or
     * invalidAddr when the predictor has no confident candidate yet.
     */
    Addr predict(Addr branchPc) const;

    /** @name Introspection / statistics @{ */
    size_t numTrackedBranches() const { return _entries.size(); }
    std::uint64_t instancesCompleted() const
    {
        return _instancesCompleted;
    }
    std::uint64_t instancesAborted() const { return _instancesAborted; }
    /** All branches with a confident prediction. */
    std::vector<std::pair<Addr, Addr>> confidentPredictions() const;
    /** @} */

  private:
    struct Candidate
    {
        Addr pc = invalidAddr;
        int votes = 0;
    };

    struct Entry
    {
        std::vector<Candidate> cands;
        /** Most recent post-branch block-start suffix per outcome. */
        std::vector<Addr> suffix[2];
        bool haveSuffix[2] = {false, false};
    };

    struct ActiveInstance
    {
        Addr branchPc;
        bool taken;
        std::vector<Addr> collected;
        int instrsLeft;
    };

    void finishInstance(const ActiveInstance &inst);
    void vote(Entry &e, Addr candidate);

    ReconConfig _cfg;
    std::unordered_map<Addr, Entry> _entries;
    std::vector<ActiveInstance> _active;
    std::uint64_t _instancesCompleted = 0;
    std::uint64_t _instancesAborted = 0;
};

} // namespace polyflow

#endif // POLYFLOW_RECON_RECON_PREDICTOR_HH
