#include "recon/recon_predictor.hh"

#include <algorithm>

namespace polyflow {

ReconPredictor::ReconPredictor(const ReconConfig &config) : _cfg(config)
{
    _active.reserve(_cfg.maxActive);
}

void
ReconPredictor::observeCommit(Addr pc, bool isCondBranch, bool taken,
                              bool blockStart)
{
    // 1. Feed active instances. An instance closes when its own
    // branch commits again (the observation then covers exactly one
    // dynamic occurrence, so loop iterations don't smear together),
    // when the suffix is full, or when the window runs out.
    for (size_t i = 0; i < _active.size();) {
        ActiveInstance &inst = _active[i];
        bool recurrence = isCondBranch && pc == inst.branchPc;
        if (!recurrence && blockStart &&
            static_cast<int>(inst.collected.size()) <
                _cfg.suffixLength) {
            inst.collected.push_back(pc);
        }
        --inst.instrsLeft;
        bool full = static_cast<int>(inst.collected.size()) >=
            _cfg.suffixLength;
        if (recurrence || full || inst.instrsLeft <= 0) {
            if (!inst.collected.empty()) {
                finishInstance(inst);
                ++_instancesCompleted;
            } else {
                ++_instancesAborted;
            }
            _active.erase(_active.begin() + i);
        } else {
            ++i;
        }
    }

    // 2. Open a new instance for this branch.
    if (isCondBranch) {
        if (static_cast<int>(_active.size()) >= _cfg.maxActive) {
            // Hardware table full: retire the oldest observation
            // with whatever suffix it has collected so far (dense
            // branch streams would otherwise never finish one).
            if (!_active.front().collected.empty()) {
                finishInstance(_active.front());
                ++_instancesCompleted;
            } else {
                ++_instancesAborted;
            }
            _active.erase(_active.begin());
        }
        ActiveInstance inst;
        inst.branchPc = pc;
        inst.taken = taken;
        inst.instrsLeft = _cfg.windowInstrs;
        _active.push_back(std::move(inst));
    }
}

void
ReconPredictor::finishInstance(const ActiveInstance &inst)
{
    Entry &e = _entries[inst.branchPc];
    int dir = inst.taken ? 1 : 0;
    e.suffix[dir] = inst.collected;
    e.haveSuffix[dir] = true;

    if (!e.haveSuffix[0] || !e.haveSuffix[1])
        return;  // warm-up: need both outcomes before a candidate

    // Reconvergence candidate: the first block-start PC in the
    // taken suffix that also appears in the not-taken suffix and
    // lies below the branch in the layout — the original
    // predictor's most important category, which covers forward
    // if/if-else joins and backward loop branches' fall-throughs.
    for (Addr p : e.suffix[1]) {
        if (p <= inst.branchPc)
            continue;
        if (std::find(e.suffix[0].begin(), e.suffix[0].end(), p) !=
            e.suffix[0].end()) {
            vote(e, p);
            return;
        }
    }
}

void
ReconPredictor::vote(Entry &e, Addr candidate)
{
    for (Candidate &c : e.cands) {
        if (c.pc == candidate) {
            ++c.votes;
            return;
        }
    }
    if (static_cast<int>(e.cands.size()) < _cfg.numCandidates) {
        e.cands.push_back({candidate, 1});
        return;
    }
    // Table full: decay and replace the weakest entry.
    auto weakest = std::min_element(
        e.cands.begin(), e.cands.end(),
        [](const Candidate &a, const Candidate &b) {
            return a.votes < b.votes;
        });
    if (--weakest->votes <= 0)
        *weakest = {candidate, 1};
}

Addr
ReconPredictor::predict(Addr branchPc) const
{
    auto it = _entries.find(branchPc);
    if (it == _entries.end())
        return invalidAddr;
    const Entry &e = it->second;
    const Candidate *best = nullptr;
    for (const Candidate &c : e.cands) {
        if (!best || c.votes > best->votes)
            best = &c;
    }
    if (!best || best->votes < _cfg.confidenceThreshold)
        return invalidAddr;
    return best->pc;
}

std::vector<std::pair<Addr, Addr>>
ReconPredictor::confidentPredictions() const
{
    std::vector<std::pair<Addr, Addr>> out;
    for (const auto &[pc, e] : _entries) {
        Addr p = predict(pc);
        if (p != invalidAddr)
            out.emplace_back(pc, p);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace polyflow
