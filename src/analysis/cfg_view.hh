/**
 * @file
 * CfgView: an analysis-friendly view of a function's control flow
 * graph, with a single virtual exit node collecting RET and HALT
 * blocks.
 */

#ifndef POLYFLOW_ANALYSIS_CFG_VIEW_HH
#define POLYFLOW_ANALYSIS_CFG_VIEW_HH

#include <vector>

#include "ir/function.hh"

namespace polyflow {

/**
 * Immutable CFG of one function. Nodes 0..numBlocks-1 are the
 * function's basic blocks (same ids); node numBlocks is the virtual
 * exit. Entry is node 0.
 */
class CfgView
{
  public:
    explicit CfgView(const Function &fn);

    const Function &fn() const { return *_fn; }

    int numNodes() const { return static_cast<int>(_succs.size()); }
    int entryNode() const { return 0; }
    int exitNode() const { return numNodes() - 1; }
    bool isExit(int n) const { return n == exitNode(); }

    const std::vector<int> &succs(int n) const { return _succs[n]; }
    const std::vector<int> &preds(int n) const { return _preds[n]; }

    /** True if @p n is reachable from the entry. */
    bool reachable(int n) const { return _reachable[n]; }

    /** True if every reachable node can reach the virtual exit. */
    bool exitReachesAll() const { return _exitReachesAll; }

    /** Reverse postorder over forward edges from the entry. */
    const std::vector<int> &rpo() const { return _rpo; }
    /** Reverse postorder over reversed edges from the exit. */
    const std::vector<int> &reverseRpo() const { return _reverseRpo; }

  private:
    void computeOrders();

    const Function *_fn;
    std::vector<std::vector<int>> _succs;
    std::vector<std::vector<int>> _preds;
    std::vector<bool> _reachable;
    std::vector<int> _rpo;
    std::vector<int> _reverseRpo;
    bool _exitReachesAll = true;
};

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_CFG_VIEW_HH
