#include "analysis/loops.hh"

#include <algorithm>
#include <map>

namespace polyflow {

bool
Loop::contains(int node) const
{
    return std::binary_search(blocks.begin(), blocks.end(), node);
}

LoopForest::LoopForest(const CfgView &cfg, const DominatorTree &dt)
{
    int n = cfg.numNodes();
    _innermost.assign(n, -1);

    // 1. Find back edges: (u, h) where h dominates u.
    //    Retreating edges to non-dominators mark irreducible flow.
    std::vector<int> rpoNum(n, -1);
    for (size_t i = 0; i < cfg.rpo().size(); ++i)
        rpoNum[cfg.rpo()[i]] = static_cast<int>(i);
    for (int u = 0; u < n; ++u) {
        if (!cfg.reachable(u))
            continue;
        for (int h : cfg.succs(u)) {
            if (dt.dominates(h, u)) {
                _backEdges.emplace_back(u, h);
            } else if (rpoNum[h] >= 0 && rpoNum[h] <= rpoNum[u] &&
                       h != u) {
                _sawIrreducible = true;
            }
        }
    }

    // 2. Merge back edges by header; collect natural loop bodies by
    //    backward walk from each latch, stopping at the header.
    std::map<int, Loop> byHeader;
    for (auto [u, h] : _backEdges) {
        Loop &L = byHeader[h];
        L.header = h;
        L.latches.push_back(u);
        std::vector<bool> inBody(n, false);
        inBody[h] = true;
        std::vector<int> work;
        if (!inBody[u]) {
            inBody[u] = true;
            work.push_back(u);
        }
        while (!work.empty()) {
            int x = work.back();
            work.pop_back();
            for (int p : cfg.preds(x)) {
                if (!inBody[p] && cfg.reachable(p)) {
                    inBody[p] = true;
                    work.push_back(p);
                }
            }
        }
        for (int b = 0; b < n; ++b) {
            if (inBody[b])
                L.blocks.push_back(b);
        }
    }

    for (auto &[h, L] : byHeader) {
        std::sort(L.blocks.begin(), L.blocks.end());
        L.blocks.erase(std::unique(L.blocks.begin(), L.blocks.end()),
                       L.blocks.end());
        std::sort(L.latches.begin(), L.latches.end());
        L.latches.erase(
            std::unique(L.latches.begin(), L.latches.end()),
            L.latches.end());
        L.id = static_cast<int>(_loops.size());
        _loops.push_back(std::move(L));
    }

    // 3. Nesting: loop A is a child of the smallest loop B != A whose
    //    body strictly contains A's body.
    for (Loop &a : _loops) {
        int best = -1;
        size_t bestSize = 0;
        for (const Loop &b : _loops) {
            if (a.id == b.id || b.blocks.size() <= a.blocks.size())
                continue;
            if (b.contains(a.header) &&
                std::includes(b.blocks.begin(), b.blocks.end(),
                              a.blocks.begin(), a.blocks.end())) {
                if (best < 0 || b.blocks.size() < bestSize) {
                    best = b.id;
                    bestSize = b.blocks.size();
                }
            }
        }
        a.parent = best;
    }
    for (Loop &a : _loops) {
        int d = 1;
        for (int p = a.parent; p >= 0; p = _loops[p].parent)
            ++d;
        a.depth = d;
    }

    // 4. Innermost membership per node (deepest loop containing it).
    for (const Loop &L : _loops) {
        for (int b : L.blocks) {
            int cur = _innermost[b];
            if (cur < 0 || _loops[cur].depth < L.depth)
                _innermost[b] = L.id;
        }
    }

    // 5. Exit edges.
    for (Loop &L : _loops) {
        for (int b : L.blocks) {
            for (int s : cfg.succs(b)) {
                if (!L.contains(s))
                    L.exitEdges.emplace_back(b, s);
            }
        }
    }
}

bool
LoopForest::isBackEdge(int u, int v) const
{
    for (auto [a, b] : _backEdges) {
        if (a == u && b == v)
            return true;
    }
    return false;
}

bool
LoopForest::loopContains(int loopId, int node) const
{
    return _loops.at(loopId).contains(node);
}

} // namespace polyflow
