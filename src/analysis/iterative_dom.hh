/**
 * @file
 * A deliberately simple iterative-dataflow dominator solver used as
 * an independent oracle to cross-check the CHK implementation.
 */

#ifndef POLYFLOW_ANALYSIS_ITERATIVE_DOM_HH
#define POLYFLOW_ANALYSIS_ITERATIVE_DOM_HH

#include <vector>

#include "analysis/cfg_view.hh"

namespace polyflow {

/**
 * Full dominator sets by bitvector iteration to a fixed point.
 * dom[n][m] == true iff m dominates n. Unreachable nodes have empty
 * sets.
 */
std::vector<std::vector<bool>>
iterativeDominatorSets(const std::vector<int> &order,
                       const std::vector<std::vector<int>> &preds,
                       int root, int numNodes);

/** Forward dominator sets of a CFG. */
std::vector<std::vector<bool>> iterativeDoms(const CfgView &cfg);

/** Postdominator sets of a CFG (dominators of the reversed graph). */
std::vector<std::vector<bool>> iterativePostDoms(const CfgView &cfg);

/**
 * Derive immediate dominators from full sets: the unique strict
 * dominator that is dominated by every other strict dominator.
 * Returns -1 for root / uncovered nodes.
 */
std::vector<int>
idomsFromSets(const std::vector<std::vector<bool>> &sets, int root);

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_ITERATIVE_DOM_HH
