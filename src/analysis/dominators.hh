/**
 * @file
 * Generic dominator computation (Cooper–Harvey–Kennedy) plus the
 * DominatorTree / PostDominatorTree wrappers used by the rest of the
 * system.
 */

#ifndef POLYFLOW_ANALYSIS_DOMINATORS_HH
#define POLYFLOW_ANALYSIS_DOMINATORS_HH

#include <vector>

#include "analysis/cfg_view.hh"

namespace polyflow {

/**
 * Compute immediate dominators with the Cooper–Harvey–Kennedy
 * "engineered" algorithm.
 *
 * @param rpo reverse postorder of nodes reachable from @p root over
 *            the edge relation implied by @p preds
 * @param preds predecessor lists (reversed successors when computing
 *              postdominators)
 * @param root the start node (entry for dominators, exit for
 *             postdominators)
 * @return idom per node; idom[root] == root; -1 for unreachable nodes
 */
std::vector<int> computeIdoms(const std::vector<int> &rpo,
                              const std::vector<std::vector<int>> &preds,
                              int root, int numNodes);

/**
 * A dominator (or postdominator) tree over the nodes of a CfgView,
 * with O(1) dominance queries via DFS intervals.
 */
class DomTreeBase
{
  public:
    /** Immediate dominator of @p n (root maps to itself; -1 if the
     *  node is not covered by the analysis). */
    int idom(int n) const { return _idom[n]; }
    int root() const { return _root; }
    bool covered(int n) const { return _idom[n] >= 0; }

    /** True if @p a dominates @p b (reflexive). */
    bool dominates(int a, int b) const
    {
        if (!covered(a) || !covered(b))
            return false;
        return _dfsIn[a] <= _dfsIn[b] && _dfsOut[b] <= _dfsOut[a];
    }

    bool strictlyDominates(int a, int b) const
    {
        return a != b && dominates(a, b);
    }

    /** Tree depth of @p n (root = 0, -1 if uncovered). */
    int depth(int n) const { return _depth[n]; }

    const std::vector<int> &children(int n) const
    {
        return _children[n];
    }

  protected:
    void build(std::vector<int> idoms, int root);

    std::vector<int> _idom;
    std::vector<std::vector<int>> _children;
    std::vector<int> _dfsIn, _dfsOut, _depth;
    int _root = -1;
};

/** Forward dominator tree of a function's CFG. */
class DominatorTree : public DomTreeBase
{
  public:
    explicit DominatorTree(const CfgView &cfg);
};

/**
 * Postdominator tree. The root is the virtual exit node; the
 * immediate postdominator of a basic block may be the virtual exit
 * (ipdomBlock() then reports invalidBlock).
 */
class PostDominatorTree : public DomTreeBase
{
  public:
    explicit PostDominatorTree(const CfgView &cfg);

    /**
     * Immediate postdominator of block @p b as a BlockId;
     * invalidBlock when it is the virtual exit or uncovered.
     */
    BlockId ipdomBlock(BlockId b) const;

    bool postDominates(int a, int b) const { return dominates(a, b); }

  private:
    const CfgView *_cfg;
};

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_DOMINATORS_HH
