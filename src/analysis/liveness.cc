#include "analysis/liveness.hh"

namespace polyflow {

namespace {

constexpr RegMask allRegs = 0xffffffffu & ~1u;  // r0 excluded

RegMask
bit(RegId r)
{
    return r == reg::zero ? 0 : (RegMask(1) << r);
}

/** Argument registers a call is assumed to read. */
constexpr RegMask argRegs =
    (1u << reg::a0) | (1u << reg::a1) | (1u << reg::a2) |
    (1u << reg::a3) | (1u << reg::sp) | (1u << reg::gp);

} // namespace

RegMask
regUses(const Instruction &in)
{
    RegId srcs[2];
    int n = in.srcRegs(srcs);
    RegMask m = 0;
    for (int i = 0; i < n; ++i)
        m |= bit(srcs[i]);
    return m;
}

RegMask
regDefs(const Instruction &in)
{
    int d = in.destReg();
    return d < 0 ? 0 : bit(RegId(d));
}

Liveness::Liveness(const Function &fn,
                   const std::vector<RegMask> &calleeWrites)
{
    int n = static_cast<int>(fn.numBlocks());
    _use.assign(n, 0);
    _def.assign(n, 0);
    _liveIn.assign(n, 0);
    _liveOut.assign(n, 0);

    auto callClobbers = [&](const Instruction &in) -> RegMask {
        if (in.op == Opcode::JAL &&
            in.targetFunc >= 0 &&
            size_t(in.targetFunc) < calleeWrites.size()) {
            return calleeWrites[in.targetFunc] | bit(reg::ra);
        }
        return allRegs;  // indirect or unknown callee
    };

    for (int b = 0; b < n; ++b) {
        RegMask use = 0, def = 0;
        for (const Instruction &in : fn.block(b).instrs()) {
            RegMask u = regUses(in);
            if (in.isCall())
                u |= argRegs;
            use |= u & ~def;
            def |= regDefs(in);
            if (in.isCall())
                def |= callClobbers(in);
        }
        _use[b] = use;
        _def[b] = def;
    }

    CfgView cfg(fn);
    bool changed = true;
    while (changed) {
        changed = false;
        for (int b = n - 1; b >= 0; --b) {
            RegMask out = 0;
            for (int s : cfg.succs(b)) {
                if (s < n)
                    out |= _liveIn[s];
            }
            // Returns keep the conventional result registers alive.
            if (fn.block(b).hasTerminator() &&
                fn.block(b).terminator().isReturn()) {
                out |= (1u << reg::a0) | (1u << reg::a1) |
                    (1u << reg::sp) | (1u << reg::gp);
                // Callee-saved registers survive the call.
                for (RegId r = reg::s0; r <= reg::s7; ++r)
                    out |= bit(r);
            }
            RegMask in = _use[b] | (out & ~_def[b]);
            if (out != _liveOut[b] || in != _liveIn[b]) {
                _liveOut[b] = out;
                _liveIn[b] = in;
                changed = true;
            }
        }
    }
}

std::vector<RegMask>
moduleWriteSummaries(const Module &mod)
{
    size_t nf = mod.numFunctions();
    std::vector<RegMask> writes(nf, 0);

    // Local defs first.
    for (size_t f = 0; f < nf; ++f) {
        const Function &fn = mod.function(FuncId(f));
        RegMask m = 0;
        bool indirectCall = false;
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            for (const Instruction &in :
                 fn.block(BlockId(b)).instrs()) {
                m |= regDefs(in);
                if (in.op == Opcode::JALR)
                    indirectCall = true;
            }
        }
        writes[f] = indirectCall ? allRegs : m;
    }

    // Propagate callee writes to callers until fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t f = 0; f < nf; ++f) {
            const Function &fn = mod.function(FuncId(f));
            RegMask m = writes[f];
            for (size_t b = 0; b < fn.numBlocks(); ++b) {
                for (const Instruction &in :
                     fn.block(BlockId(b)).instrs()) {
                    if (in.op == Opcode::JAL &&
                        in.targetFunc >= 0 &&
                        size_t(in.targetFunc) < nf) {
                        m |= writes[in.targetFunc];
                    }
                }
            }
            if (m != writes[f]) {
                writes[f] = m;
                changed = true;
            }
        }
    }
    return writes;
}

} // namespace polyflow
