#include "analysis/iterative_dom.hh"

namespace polyflow {

std::vector<std::vector<bool>>
iterativeDominatorSets(const std::vector<int> &order,
                       const std::vector<std::vector<int>> &preds,
                       int root, int numNodes)
{
    std::vector<bool> in_order(numNodes, false);
    for (int n : order)
        in_order[n] = true;

    // Initialize: root = {root}; others = universe (of ordered nodes).
    std::vector<std::vector<bool>> dom(
        numNodes, std::vector<bool>(numNodes, false));
    for (int n : order) {
        if (n == root) {
            dom[n][n] = true;
        } else {
            for (int m : order)
                dom[n][m] = true;
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (int n : order) {
            if (n == root)
                continue;
            std::vector<bool> next(numNodes, true);
            bool any_pred = false;
            for (int p : preds[n]) {
                if (!in_order[p])
                    continue;
                any_pred = true;
                for (int m = 0; m < numNodes; ++m)
                    next[m] = next[m] && dom[p][m];
            }
            if (!any_pred)
                next.assign(numNodes, false);
            next[n] = true;
            if (next != dom[n]) {
                dom[n] = std::move(next);
                changed = true;
            }
        }
    }

    for (int n = 0; n < numNodes; ++n) {
        if (!in_order[n])
            dom[n].assign(numNodes, false);
    }
    return dom;
}

std::vector<std::vector<bool>>
iterativeDoms(const CfgView &cfg)
{
    std::vector<std::vector<int>> preds(cfg.numNodes());
    for (int n = 0; n < cfg.numNodes(); ++n)
        preds[n] = cfg.preds(n);
    return iterativeDominatorSets(cfg.rpo(), preds, cfg.entryNode(),
                                  cfg.numNodes());
}

std::vector<std::vector<bool>>
iterativePostDoms(const CfgView &cfg)
{
    std::vector<std::vector<int>> succs(cfg.numNodes());
    for (int n = 0; n < cfg.numNodes(); ++n)
        succs[n] = cfg.succs(n);
    return iterativeDominatorSets(cfg.reverseRpo(), succs,
                                  cfg.exitNode(), cfg.numNodes());
}

std::vector<int>
idomsFromSets(const std::vector<std::vector<bool>> &sets, int root)
{
    int n = static_cast<int>(sets.size());
    std::vector<int> idom(n, -1);
    for (int b = 0; b < n; ++b) {
        if (b == root || !sets[b][b])
            continue;
        // Candidates: strict dominators of b. The immediate one is
        // the candidate dominated by all other candidates.
        int best = -1;
        for (int c = 0; c < n; ++c) {
            if (c == b || !sets[b][c])
                continue;
            bool immediate = true;
            for (int d = 0; d < n; ++d) {
                if (d == b || d == c || !sets[b][d])
                    continue;
                // d must dominate c for c to be immediate.
                if (!sets[c][d])
                    immediate = false;
            }
            if (immediate) {
                best = c;
                break;
            }
        }
        idom[b] = best;
    }
    if (root >= 0 && root < n)
        idom[root] = root;
    return idom;
}

} // namespace polyflow
