/**
 * @file
 * Graphviz (dot) export of the analysis structures: CFG,
 * dominator / postdominator trees and the control dependence graph.
 */

#ifndef POLYFLOW_ANALYSIS_DOT_HH
#define POLYFLOW_ANALYSIS_DOT_HH

#include <string>

#include "analysis/cfg_view.hh"
#include "analysis/control_dep.hh"
#include "analysis/dominators.hh"

namespace polyflow {

/** CFG of @p fn as a dot digraph (virtual exit included). */
std::string dotCfg(const Function &fn);

/** Dominator tree of @p fn as a dot digraph. */
std::string dotDomTree(const Function &fn);

/** Postdominator tree of @p fn as a dot digraph. */
std::string dotPostDomTree(const Function &fn);

/**
 * Control dependence graph of @p fn: CFG edges solid, control
 * dependence edges dashed (like the paper's Figure 3).
 */
std::string dotControlDeps(const Function &fn);

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_DOT_HH
