#include "analysis/dominators.hh"

#include <stdexcept>

namespace polyflow {

std::vector<int>
computeIdoms(const std::vector<int> &rpo,
             const std::vector<std::vector<int>> &preds, int root,
             int numNodes)
{
    std::vector<int> idom(numNodes, -1);
    std::vector<int> rpoNum(numNodes, -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoNum[rpo[i]] = static_cast<int>(i);

    idom[root] = root;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoNum[a] > rpoNum[b])
                a = idom[a];
            while (rpoNum[b] > rpoNum[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (int n : rpo) {
            if (n == root)
                continue;
            int newIdom = -1;
            for (int p : preds[n]) {
                if (rpoNum[p] < 0 || idom[p] < 0)
                    continue;  // unreachable or unprocessed
                newIdom = (newIdom < 0) ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 && idom[n] != newIdom) {
                idom[n] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

void
DomTreeBase::build(std::vector<int> idoms, int root)
{
    _idom = std::move(idoms);
    _root = root;
    int n = static_cast<int>(_idom.size());
    _children.assign(n, {});
    for (int i = 0; i < n; ++i) {
        if (i != root && _idom[i] >= 0)
            _children[_idom[i]].push_back(i);
    }

    _dfsIn.assign(n, -1);
    _dfsOut.assign(n, -1);
    _depth.assign(n, -1);
    int clock = 0;
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(root, 0);
    _dfsIn[root] = clock++;
    _depth[root] = 0;
    while (!stack.empty()) {
        auto &[node, ci] = stack.back();
        if (ci < _children[node].size()) {
            int c = _children[node][ci++];
            _dfsIn[c] = clock++;
            _depth[c] = _depth[node] + 1;
            stack.emplace_back(c, 0);
        } else {
            _dfsOut[node] = clock++;
            stack.pop_back();
        }
    }
}

DominatorTree::DominatorTree(const CfgView &cfg)
{
    auto preds = [&] {
        std::vector<std::vector<int>> p(cfg.numNodes());
        for (int n = 0; n < cfg.numNodes(); ++n)
            p[n] = cfg.preds(n);
        return p;
    }();
    build(computeIdoms(cfg.rpo(), preds, cfg.entryNode(),
                       cfg.numNodes()),
          cfg.entryNode());
}

PostDominatorTree::PostDominatorTree(const CfgView &cfg) : _cfg(&cfg)
{
    if (!cfg.exitReachesAll()) {
        throw std::runtime_error(
            "function " + cfg.fn().name() +
            ": some reachable block cannot reach the exit; "
            "postdominators are undefined (infinite loop?)");
    }
    // Postdominators are dominators of the reversed graph: preds of
    // the reversed graph are the forward successors.
    auto succs = [&] {
        std::vector<std::vector<int>> s(cfg.numNodes());
        for (int n = 0; n < cfg.numNodes(); ++n)
            s[n] = cfg.succs(n);
        return s;
    }();
    build(computeIdoms(cfg.reverseRpo(), succs, cfg.exitNode(),
                       cfg.numNodes()),
          cfg.exitNode());
}

BlockId
PostDominatorTree::ipdomBlock(BlockId b) const
{
    int ip = idom(b);
    if (ip < 0 || _cfg->isExit(ip))
        return invalidBlock;
    return ip;
}

} // namespace polyflow
