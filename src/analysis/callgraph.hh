/**
 * @file
 * Static call graph of a module (direct calls only; indirect calls
 * are recorded as unresolved sites).
 */

#ifndef POLYFLOW_ANALYSIS_CALLGRAPH_HH
#define POLYFLOW_ANALYSIS_CALLGRAPH_HH

#include <vector>

#include "ir/module.hh"

namespace polyflow {

/** One call site. */
struct CallSite
{
    FuncId caller;
    BlockId block;
    int instrIdx;      //!< index within the block
    FuncId callee;     //!< invalidFunc for indirect calls
};

/** Direct call graph over a module's functions. */
class CallGraph
{
  public:
    explicit CallGraph(const Module &mod);

    const std::vector<CallSite> &sites() const { return _sites; }

    /** Functions directly called by @p f (deduplicated). */
    const std::vector<FuncId> &calleesOf(FuncId f) const
    {
        return _callees[f];
    }
    const std::vector<FuncId> &callersOf(FuncId f) const
    {
        return _callers[f];
    }

    /** True if @p f can (transitively) reach @p g by direct calls. */
    bool reaches(FuncId f, FuncId g) const;

    /** True if @p f sits on a direct-call cycle (recursion). */
    bool isRecursive(FuncId f) const { return reaches(f, f); }

  private:
    std::vector<CallSite> _sites;
    std::vector<std::vector<FuncId>> _callees;
    std::vector<std::vector<FuncId>> _callers;
};

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_CALLGRAPH_HH
