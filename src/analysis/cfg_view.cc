#include "analysis/cfg_view.hh"

#include <algorithm>

namespace polyflow {

namespace {

/**
 * Iterative postorder DFS from @p root over @p edges, appended to
 * @p order; @p seen marks visited nodes.
 */
void
postorder(int root, const std::vector<std::vector<int>> &edges,
          std::vector<bool> &seen, std::vector<int> &order)
{
    if (seen[root])
        return;
    // Stack of (node, next-child-index).
    std::vector<std::pair<int, size_t>> stack;
    seen[root] = true;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
        auto &[n, ci] = stack.back();
        if (ci < edges[n].size()) {
            int child = edges[n][ci++];
            if (!seen[child]) {
                seen[child] = true;
                stack.emplace_back(child, 0);
            }
        } else {
            order.push_back(n);
            stack.pop_back();
        }
    }
}

} // namespace

CfgView::CfgView(const Function &fn) : _fn(&fn)
{
    int nblocks = static_cast<int>(fn.numBlocks());
    int n = nblocks + 1;  // + virtual exit
    _succs.resize(n);
    _preds.resize(n);

    for (int b = 0; b < nblocks; ++b) {
        const BasicBlock &bb = fn.block(b);
        std::vector<BlockId> succ = bb.successors();
        if (bb.hasTerminator() &&
            (bb.terminator().isReturn() || bb.terminator().isHalt())) {
            succ.push_back(exitNode());
        }
        for (BlockId s : succ) {
            _succs[b].push_back(s);
            _preds[s].push_back(b);
        }
    }
    computeOrders();
}

void
CfgView::computeOrders()
{
    int n = numNodes();

    // Forward reachability + RPO from the entry.
    std::vector<bool> seen(n, false);
    std::vector<int> po;
    postorder(entryNode(), _succs, seen, po);
    _reachable.assign(n, false);
    for (int i = 0; i < n; ++i)
        _reachable[i] = seen[i];
    _rpo.assign(po.rbegin(), po.rend());

    // Reverse RPO from the exit over reversed edges.
    std::vector<bool> rseen(n, false);
    std::vector<int> rpo2;
    postorder(exitNode(), _preds, rseen, rpo2);
    _reverseRpo.assign(rpo2.rbegin(), rpo2.rend());

    // Every reachable node must reach the exit for postdominators to
    // be total on the reachable subgraph.
    _exitReachesAll = true;
    for (int i = 0; i < n; ++i) {
        if (_reachable[i] && !rseen[i])
            _exitReachesAll = false;
    }
}

} // namespace polyflow
