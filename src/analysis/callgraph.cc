#include "analysis/callgraph.hh"

#include <algorithm>

namespace polyflow {

CallGraph::CallGraph(const Module &mod)
{
    size_t nf = mod.numFunctions();
    _callees.assign(nf, {});
    _callers.assign(nf, {});

    for (size_t f = 0; f < nf; ++f) {
        const Function &fn = mod.function(static_cast<FuncId>(f));
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            const BasicBlock &bb = fn.block(static_cast<BlockId>(b));
            for (size_t i = 0; i < bb.size(); ++i) {
                const Instruction &in = bb.instrs()[i];
                if (!in.isCall())
                    continue;
                CallSite site;
                site.caller = static_cast<FuncId>(f);
                site.block = static_cast<BlockId>(b);
                site.instrIdx = static_cast<int>(i);
                site.callee = (in.op == Opcode::JAL) ? in.targetFunc
                                                     : invalidFunc;
                _sites.push_back(site);
                if (site.callee != invalidFunc) {
                    _callees[f].push_back(site.callee);
                    _callers[site.callee].push_back(
                        static_cast<FuncId>(f));
                }
            }
        }
    }
    auto dedup = [](std::vector<FuncId> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (auto &v : _callees)
        dedup(v);
    for (auto &v : _callers)
        dedup(v);
}

bool
CallGraph::reaches(FuncId f, FuncId g) const
{
    std::vector<bool> seen(_callees.size(), false);
    std::vector<FuncId> work;
    for (FuncId c : _callees[f])
        work.push_back(c);
    while (!work.empty()) {
        FuncId x = work.back();
        work.pop_back();
        if (x == g)
            return true;
        if (seen[x])
            continue;
        seen[x] = true;
        for (FuncId c : _callees[x])
            work.push_back(c);
    }
    return false;
}

} // namespace polyflow
