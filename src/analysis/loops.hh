/**
 * @file
 * Natural-loop detection and the loop nesting forest.
 */

#ifndef POLYFLOW_ANALYSIS_LOOPS_HH
#define POLYFLOW_ANALYSIS_LOOPS_HH

#include <vector>

#include "analysis/cfg_view.hh"
#include "analysis/dominators.hh"

namespace polyflow {

/** One natural loop (merged over all back edges into its header). */
struct Loop
{
    int id = -1;
    int header = -1;
    /** Sources of back edges into the header. */
    std::vector<int> latches;
    /** All member nodes including the header, sorted. */
    std::vector<int> blocks;
    /** Edges (from, to) leaving the loop. */
    std::vector<std::pair<int, int>> exitEdges;
    /** Enclosing loop id, or -1 for top-level loops. */
    int parent = -1;
    /** Nesting depth (outermost = 1). */
    int depth = 1;

    bool contains(int node) const;
};

/**
 * All natural loops of a function, built from dominator-identified
 * back edges. Irreducible flow (a back-ish edge whose target does
 * not dominate its source) is ignored with a flag set.
 */
class LoopForest
{
  public:
    LoopForest(const CfgView &cfg, const DominatorTree &dt);

    const std::vector<Loop> &loops() const { return _loops; }
    size_t numLoops() const { return _loops.size(); }

    /** Innermost loop containing @p node, or -1. */
    int innermostLoopOf(int node) const { return _innermost[node]; }

    bool inLoop(int node) const { return _innermost[node] >= 0; }

    /** True if edge (u, v) is a back edge of some natural loop. */
    bool isBackEdge(int u, int v) const;

    /**
     * True if @p node is inside loop @p loopId (including nested
     * loops' nodes).
     */
    bool loopContains(int loopId, int node) const;

    /** True if irreducible control flow was detected. */
    bool sawIrreducible() const { return _sawIrreducible; }

  private:
    std::vector<Loop> _loops;
    std::vector<int> _innermost;
    std::vector<std::pair<int, int>> _backEdges;
    bool _sawIrreducible = false;
};

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_LOOPS_HH
