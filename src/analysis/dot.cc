#include "analysis/dot.hh"

#include <sstream>

namespace polyflow {

namespace {

std::string
nodeName(const Function &fn, int n)
{
    if (n == static_cast<int>(fn.numBlocks()))
        return "EXIT";
    return fn.block(BlockId(n)).name();
}

void
emitNodes(std::ostringstream &os, const Function &fn, int numNodes)
{
    for (int n = 0; n < numNodes; ++n) {
        os << "  n" << n << " [label=\"" << nodeName(fn, n)
           << "\"";
        if (n == static_cast<int>(fn.numBlocks()))
            os << " shape=doublecircle";
        os << "];\n";
    }
}

} // namespace

std::string
dotCfg(const Function &fn)
{
    CfgView cfg(fn);
    std::ostringstream os;
    os << "digraph cfg_" << fn.name() << " {\n";
    emitNodes(os, fn, cfg.numNodes());
    for (int n = 0; n < cfg.numNodes(); ++n) {
        for (int s : cfg.succs(n))
            os << "  n" << n << " -> n" << s << ";\n";
    }
    os << "}\n";
    return os.str();
}

namespace {

std::string
dotTree(const Function &fn, const DomTreeBase &tree,
        const std::string &kind, int numNodes)
{
    std::ostringstream os;
    os << "digraph " << kind << "_" << fn.name() << " {\n";
    emitNodes(os, fn, numNodes);
    for (int n = 0; n < numNodes; ++n) {
        if (n == tree.root() || tree.idom(n) < 0)
            continue;
        os << "  n" << tree.idom(n) << " -> n" << n << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace

std::string
dotDomTree(const Function &fn)
{
    CfgView cfg(fn);
    DominatorTree dt(cfg);
    return dotTree(fn, dt, "domtree", cfg.numNodes());
}

std::string
dotPostDomTree(const Function &fn)
{
    CfgView cfg(fn);
    PostDominatorTree pdt(cfg);
    return dotTree(fn, pdt, "postdomtree", cfg.numNodes());
}

std::string
dotControlDeps(const Function &fn)
{
    CfgView cfg(fn);
    PostDominatorTree pdt(cfg);
    ControlDepGraph cdg(cfg, pdt);
    std::ostringstream os;
    os << "digraph cdg_" << fn.name() << " {\n";
    emitNodes(os, fn, cfg.numNodes());
    for (int n = 0; n < cfg.numNodes(); ++n) {
        for (int s : cfg.succs(n))
            os << "  n" << n << " -> n" << s << ";\n";
    }
    for (int n = 0; n < cfg.numNodes(); ++n) {
        for (int d : cdg.dependentsOf(n)) {
            os << "  n" << n << " -> n" << d
               << " [style=dashed color=blue];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace polyflow
