/**
 * @file
 * Register liveness (backward dataflow) per function, and
 * interprocedural register-write summaries. The spawn analysis uses
 * these to compute the per-spawn-point dependence masks that the
 * paper stores in the hint cache ("an eight byte entry per spawn
 * point ... register and memory dependence information").
 */

#ifndef POLYFLOW_ANALYSIS_LIVENESS_HH
#define POLYFLOW_ANALYSIS_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "analysis/cfg_view.hh"
#include "ir/module.hh"

namespace polyflow {

/** A set of architectural registers as a 32-bit mask. */
using RegMask = std::uint32_t;

/** Registers read / written by one instruction. */
RegMask regUses(const Instruction &in);
RegMask regDefs(const Instruction &in);

/**
 * Block-level liveness for one function. Calls are treated as
 * reading the argument registers and clobbering whatever the callee
 * summary says (pass the module for call resolution; an unresolved
 * indirect call conservatively clobbers and reads everything).
 */
class Liveness
{
  public:
    /**
     * @param calleeWrites per-function write summaries (from
     *        moduleWriteSummaries), or empty to treat calls as
     *        clobbering all registers.
     */
    Liveness(const Function &fn,
             const std::vector<RegMask> &calleeWrites);

    RegMask liveIn(BlockId b) const { return _liveIn[b]; }
    RegMask liveOut(BlockId b) const { return _liveOut[b]; }

    /** Registers read before written within the block. */
    RegMask use(BlockId b) const { return _use[b]; }
    /** Registers written anywhere in the block. */
    RegMask def(BlockId b) const { return _def[b]; }

  private:
    std::vector<RegMask> _use, _def, _liveIn, _liveOut;
};

/**
 * Transitive register-write summaries per function: the registers a
 * call to each function may clobber (including through its callees;
 * recursion converges by fixpoint).
 */
std::vector<RegMask> moduleWriteSummaries(const Module &mod);

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_LIVENESS_HH
