/**
 * @file
 * Control dependence graph (Ferrante–Ottenstein–Warren construction
 * from the postdominator tree).
 */

#ifndef POLYFLOW_ANALYSIS_CONTROL_DEP_HH
#define POLYFLOW_ANALYSIS_CONTROL_DEP_HH

#include <vector>

#include "analysis/cfg_view.hh"
#include "analysis/dominators.hh"

namespace polyflow {

/**
 * Control dependence over the nodes of a CfgView. Node Y is control
 * dependent on node X iff X has a successor edge from which Y's
 * execution is guaranteed, while some other path from X reaches the
 * exit without executing Y.
 */
class ControlDepGraph
{
  public:
    ControlDepGraph(const CfgView &cfg, const PostDominatorTree &pdt);

    /** Nodes control dependent on @p branch (deduplicated). */
    const std::vector<int> &dependentsOf(int branch) const
    {
        return _deps[branch];
    }

    /** Branch nodes that @p node is control dependent on. */
    const std::vector<int> &controllersOf(int node) const
    {
        return _controllers[node];
    }

    bool dependsOn(int node, int branch) const;

    int numNodes() const { return static_cast<int>(_deps.size()); }

  private:
    std::vector<std::vector<int>> _deps;
    std::vector<std::vector<int>> _controllers;
};

} // namespace polyflow

#endif // POLYFLOW_ANALYSIS_CONTROL_DEP_HH
