#include "analysis/control_dep.hh"

#include <algorithm>

namespace polyflow {

ControlDepGraph::ControlDepGraph(const CfgView &cfg,
                                 const PostDominatorTree &pdt)
{
    int n = cfg.numNodes();
    _deps.assign(n, {});
    _controllers.assign(n, {});

    // FOW: for each edge (a, b) where b does not postdominate a,
    // every node on the postdominator-tree path from b up to (but
    // excluding) ipdom(a) is control dependent on a. A self edge
    // (a, a) is processed too: by the definition, a node with a
    // self loop controls its own re-execution.
    for (int a = 0; a < n; ++a) {
        if (!cfg.reachable(a))
            continue;
        for (int b : cfg.succs(a)) {
            if (b != a && pdt.postDominates(b, a))
                continue;
            int stop = pdt.idom(a);
            for (int w = b; w != stop && w >= 0; w = pdt.idom(w)) {
                _deps[a].push_back(w);
                _controllers[w].push_back(a);
                if (w == pdt.idom(w))
                    break;  // defensive: reached the tree root
            }
        }
    }

    auto dedup = [](std::vector<int> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    for (auto &v : _deps)
        dedup(v);
    for (auto &v : _controllers)
        dedup(v);
}

bool
ControlDepGraph::dependsOn(int node, int branch) const
{
    const auto &c = _controllers[node];
    return std::binary_search(c.begin(), c.end(), branch);
}

} // namespace polyflow
