/**
 * @file
 * Binary serialization of committed dynamic traces (the payload of
 * the persistent artifact store's trace entries).
 *
 * Layout: a u64 record count followed by one fixed-stride 28-byte
 * record per DynInstr — u32 img, u32 flags (bit 0 = taken), u64
 * effAddr, u32 prod[0], u32 prod[1], u32 memProd — all little-
 * endian. Fixed-stride records keep the format mmap-friendly: record
 * i lives at byte 8 + 28*i of the payload. Container-level headers,
 * versioning and checksums are the artifact store's job
 * (store/artifact_store.hh); this codec is payload-only.
 */

#ifndef POLYFLOW_ISA_TRACE_IO_HH
#define POLYFLOW_ISA_TRACE_IO_HH

#include <string>
#include <string_view>

#include "isa/trace.hh"

namespace polyflow {

/** Append the binary encoding of @p trace's records to @p out. */
void encodeTrace(const Trace &trace, std::string &out);

/**
 * Decode a trace payload produced by encodeTrace. The resulting
 * trace is bound to @p prog (which must be the program the trace was
 * recorded from — the artifact store guarantees this by keying
 * entries on the program content hash). Returns false, leaving
 * @p out untouched, on any structural problem: short or oversized
 * payload, or a record whose static-instruction index is out of
 * range for @p prog.
 */
bool decodeTrace(std::string_view payload, const LinkedProgram &prog,
                 Trace &out);

} // namespace polyflow

#endif // POLYFLOW_ISA_TRACE_IO_HH
