#include "isa/functional_sim.hh"

#include <stdexcept>
#include <unordered_map>

#include "isa/exec.hh"

namespace polyflow {

FunctionalResult
runFunctional(const LinkedProgram &prog, const FunctionalOptions &options)
{
    FunctionalResult res;
    res.finalState = std::make_unique<ArchState>();
    ArchState &st = *res.finalState;

    for (const DataInit &di : prog.dataInits()) {
        for (size_t i = 0; i < di.bytes.size(); ++i)
            st.writeByte(di.addr + i, di.bytes[i]);
    }
    st.writeReg(reg::sp, std::int64_t(options.stackTop));
    if (!prog.dataInits().empty())
        st.writeReg(reg::gp, std::int64_t(prog.dataInits()[0].addr));

    // Last dynamic writer of each architectural register.
    TraceIdx lastWriter[numArchRegs];
    for (auto &w : lastWriter)
        w = invalidTrace;
    // Last dynamic store touching each aligned 8-byte chunk.
    std::unordered_map<Addr, TraceIdx> lastStore;

    if (options.recordTrace) {
        res.trace.prog = &prog;
        res.trace.instrs.reserve(
            std::min<std::uint64_t>(options.maxInstrs, 1u << 22));
    }

    Addr pc = prog.entryAddr();
    while (res.instrCount < options.maxInstrs) {
        const LinkedInstr &li = prog.at(prog.idxOf(pc));
        const Instruction &in = li.instr;

        ExecOut out = step(li, st);
        ++res.instrCount;

        if (options.recordTrace) {
            DynInstr d;
            d.img = prog.idxOf(pc);
            d.taken = out.taken;
            d.effAddr = in.isMem() ? out.effAddr : out.indirectTarget;

            RegId srcs[2];
            int nsrc = in.srcRegs(srcs);
            for (int s = 0; s < nsrc; ++s)
                d.prod[s] = lastWriter[srcs[s]];

            TraceIdx self =
                static_cast<TraceIdx>(res.trace.instrs.size());
            if (in.isMem()) {
                Addr lo = out.effAddr & ~Addr(7);
                Addr hi = (out.effAddr + in.memBytes() - 1) & ~Addr(7);
                if (in.isLoad()) {
                    for (Addr c = lo; c <= hi; c += 8) {
                        auto it = lastStore.find(c);
                        if (it != lastStore.end() &&
                            (d.memProd == invalidTrace ||
                             it->second > d.memProd)) {
                            d.memProd = it->second;
                        }
                    }
                } else {
                    for (Addr c = lo; c <= hi; c += 8)
                        lastStore[c] = self;
                }
            }
            int dst = in.destReg();
            if (dst >= 0)
                lastWriter[dst] = self;

            res.trace.instrs.push_back(d);
        }

        if (out.halted) {
            res.halted = true;
            break;
        }
        pc = out.nextPc;
        if (!prog.hasAddr(pc)) {
            throw std::runtime_error(
                "functional sim: fetch from non-code address " +
                std::to_string(pc));
        }
    }
    return res;
}

} // namespace polyflow
