#include "isa/arch_state.hh"

#include <cstring>

namespace polyflow {

ArchState::ArchState()
{
    _regs.fill(0);
}

ArchState::Page &
ArchState::pageFor(Addr addr)
{
    Addr pn = addr / pageBytes;
    auto it = _pages.find(pn);
    if (it == _pages.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = _pages.emplace(pn, std::move(page)).first;
    }
    return *it->second;
}

const ArchState::Page *
ArchState::pageForConst(Addr addr) const
{
    auto it = _pages.find(addr / pageBytes);
    return it == _pages.end() ? nullptr : it->second.get();
}

std::uint8_t
ArchState::readByte(Addr addr) const
{
    const Page *p = pageForConst(addr);
    return p ? (*p)[addr % pageBytes] : 0;
}

void
ArchState::writeByte(Addr addr, std::uint8_t value)
{
    pageFor(addr)[addr % pageBytes] = value;
}

std::uint64_t
ArchState::readMem(Addr addr, int bytes) const
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return v;
}

void
ArchState::writeMem(Addr addr, std::uint64_t value, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        writeByte(addr + i, (value >> (8 * i)) & 0xff);
}

std::uint64_t
ArchState::memChecksum() const
{
    std::uint64_t sum = 0;
    for (const auto &[pn, page] : _pages) {
        std::uint64_t psum = pn * 0x9e3779b97f4a7c15ull;
        for (size_t i = 0; i < pageBytes; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, page->data() + i, 8);
            psum ^= w + 0x9e3779b97f4a7c15ull + (psum << 6) +
                (psum >> 2);
        }
        sum ^= psum;
    }
    return sum;
}

} // namespace polyflow
