/**
 * @file
 * Single-instruction execution semantics for PRISC.
 */

#ifndef POLYFLOW_ISA_EXEC_HH
#define POLYFLOW_ISA_EXEC_HH

#include "ir/module.hh"
#include "isa/arch_state.hh"

namespace polyflow {

/** Outcome of executing one instruction. */
struct ExecOut
{
    Addr nextPc = invalidAddr;
    bool taken = false;       //!< control transfer redirected fetch
    bool halted = false;
    Addr effAddr = invalidAddr;  //!< memory effective address
    /** Resolved target of an indirect transfer (JR/JALR/RET). */
    Addr indirectTarget = invalidAddr;
};

/**
 * Execute @p li against @p state, updating registers and memory.
 * @return where fetch goes next and what the instruction did.
 */
ExecOut step(const LinkedInstr &li, ArchState &state);

} // namespace polyflow

#endif // POLYFLOW_ISA_EXEC_HH
