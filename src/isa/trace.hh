/**
 * @file
 * The committed dynamic instruction trace. The functional simulator
 * produces it; the timing simulator and the reconvergence predictor
 * consume it.
 */

#ifndef POLYFLOW_ISA_TRACE_HH
#define POLYFLOW_ISA_TRACE_HH

#include <cstdint>
#include <vector>

#include "ir/module.hh"
#include "ir/types.hh"

namespace polyflow {

/**
 * One committed dynamic instruction. Static properties (opcode,
 * registers, classification) live in the LinkedProgram image; the
 * record stores only dynamic facts plus precomputed dependence links
 * that let the timing model run without re-executing.
 */
struct DynInstr
{
    /** Index of the static instruction in the program image. */
    ImageIdx img = 0;
    /** Control transfer redirected fetch (branch taken / jump). */
    bool taken = false;
    /** Memory effective address, or resolved indirect-jump target. */
    Addr effAddr = invalidAddr;
    /**
     * Trace indices of the dynamic producers of the two source
     * registers (invalidTrace when the value predates the trace or
     * the operand is r0 / absent).
     */
    TraceIdx prod[2] = {invalidTrace, invalidTrace};
    /**
     * For loads: trace index of the most recent older store whose
     * accessed chunk overlaps this load (invalidTrace if none).
     * Chunk granularity is 8 aligned bytes.
     */
    TraceIdx memProd = invalidTrace;
};

/** A full committed trace plus its program. */
struct Trace
{
    const LinkedProgram *prog = nullptr;
    std::vector<DynInstr> instrs;

    const LinkedInstr &staticOf(TraceIdx i) const
    {
        return prog->at(instrs[i].img);
    }
    size_t size() const { return instrs.size(); }
};

} // namespace polyflow

#endif // POLYFLOW_ISA_TRACE_HH
