#include "isa/trace_io.hh"

#include "store/bytes.hh"

namespace polyflow {

namespace {
constexpr size_t recordBytes = 4 + 4 + 8 + 4 + 4 + 4;
} // namespace

void
encodeTrace(const Trace &trace, std::string &out)
{
    out.reserve(out.size() + 8 + recordBytes * trace.instrs.size());
    store::putU64(out, trace.instrs.size());
    for (const DynInstr &d : trace.instrs) {
        store::putU32(out, d.img);
        store::putU32(out, d.taken ? 1u : 0u);
        store::putU64(out, d.effAddr);
        store::putU32(out, d.prod[0]);
        store::putU32(out, d.prod[1]);
        store::putU32(out, d.memProd);
    }
}

bool
decodeTrace(std::string_view payload, const LinkedProgram &prog,
            Trace &out)
{
    store::ByteReader r(payload);
    std::uint64_t count = 0;
    if (!r.u64(count))
        return false;
    if (r.remaining() != count * recordBytes)
        return false;

    Trace t;
    t.prog = &prog;
    t.instrs.resize(count);
    const std::uint32_t imgLimit =
        static_cast<std::uint32_t>(prog.size());
    for (std::uint64_t i = 0; i < count; ++i) {
        DynInstr &d = t.instrs[i];
        std::uint32_t flags = 0;
        if (!r.u32(d.img) || !r.u32(flags) || !r.u64(d.effAddr) ||
            !r.u32(d.prod[0]) || !r.u32(d.prod[1]) ||
            !r.u32(d.memProd)) {
            return false;
        }
        if (d.img >= imgLimit || flags > 1)
            return false;
        d.taken = flags != 0;
    }
    if (!r.atEnd())
        return false;
    out = std::move(t);
    return true;
}

} // namespace polyflow
