/**
 * @file
 * The functional (architectural) simulator: the golden model that
 * executes a linked program to completion and optionally records the
 * committed dynamic trace.
 */

#ifndef POLYFLOW_ISA_FUNCTIONAL_SIM_HH
#define POLYFLOW_ISA_FUNCTIONAL_SIM_HH

#include <cstdint>
#include <memory>

#include "ir/module.hh"
#include "isa/arch_state.hh"
#include "isa/trace.hh"

namespace polyflow {

/** Result of a functional run. */
struct FunctionalResult
{
    /** Committed trace (empty unless recording was requested). */
    Trace trace;
    /** Committed instruction count. */
    std::uint64_t instrCount = 0;
    /** Program reached HALT (vs. hitting the instruction cap). */
    bool halted = false;
    /** Final architectural state. */
    std::unique_ptr<ArchState> finalState;
};

/** Options controlling a functional run. */
struct FunctionalOptions
{
    /** Stop after this many committed instructions. */
    std::uint64_t maxInstrs = 50'000'000;
    /** Record the dynamic trace with dependence links. */
    bool recordTrace = false;
    /** Initial stack pointer. */
    Addr stackTop = 0x7fff0000;
};

/**
 * Run @p prog functionally. Initializes memory from the program's
 * data inits, sp to options.stackTop and gp to the first data
 * address, then interprets from the entry point.
 *
 * When recording, each committed instruction gets exact register
 * producer links (last dynamic writer of each source register) and a
 * memory producer link (last older store to an overlapping 8-byte
 * chunk), which the timing simulator uses for scheduling and
 * violation detection.
 *
 * @warning The recorded trace holds a pointer to @p prog; the
 * program must outlive every use of the trace (do not pass a
 * temporary).
 */
FunctionalResult runFunctional(const LinkedProgram &prog,
                               const FunctionalOptions &options = {});

} // namespace polyflow

#endif // POLYFLOW_ISA_FUNCTIONAL_SIM_HH
