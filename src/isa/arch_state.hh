/**
 * @file
 * Architectural state: the integer register file plus a sparse,
 * paged, byte-addressable memory.
 */

#ifndef POLYFLOW_ISA_ARCH_STATE_HH
#define POLYFLOW_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "ir/types.hh"

namespace polyflow {

/**
 * Registers and memory of the simulated machine. Memory is allocated
 * lazily in 4 KiB pages; unwritten bytes read as zero. Register 0 is
 * hardwired to zero.
 */
class ArchState
{
  public:
    static constexpr size_t pageBytes = 4096;

    ArchState();

    /** @name Registers @{ */
    std::int64_t readReg(RegId r) const { return _regs[r]; }
    void
    writeReg(RegId r, std::int64_t v)
    {
        if (r != reg::zero)
            _regs[r] = v;
    }
    /** @} */

    /** @name Memory (little-endian) @{ */
    std::uint64_t readMem(Addr addr, int bytes) const;
    void writeMem(Addr addr, std::uint64_t value, int bytes);
    std::uint8_t readByte(Addr addr) const;
    void writeByte(Addr addr, std::uint8_t value);
    /** @} */

    /** Bytes of memory currently allocated (for tests). */
    size_t allocatedBytes() const { return _pages.size() * pageBytes; }

    /** XOR-fold of all allocated memory; cheap state fingerprint. */
    std::uint64_t memChecksum() const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    std::array<std::int64_t, numArchRegs> _regs;
    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
};

} // namespace polyflow

#endif // POLYFLOW_ISA_ARCH_STATE_HH
