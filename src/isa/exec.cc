#include "isa/exec.hh"

#include <stdexcept>

namespace polyflow {

ExecOut
step(const LinkedInstr &li, ArchState &st)
{
    const Instruction &in = li.instr;
    ExecOut out;
    out.nextPc = li.addr + instrBytes;

    auto rs1 = [&] { return st.readReg(in.rs1); };
    auto rs2 = [&] { return st.readReg(in.rs2); };
    auto u1 = [&] { return std::uint64_t(st.readReg(in.rs1)); };
    auto u2 = [&] { return std::uint64_t(st.readReg(in.rs2)); };
    auto wr = [&](std::int64_t v) { st.writeReg(in.rd, v); };
    auto branch = [&](bool cond) {
        if (cond) {
            out.nextPc = li.targetAddr;
            out.taken = true;
        }
    };
    auto signExtend = [](std::uint64_t v, int bytes) -> std::int64_t {
        int shift = 64 - 8 * bytes;
        return std::int64_t(v << shift) >> shift;
    };
    // Wrap-around two's-complement arithmetic: compute in unsigned
    // (where overflow is defined) and cast back.
    auto addW = [](std::int64_t a, std::int64_t b) {
        return std::int64_t(std::uint64_t(a) + std::uint64_t(b));
    };
    auto subW = [](std::int64_t a, std::int64_t b) {
        return std::int64_t(std::uint64_t(a) - std::uint64_t(b));
    };
    auto mulW = [](std::int64_t a, std::int64_t b) {
        return std::int64_t(std::uint64_t(a) * std::uint64_t(b));
    };

    switch (in.op) {
      case Opcode::ADD: wr(addW(rs1(), rs2())); break;
      case Opcode::SUB: wr(subW(rs1(), rs2())); break;
      case Opcode::MUL: wr(mulW(rs1(), rs2())); break;
      case Opcode::DIVU:
        wr(u2() == 0 ? -1 : std::int64_t(u1() / u2()));
        break;
      case Opcode::REMU:
        wr(u2() == 0 ? rs1() : std::int64_t(u1() % u2()));
        break;
      case Opcode::AND: wr(rs1() & rs2()); break;
      case Opcode::OR: wr(rs1() | rs2()); break;
      case Opcode::XOR: wr(rs1() ^ rs2()); break;
      case Opcode::SLL: wr(std::int64_t(u1() << (u2() & 63))); break;
      case Opcode::SRL: wr(std::int64_t(u1() >> (u2() & 63))); break;
      case Opcode::SRA: wr(rs1() >> (u2() & 63)); break;
      case Opcode::SLT: wr(rs1() < rs2() ? 1 : 0); break;
      case Opcode::SLTU: wr(u1() < u2() ? 1 : 0); break;

      case Opcode::ADDI: wr(addW(rs1(), in.imm)); break;
      case Opcode::ANDI: wr(rs1() & in.imm); break;
      case Opcode::ORI: wr(rs1() | in.imm); break;
      case Opcode::XORI: wr(rs1() ^ in.imm); break;
      case Opcode::SLLI: wr(std::int64_t(u1() << (in.imm & 63))); break;
      case Opcode::SRLI: wr(std::int64_t(u1() >> (in.imm & 63))); break;
      case Opcode::SRAI: wr(rs1() >> (in.imm & 63)); break;
      case Opcode::SLTI: wr(rs1() < in.imm ? 1 : 0); break;
      case Opcode::LUI: wr(in.imm); break;

      case Opcode::LB: case Opcode::LBU: case Opcode::LH:
      case Opcode::LHU: case Opcode::LW: case Opcode::LWU:
      case Opcode::LD: {
        Addr a = Addr(addW(rs1(), in.imm));
        out.effAddr = a;
        std::uint64_t v = st.readMem(a, in.memBytes());
        wr(in.loadSigned() ? signExtend(v, in.memBytes())
                           : std::int64_t(v));
        break;
      }

      case Opcode::SB: case Opcode::SH: case Opcode::SW:
      case Opcode::SD: {
        Addr a = Addr(addW(rs1(), in.imm));
        out.effAddr = a;
        st.writeMem(a, std::uint64_t(rs2()), in.memBytes());
        break;
      }

      case Opcode::BEQ: branch(rs1() == rs2()); break;
      case Opcode::BNE: branch(rs1() != rs2()); break;
      case Opcode::BLT: branch(rs1() < rs2()); break;
      case Opcode::BGE: branch(rs1() >= rs2()); break;
      case Opcode::BLTZ: branch(rs1() < 0); break;
      case Opcode::BGEZ: branch(rs1() >= 0); break;

      case Opcode::J:
        out.nextPc = li.targetAddr;
        out.taken = true;
        break;
      case Opcode::JAL:
        st.writeReg(reg::ra, std::int64_t(li.addr + instrBytes));
        out.nextPc = li.targetAddr;
        out.taken = true;
        break;
      case Opcode::JR:
        out.nextPc = Addr(rs1());
        out.indirectTarget = out.nextPc;
        out.taken = true;
        break;
      case Opcode::JALR: {
        Addr target = Addr(rs1());
        st.writeReg(reg::ra, std::int64_t(li.addr + instrBytes));
        out.nextPc = target;
        out.indirectTarget = target;
        out.taken = true;
        break;
      }
      case Opcode::RET:
        out.nextPc = Addr(st.readReg(reg::ra));
        out.indirectTarget = out.nextPc;
        out.taken = true;
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        out.halted = true;
        break;

      default:
        throw std::runtime_error("unimplemented opcode");
    }
    return out;
}

} // namespace polyflow
