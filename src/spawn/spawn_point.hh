/**
 * @file
 * Spawn points: (trigger PC, target PC) pairs with the paper's
 * task-type classification.
 */

#ifndef POLYFLOW_SPAWN_SPAWN_POINT_HH
#define POLYFLOW_SPAWN_SPAWN_POINT_HH

#include <cstdint>
#include <string>

#include "ir/types.hh"

namespace polyflow {

/**
 * Task types from Section 2.2 of the paper, plus the loop-iteration
 * heuristic of Section 2.3 (which is not a postdominator category but
 * is evaluated as the "loop" policy).
 */
enum class SpawnKind : std::uint8_t {
    LoopIter,   //!< loop-iteration spawn (heuristic "loop" policy)
    LoopFT,     //!< immediate postdominator of a loop branch
    ProcFT,     //!< immediate postdominator of a call (fall-through)
    Hammock,    //!< join of a simple if-then / if-then-else
    Other,      //!< complex control flow and indirect jumps
    NumKinds,
};

constexpr int numSpawnKinds = static_cast<int>(SpawnKind::NumKinds);

const char *spawnKindName(SpawnKind k);

/** Bitmask helpers for policy composition. */
constexpr unsigned
kindBit(SpawnKind k)
{
    return 1u << static_cast<unsigned>(k);
}

namespace kinds {
constexpr unsigned loopIter = kindBit(SpawnKind::LoopIter);
constexpr unsigned loopFT = kindBit(SpawnKind::LoopFT);
constexpr unsigned procFT = kindBit(SpawnKind::ProcFT);
constexpr unsigned hammock = kindBit(SpawnKind::Hammock);
constexpr unsigned other = kindBit(SpawnKind::Other);
/** The four postdominator categories (the "postdoms" policy). */
constexpr unsigned postdoms = loopFT | procFT | hammock | other;
constexpr unsigned all = postdoms | loopIter;
} // namespace kinds

/** One static spawn opportunity. */
struct SpawnPoint
{
    /** Fetching this PC triggers the spawn. */
    Addr triggerPc = invalidAddr;
    /** The new task begins at the next dynamic occurrence of this. */
    Addr targetPc = invalidAddr;
    SpawnKind kind = SpawnKind::Other;
    FuncId func = invalidFunc;
    /**
     * Compiler-computed register dependence mask (the paper's
     * 8-byte hint-cache entry): registers the spawning task's
     * region may write that are live into the spawned task. The
     * machine synchronizes consumers of these registers instead of
     * speculating.
     */
    std::uint32_t depMask = 0;

    std::string toString() const;
};

} // namespace polyflow

#endif // POLYFLOW_SPAWN_SPAWN_POINT_HH
