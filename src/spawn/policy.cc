#include "spawn/policy.hh"

#include <algorithm>

namespace polyflow {

SpawnPolicy
SpawnPolicy::none()
{
    return {"superscalar", 0};
}

SpawnPolicy
SpawnPolicy::loop()
{
    return {"loop", kinds::loopIter};
}

SpawnPolicy
SpawnPolicy::loopFT()
{
    return {"loopFT", kinds::loopFT};
}

SpawnPolicy
SpawnPolicy::procFT()
{
    return {"procFT", kinds::procFT};
}

SpawnPolicy
SpawnPolicy::hammock()
{
    return {"hammock", kinds::hammock};
}

SpawnPolicy
SpawnPolicy::other()
{
    return {"other", kinds::other};
}

SpawnPolicy
SpawnPolicy::postdoms()
{
    return {"postdoms", kinds::postdoms};
}

SpawnPolicy
SpawnPolicy::loopPlusLoopFT()
{
    return {"loop+loopFT", kinds::loopIter | kinds::loopFT};
}

SpawnPolicy
SpawnPolicy::loopFTPlusProcFT()
{
    return {"loopFT+procFT", kinds::loopFT | kinds::procFT};
}

SpawnPolicy
SpawnPolicy::loopProcFTLoopFT()
{
    return {"loop+procFT+loopFT",
            kinds::loopIter | kinds::procFT | kinds::loopFT};
}

SpawnPolicy
SpawnPolicy::postdomsMinus(SpawnKind k)
{
    return {std::string("postdoms-") + spawnKindName(k),
            kinds::postdoms & ~kindBit(k)};
}

namespace {

/** Priority when several spawns share a trigger PC (higher wins). */
int
kindPriority(SpawnKind k)
{
    switch (k) {
      case SpawnKind::LoopFT: return 5;
      case SpawnKind::ProcFT: return 4;
      case SpawnKind::Hammock: return 3;
      case SpawnKind::Other: return 2;
      case SpawnKind::LoopIter: return 1;
      default: return 0;
    }
}

} // namespace

HintTable::HintTable(const SpawnAnalysis &analysis,
                     const SpawnPolicy &policy)
{
    for (const SpawnPoint &p : analysis.points()) {
        if (!(policy.kindMask & kindBit(p.kind)))
            continue;
        auto it = _byTrigger.find(p.triggerPc);
        if (it == _byTrigger.end() ||
            kindPriority(p.kind) > kindPriority(it->second.kind)) {
            _byTrigger[p.triggerPc] = p;
        }
    }
}

HintTable::HintTable(const std::vector<SpawnPoint> &points)
{
    for (const SpawnPoint &p : points)
        _byTrigger[p.triggerPc] = p;
}

std::vector<SpawnPoint>
HintTable::points() const
{
    std::vector<SpawnPoint> out;
    out.reserve(_byTrigger.size());
    for (const auto &[pc, p] : _byTrigger)
        out.push_back(p);
    std::sort(out.begin(), out.end(),
              [](const SpawnPoint &a, const SpawnPoint &b) {
                  return a.triggerPc < b.triggerPc;
              });
    return out;
}

const SpawnPoint *
HintTable::lookup(Addr pc) const
{
    auto it = _byTrigger.find(pc);
    return it == _byTrigger.end() ? nullptr : &it->second;
}

} // namespace polyflow
