#include "spawn/spawn_analysis.hh"

#include <algorithm>

#include "analysis/cfg_view.hh"
#include "analysis/liveness.hh"
#include "analysis/dominators.hh"
#include "analysis/loops.hh"

namespace polyflow {

const char *
spawnKindName(SpawnKind k)
{
    switch (k) {
      case SpawnKind::LoopIter: return "loop";
      case SpawnKind::LoopFT: return "loopFT";
      case SpawnKind::ProcFT: return "procFT";
      case SpawnKind::Hammock: return "hammock";
      case SpawnKind::Other: return "other";
      default: return "?";
    }
}

std::string
SpawnPoint::toString() const
{
    char buf[96];
    snprintf(buf, sizeof(buf), "%s: %#llx -> %#llx",
             spawnKindName(kind),
             (unsigned long long)triggerPc,
             (unsigned long long)targetPc);
    return buf;
}

namespace {

/**
 * True if the branch-to-join region of @p branch (nodes reachable
 * from the branch without passing through @p join, excluding the
 * branch itself) is single-entry, i.e. dominated by the branch
 * block. Such regions are the paper's "simple hammocks" — possibly
 * with loops or calls embedded, but entered only through the branch.
 */
bool
isSimpleHammock(const CfgView &cfg, const DominatorTree &dt,
                int branch, int join)
{
    std::vector<bool> seen(cfg.numNodes(), false);
    std::vector<int> work;
    for (int s : cfg.succs(branch)) {
        if (s != join && !seen[s]) {
            seen[s] = true;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        int x = work.back();
        work.pop_back();
        if (!dt.dominates(branch, x))
            return false;
        for (int s : cfg.succs(x)) {
            if (s != join && !seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return true;
}

} // namespace

SpawnAnalysis::SpawnAnalysis(const Module &mod,
                             const LinkedProgram &prog)
{
    _writeSummaries = moduleWriteSummaries(mod);
    for (size_t f = 0; f < mod.numFunctions(); ++f)
        analyzeFunction(mod.function(static_cast<FuncId>(f)), prog);
    for (const SpawnPoint &p : _points)
        ++_census.byKind[static_cast<int>(p.kind)];
}

SpawnAnalysis::SpawnAnalysis(std::vector<SpawnPoint> points)
    : _points(std::move(points))
{
    for (const SpawnPoint &p : _points)
        ++_census.byKind[static_cast<int>(p.kind)];
}

namespace {

/**
 * Union of defs over the blocks reachable from @p from without
 * passing through @p target (the spawning task's region).
 */
RegMask
regionDefs(const CfgView &cfg, const Liveness &lv, int from,
           int target)
{
    RegMask defs = 0;
    std::vector<bool> seen(cfg.numNodes(), false);
    std::vector<int> work{from};
    seen[from] = true;
    int nblocks = static_cast<int>(cfg.fn().numBlocks());
    while (!work.empty()) {
        int x = work.back();
        work.pop_back();
        if (x < nblocks)
            defs |= lv.def(BlockId(x));
        for (int s : cfg.succs(x)) {
            if (s != target && !seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
    return defs;
}

} // namespace

void
SpawnAnalysis::analyzeFunction(const Function &fn,
                               const LinkedProgram &prog)
{
    CfgView cfg(fn);
    DominatorTree dt(cfg);
    PostDominatorTree pdt(cfg);
    LoopForest loops(cfg, dt);
    Liveness lv(fn, _writeSummaries);

    auto blockAddr = [&](BlockId b) {
        return prog.blockAddr(fn.id(), b);
    };

    int nblocks = static_cast<int>(fn.numBlocks());
    for (int b = 0; b < nblocks; ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock &bb = fn.block(b);

        // Procedure fall-throughs: at every call instruction,
        // anywhere in the block.
        Addr iaddr = bb.startAddr();
        for (const Instruction &in : bb.instrs()) {
            if (in.isCall()) {
                SpawnPoint p;
                p.triggerPc = iaddr;
                p.targetPc = iaddr + instrBytes;
                p.kind = SpawnKind::ProcFT;
                p.func = fn.id();
                // The spawned continuation may depend on anything
                // the callee writes.
                p.depMask = (in.op == Opcode::JAL &&
                             in.targetFunc != invalidFunc)
                    ? _writeSummaries[in.targetFunc] |
                        (RegMask(1) << reg::ra)
                    : ~RegMask(1);
                _points.push_back(p);
            }
            iaddr += instrBytes;
        }

        if (!bb.hasTerminator())
            continue;
        const Instruction &term = bb.terminator();
        bool condBranch = term.isCondBranch();
        bool indirect = term.isIndirectJump();
        if (!condBranch && !indirect)
            continue;

        BlockId join = pdt.ipdomBlock(b);
        if (join == invalidBlock)
            continue;  // postdominated only by the virtual exit

        SpawnPoint p;
        p.triggerPc = bb.termAddr();
        p.targetPc = blockAddr(join);
        p.func = fn.id();

        if (indirect) {
            p.kind = SpawnKind::Other;
        } else {
            int loop = loops.innermostLoopOf(b);
            bool leavesLoop = false;
            if (loop >= 0) {
                for (int s : cfg.succs(b)) {
                    if (!loops.loopContains(loop, s))
                        leavesLoop = true;
                }
                // A latch back-branch is a loop branch even when its
                // other edge stays inside.
                for (int s : cfg.succs(b)) {
                    if (loops.isBackEdge(b, s))
                        leavesLoop = true;
                }
            }
            if (leavesLoop) {
                p.kind = SpawnKind::LoopFT;
            } else if (isSimpleHammock(cfg, dt, b, join)) {
                p.kind = SpawnKind::Hammock;
            } else {
                p.kind = SpawnKind::Other;
            }
        }
        p.depMask =
            regionDefs(cfg, lv, b, join) & lv.liveIn(join);
        _points.push_back(p);
    }

    // Loop-iteration spawns: header start -> latch block start,
    // keeping the induction update local to the spawned task
    // (Section 2.3).
    for (const Loop &L : loops.loops()) {
        if (L.header >= nblocks || L.latches.empty())
            continue;
        int latch = L.latches.back();
        if (latch >= nblocks)
            continue;
        SpawnPoint p;
        p.triggerPc = blockAddr(L.header);
        p.targetPc = blockAddr(latch);
        p.kind = SpawnKind::LoopIter;
        p.func = fn.id();
        p.depMask =
            regionDefs(cfg, lv, L.header, latch) & lv.liveIn(latch);
        _points.push_back(p);
    }
}

std::vector<SpawnPoint>
SpawnAnalysis::pointsWithKinds(unsigned kindMask) const
{
    std::vector<SpawnPoint> out;
    for (const SpawnPoint &p : _points) {
        if (kindMask & kindBit(p.kind))
            out.push_back(p);
    }
    return out;
}

} // namespace polyflow
