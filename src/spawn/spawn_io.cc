#include "spawn/spawn_io.hh"

#include "store/bytes.hh"

namespace polyflow {

namespace {
constexpr size_t recordBytes = 8 + 8 + 4 + 4 + 4;
} // namespace

void
encodeSpawnPoints(const std::vector<SpawnPoint> &points,
                  std::string &out)
{
    out.reserve(out.size() + 8 + recordBytes * points.size());
    store::putU64(out, points.size());
    for (const SpawnPoint &p : points) {
        store::putU64(out, p.triggerPc);
        store::putU64(out, p.targetPc);
        store::putU32(out, static_cast<std::uint32_t>(p.kind));
        store::putI32(out, p.func);
        store::putU32(out, p.depMask);
    }
}

bool
decodeSpawnPoints(std::string_view payload,
                  std::vector<SpawnPoint> &out)
{
    store::ByteReader r(payload);
    std::uint64_t count = 0;
    if (!r.u64(count))
        return false;
    if (r.remaining() != count * recordBytes)
        return false;

    std::vector<SpawnPoint> points(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        SpawnPoint &p = points[i];
        std::uint32_t kind = 0;
        if (!r.u64(p.triggerPc) || !r.u64(p.targetPc) ||
            !r.u32(kind) || !r.i32(p.func) || !r.u32(p.depMask)) {
            return false;
        }
        if (kind >= static_cast<std::uint32_t>(SpawnKind::NumKinds))
            return false;
        p.kind = static_cast<SpawnKind>(kind);
    }
    if (!r.atEnd())
        return false;
    out = std::move(points);
    return true;
}

} // namespace polyflow
