/**
 * @file
 * Binary serialization of spawn-point lists — the payload format
 * shared by the artifact store's SpawnAnalysis and HintTable
 * entries.
 *
 * Layout: a u64 record count followed by one fixed-stride 28-byte
 * record per SpawnPoint — u64 triggerPc, u64 targetPc, u32 kind,
 * i32 func, u32 depMask — all little-endian. Record order is
 * preserved exactly: SpawnAnalysis point order is semantically
 * meaningful (HintTable construction resolves equal-priority
 * trigger collisions by first occurrence), so a decoded analysis
 * must replay the original order bit for bit.
 */

#ifndef POLYFLOW_SPAWN_SPAWN_IO_HH
#define POLYFLOW_SPAWN_SPAWN_IO_HH

#include <string>
#include <string_view>
#include <vector>

#include "spawn/spawn_point.hh"

namespace polyflow {

/** Append the binary encoding of @p points to @p out. */
void encodeSpawnPoints(const std::vector<SpawnPoint> &points,
                       std::string &out);

/**
 * Decode a spawn-point payload produced by encodeSpawnPoints.
 * Returns false, leaving @p out untouched, on any structural
 * problem: short or oversized payload, or an out-of-range kind.
 */
bool decodeSpawnPoints(std::string_view payload,
                       std::vector<SpawnPoint> &out);

} // namespace polyflow

#endif // POLYFLOW_SPAWN_SPAWN_IO_HH
