/**
 * @file
 * Spawn policies: named selections of spawn kinds (the paper's
 * individual heuristics, combinations, the full postdominator set,
 * and category-exclusion sets), plus the hint table that the Task
 * Spawn Unit consults at fetch.
 */

#ifndef POLYFLOW_SPAWN_POLICY_HH
#define POLYFLOW_SPAWN_POLICY_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "spawn/spawn_analysis.hh"
#include "spawn/spawn_point.hh"

namespace polyflow {

/** A named static spawn policy (a set of enabled spawn kinds). */
struct SpawnPolicy
{
    std::string name;
    unsigned kindMask = 0;

    /** @name The paper's policy lineup @{ */
    static SpawnPolicy none();
    static SpawnPolicy loop();
    static SpawnPolicy loopFT();
    static SpawnPolicy procFT();
    static SpawnPolicy hammock();
    static SpawnPolicy other();
    static SpawnPolicy postdoms();
    /** Figure 10 combinations. */
    static SpawnPolicy loopPlusLoopFT();
    static SpawnPolicy loopFTPlusProcFT();
    static SpawnPolicy loopProcFTLoopFT();
    /** Figure 11 exclusions: postdoms minus one category. */
    static SpawnPolicy postdomsMinus(SpawnKind k);
    /** @} */
};

/**
 * The spawn hint table (the paper's "hint cache", modelled without
 * conflict or capacity misses, as in the paper). Maps a trigger PC
 * to at most one spawn point. When a PC carries several candidate
 * spawns under a policy, the postdominator spawn wins over the
 * loop-iteration heuristic, matching the idea that a branch's own
 * ipdom is the canonical control-equivalent target.
 */
class HintTable
{
  public:
    HintTable() = default;
    HintTable(const SpawnAnalysis &analysis, const SpawnPolicy &policy);

    /**
     * Rehydrate a table from its own points() output (the artifact
     * store's deserialization path). The points are installed
     * verbatim — policy filtering and trigger-collision resolution
     * already happened when the table was first built; duplicate
     * triggers keep the last occurrence.
     */
    explicit HintTable(const std::vector<SpawnPoint> &points);

    /** The spawn point triggered by @p pc, or nullptr. */
    const SpawnPoint *lookup(Addr pc) const;

    /**
     * The table's entries sorted by trigger PC — a deterministic
     * flattening of the unordered map, so serialized hint artifacts
     * are byte-stable across runs.
     */
    std::vector<SpawnPoint> points() const;

    size_t size() const { return _byTrigger.size(); }

  private:
    std::unordered_map<Addr, SpawnPoint> _byTrigger;
};

} // namespace polyflow

#endif // POLYFLOW_SPAWN_POLICY_HH
