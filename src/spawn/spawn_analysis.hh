/**
 * @file
 * Static spawn-point identification: the compiler-side analysis that
 * maps every branch's immediate postdominator (and every call and
 * loop) to a classified spawn opportunity.
 */

#ifndef POLYFLOW_SPAWN_SPAWN_ANALYSIS_HH
#define POLYFLOW_SPAWN_SPAWN_ANALYSIS_HH

#include <array>
#include <vector>

#include "analysis/liveness.hh"
#include "ir/module.hh"
#include "spawn/spawn_point.hh"

namespace polyflow {

/** Static spawn counts by kind (Figure 5 rows). */
struct SpawnCensus
{
    std::array<int, numSpawnKinds> byKind{};

    int
    postdomTotal() const
    {
        return byKind[int(SpawnKind::LoopFT)] +
            byKind[int(SpawnKind::ProcFT)] +
            byKind[int(SpawnKind::Hammock)] +
            byKind[int(SpawnKind::Other)];
    }
};

/**
 * Whole-module spawn analysis. For each function it computes the
 * postdominator tree and loop forest, then emits:
 *
 *  - a LoopFT spawn at every conditional branch that can leave its
 *    innermost loop (back branches and breaks), targeting the
 *    branch block's immediate postdominator;
 *  - a Hammock spawn at every other conditional branch whose
 *    branch-to-join region is single-entry (dominated by the branch
 *    block), targeting the immediate postdominator;
 *  - an Other spawn at remaining conditional branches and at
 *    indirect jumps with a real immediate postdominator;
 *  - a ProcFT spawn at every call instruction, targeting the return
 *    address;
 *  - a LoopIter spawn from every loop header to its latch block
 *    (the Section 2.3 formulation that keeps the induction update
 *    local to the spawned task).
 *
 * Immediate postdominators that are the virtual exit yield no spawn.
 */
class SpawnAnalysis
{
  public:
    SpawnAnalysis(const Module &mod, const LinkedProgram &prog);

    /**
     * Rehydrate an analysis from previously computed spawn points
     * (the artifact store's deserialization path). Point order must
     * be the original analysis order — HintTable construction
     * resolves equal-priority trigger collisions by first
     * occurrence. The census is recomputed from the points.
     */
    explicit SpawnAnalysis(std::vector<SpawnPoint> points);

    const std::vector<SpawnPoint> &points() const { return _points; }

    /** Spawn points with any of the kinds in @p kindMask. */
    std::vector<SpawnPoint> pointsWithKinds(unsigned kindMask) const;

    const SpawnCensus &census() const { return _census; }

  private:
    void analyzeFunction(const Function &fn, const LinkedProgram &prog);

    std::vector<SpawnPoint> _points;
    SpawnCensus _census;
    std::vector<RegMask> _writeSummaries;
};

} // namespace polyflow

#endif // POLYFLOW_SPAWN_SPAWN_ANALYSIS_HH
