/**
 * @file
 * A small text assembler for PRISC. Tests and examples use it to
 * write programs as readable source instead of builder calls.
 *
 * Syntax (one statement per line, ';' or '#' start comments):
 *
 *   .func NAME          begin a function
 *   .endfunc            end it
 *   .entry              mark the enclosing function as the entry
 *   .data NAME SIZE     reserve SIZE bytes of data
 *   .word NAME OFF VAL  initialize 8 bytes at NAME+OFF
 *
 *   label:              begin a basic block
 *   add rd, rs1, rs2    (and all other ALU ops)
 *   addi rd, rs1, imm
 *   li rd, imm|SYMBOL   64-bit immediate or data-symbol address
 *   ld rd, imm(rs1)     loads: lb lbu lh lhu lw lwu ld
 *   sd rval, imm(rs1)   stores: sb sh sw sd
 *   beq rs1, rs2, label (bne blt bge; bltz/bgez take one register)
 *   j label
 *   call FUNC
 *   jr rs1, lab1, lab2, ...   indirect jump with declared targets
 *   ret / halt / nop
 *
 * Registers: r0..r31 or zero, ra, sp, gp, a0..a3, t0..t11, s0..s7.
 */

#ifndef POLYFLOW_ASM_ASSEMBLER_HH
#define POLYFLOW_ASM_ASSEMBLER_HH

#include <memory>
#include <stdexcept>
#include <string>

#include "ir/module.hh"

namespace polyflow {

/** Error with a line number, thrown on any parse problem. */
class AsmError : public std::runtime_error
{
  public:
    AsmError(int line, const std::string &what)
        : std::runtime_error("line " + std::to_string(line) + ": " +
                             what),
          _line(line)
    {}

    int line() const { return _line; }

  private:
    int _line;
};

/** Assemble @p source into a module named @p name. */
std::unique_ptr<Module> assemble(const std::string &source,
                                 const std::string &name = "asm");

} // namespace polyflow

#endif // POLYFLOW_ASM_ASSEMBLER_HH
