#include "asm/assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "ir/builder.hh"

namespace polyflow {

namespace {

struct Line
{
    int number;
    std::vector<std::string> tokens;  //!< first token lower-cased
    std::optional<std::string> label;
};

/** Split a source line into label / tokens, stripping comments. */
std::optional<Line>
lexLine(const std::string &raw, int number)
{
    std::string s = raw;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] == ';' || s[i] == '#') {
            s.resize(i);
            break;
        }
    }
    Line line;
    line.number = number;

    // Leading "label:".
    size_t start = s.find_first_not_of(" \t");
    if (start == std::string::npos)
        return std::nullopt;
    size_t colon = s.find(':');
    if (colon != std::string::npos) {
        std::string lbl = s.substr(start, colon - start);
        bool ok = !lbl.empty();
        for (char c : lbl)
            ok = ok && (std::isalnum(c) || c == '_' || c == '.');
        if (ok) {
            line.label = lbl;
            s = s.substr(colon + 1);
        }
    }

    // Tokenize on spaces, commas and parens; parens are kept as
    // separate tokens so "imm(rs1)" splits cleanly.
    std::string tok;
    auto flush = [&] {
        if (!tok.empty()) {
            line.tokens.push_back(tok);
            tok.clear();
        }
    };
    for (char c : s) {
        if (c == ' ' || c == '\t' || c == ',') {
            flush();
        } else if (c == '(' || c == ')') {
            flush();
        } else {
            tok += c;
        }
    }
    flush();
    if (!line.tokens.empty()) {
        for (char &c : line.tokens[0])
            c = char(std::tolower(c));
    }
    if (line.tokens.empty() && !line.label)
        return std::nullopt;
    return line;
}

RegId
parseReg(const std::string &t, int lineNo)
{
    static const std::map<std::string, RegId> named = {
        {"zero", reg::zero}, {"ra", reg::ra}, {"sp", reg::sp},
        {"gp", reg::gp},     {"a0", reg::a0}, {"a1", reg::a1},
        {"a2", reg::a2},     {"a3", reg::a3}, {"t0", reg::t0},
        {"t1", reg::t1},     {"t2", reg::t2}, {"t3", reg::t3},
        {"t4", reg::t4},     {"t5", reg::t5}, {"t6", reg::t6},
        {"t7", reg::t7},     {"t8", reg::t8}, {"t9", reg::t9},
        {"t10", reg::t10},   {"t11", reg::t11},
        {"s0", reg::s0},     {"s1", reg::s1}, {"s2", reg::s2},
        {"s3", reg::s3},     {"s4", reg::s4}, {"s5", reg::s5},
        {"s6", reg::s6},     {"s7", reg::s7},
    };
    auto it = named.find(t);
    if (it != named.end())
        return it->second;
    if (t.size() >= 2 && (t[0] == 'r' || t[0] == 'R')) {
        int n = 0;
        for (size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(t[i]))
                throw AsmError(lineNo, "bad register " + t);
            n = n * 10 + (t[i] - '0');
        }
        if (n < numArchRegs)
            return RegId(n);
    }
    throw AsmError(lineNo, "bad register " + t);
}

std::int64_t
parseInt(const std::string &t, int lineNo)
{
    size_t pos = 0;
    try {
        long long v = std::stoll(t, &pos, 0);
        if (pos == t.size())
            return v;
    } catch (const std::out_of_range &) {
        // Large unsigned constants (e.g. 64-bit hash multipliers)
        // wrap into the signed representation.
        try {
            unsigned long long v = std::stoull(t, &pos, 0);
            if (pos == t.size())
                return std::int64_t(v);
        } catch (const std::exception &) {
        }
    } catch (const std::exception &) {
    }
    throw AsmError(lineNo, "bad integer " + t);
}

struct OpInfo
{
    Opcode op;
    enum Form {
        RRR,      // add rd, rs1, rs2
        RRI,      // addi rd, rs1, imm
        LoadF,    // ld rd, imm(rs1)
        StoreF,   // sd rval, imm(rs1)
        Branch2,  // beq rs1, rs2, label
        Branch1,  // bltz rs1, label
        JumpF,    // j label
        CallF,    // call func
        JrF,      // jr rs1, labels...
        LiF,      // li rd, imm|symbol
        Bare,     // ret / halt / nop
    } form;
};

const std::map<std::string, OpInfo> &
opTable()
{
    static const std::map<std::string, OpInfo> table = {
        {"add", {Opcode::ADD, OpInfo::RRR}},
        {"sub", {Opcode::SUB, OpInfo::RRR}},
        {"mul", {Opcode::MUL, OpInfo::RRR}},
        {"divu", {Opcode::DIVU, OpInfo::RRR}},
        {"remu", {Opcode::REMU, OpInfo::RRR}},
        {"and", {Opcode::AND, OpInfo::RRR}},
        {"or", {Opcode::OR, OpInfo::RRR}},
        {"xor", {Opcode::XOR, OpInfo::RRR}},
        {"sll", {Opcode::SLL, OpInfo::RRR}},
        {"srl", {Opcode::SRL, OpInfo::RRR}},
        {"sra", {Opcode::SRA, OpInfo::RRR}},
        {"slt", {Opcode::SLT, OpInfo::RRR}},
        {"sltu", {Opcode::SLTU, OpInfo::RRR}},
        {"addi", {Opcode::ADDI, OpInfo::RRI}},
        {"andi", {Opcode::ANDI, OpInfo::RRI}},
        {"ori", {Opcode::ORI, OpInfo::RRI}},
        {"xori", {Opcode::XORI, OpInfo::RRI}},
        {"slli", {Opcode::SLLI, OpInfo::RRI}},
        {"srli", {Opcode::SRLI, OpInfo::RRI}},
        {"srai", {Opcode::SRAI, OpInfo::RRI}},
        {"slti", {Opcode::SLTI, OpInfo::RRI}},
        {"li", {Opcode::LUI, OpInfo::LiF}},
        {"lb", {Opcode::LB, OpInfo::LoadF}},
        {"lbu", {Opcode::LBU, OpInfo::LoadF}},
        {"lh", {Opcode::LH, OpInfo::LoadF}},
        {"lhu", {Opcode::LHU, OpInfo::LoadF}},
        {"lw", {Opcode::LW, OpInfo::LoadF}},
        {"lwu", {Opcode::LWU, OpInfo::LoadF}},
        {"ld", {Opcode::LD, OpInfo::LoadF}},
        {"sb", {Opcode::SB, OpInfo::StoreF}},
        {"sh", {Opcode::SH, OpInfo::StoreF}},
        {"sw", {Opcode::SW, OpInfo::StoreF}},
        {"sd", {Opcode::SD, OpInfo::StoreF}},
        {"beq", {Opcode::BEQ, OpInfo::Branch2}},
        {"bne", {Opcode::BNE, OpInfo::Branch2}},
        {"blt", {Opcode::BLT, OpInfo::Branch2}},
        {"bge", {Opcode::BGE, OpInfo::Branch2}},
        {"bltz", {Opcode::BLTZ, OpInfo::Branch1}},
        {"bgez", {Opcode::BGEZ, OpInfo::Branch1}},
        {"j", {Opcode::J, OpInfo::JumpF}},
        {"call", {Opcode::JAL, OpInfo::CallF}},
        {"jalr", {Opcode::JALR, OpInfo::Branch1}},  // jalr rs1
        {"jr", {Opcode::JR, OpInfo::JrF}},
        {"ret", {Opcode::RET, OpInfo::Bare}},
        {"halt", {Opcode::HALT, OpInfo::Bare}},
        {"nop", {Opcode::NOP, OpInfo::Bare}},
    };
    return table;
}

} // namespace

std::unique_ptr<Module>
assemble(const std::string &source, const std::string &name)
{
    auto mod = std::make_unique<Module>(name);

    // Lex all lines.
    std::vector<Line> lines;
    {
        std::istringstream in(source);
        std::string raw;
        int n = 0;
        while (std::getline(in, raw)) {
            ++n;
            if (auto line = lexLine(raw, n))
                lines.push_back(std::move(*line));
        }
    }

    // Pass 1: declare functions and data so all references resolve.
    for (const Line &l : lines) {
        if (l.tokens.empty())
            continue;
        const std::string &t0 = l.tokens[0];
        if (t0 == ".func") {
            if (l.tokens.size() != 2)
                throw AsmError(l.number, ".func NAME");
            if (mod->findFunction(l.tokens[1]) != invalidFunc)
                throw AsmError(l.number,
                               "duplicate function " + l.tokens[1]);
            mod->createFunction(l.tokens[1]);
        } else if (t0 == ".data") {
            if (l.tokens.size() != 3)
                throw AsmError(l.number, ".data NAME SIZE");
            mod->allocData(l.tokens[1],
                           size_t(parseInt(l.tokens[2], l.number)));
        }
    }
    for (const Line &l : lines) {
        if (!l.tokens.empty() && l.tokens[0] == ".word") {
            if (l.tokens.size() != 4)
                throw AsmError(l.number, ".word NAME OFF VALUE");
            Addr base;
            try {
                base = mod->dataAddr(l.tokens[1]);
            } catch (const std::exception &) {
                throw AsmError(l.number,
                               "unknown data " + l.tokens[1]);
            }
            mod->setData64(base + parseInt(l.tokens[2], l.number),
                           std::uint64_t(
                               parseInt(l.tokens[3], l.number)));
        }
    }

    // Pass 2: emit function bodies.
    size_t i = 0;
    bool sawEntry = false;
    while (i < lines.size()) {
        const Line &l = lines[i];
        if (l.tokens.empty() || l.tokens[0] != ".func") {
            if (!l.tokens.empty() &&
                (l.tokens[0] == ".data" || l.tokens[0] == ".word")) {
                ++i;
                continue;
            }
            throw AsmError(l.number, "statement outside .func");
        }
        FuncId fid = mod->findFunction(l.tokens[1]);
        Function &fn = mod->function(fid);
        size_t bodyStart = ++i;
        // Find .endfunc.
        size_t end = bodyStart;
        while (end < lines.size() &&
               (lines[end].tokens.empty() ||
                lines[end].tokens[0] != ".endfunc")) {
            if (!lines[end].tokens.empty() &&
                lines[end].tokens[0] == ".func") {
                throw AsmError(lines[end].number,
                               "nested .func (missing .endfunc?)");
            }
            ++end;
        }
        if (end == lines.size())
            throw AsmError(l.number, "missing .endfunc");

        // Collect blocks in textual order: labels start blocks, and
        // an instruction following a terminator without a label
        // starts an anonymous fall-through block. Ids must be
        // assigned in this order because block id order is layout
        // order (fall-through goes to id + 1).
        FunctionBuilder b(fn);
        std::map<std::string, BlockId> labels;
        std::map<size_t, BlockId> anonBlocks;  // line idx -> block
        {
            bool emptyEntry = true;
            bool pendingSplit = false;
            auto isTerminator = [&](const Line &bl) {
                if (bl.tokens.empty())
                    return false;
                auto it = opTable().find(bl.tokens[0]);
                if (it == opTable().end())
                    return false;
                Instruction probe;
                probe.op = it->second.op;
                return probe.isTerminator();
            };
            for (size_t j = bodyStart; j < end; ++j) {
                const Line &bl = lines[j];
                if (bl.label) {
                    if (labels.count(*bl.label)) {
                        throw AsmError(bl.number, "duplicate label " +
                                                      *bl.label);
                    }
                    if (emptyEntry) {
                        labels[*bl.label] = 0;  // names the entry
                    } else {
                        labels[*bl.label] = b.newBlock(*bl.label);
                    }
                    pendingSplit = false;
                }
                if (bl.tokens.empty() || bl.tokens[0] == ".entry")
                    continue;
                if (pendingSplit && !bl.label) {
                    anonBlocks[j] = b.newBlock();
                    pendingSplit = false;
                }
                emptyEntry = false;
                pendingSplit = isTerminator(bl);
            }
        }
        auto labelOf = [&](const std::string &s,
                           int lineNo) -> BlockId {
            auto it = labels.find(s);
            if (it == labels.end())
                throw AsmError(lineNo, "unknown label " + s);
            return it->second;
        };

        // Emit.
        BlockId cur = 0;
        b.setBlock(cur);
        for (size_t j = bodyStart; j < end; ++j) {
            const Line &bl = lines[j];
            if (bl.label)
                b.setBlock(labels[*bl.label]);
            if (auto it = anonBlocks.find(j); it != anonBlocks.end())
                b.setBlock(it->second);
            if (bl.tokens.empty())
                continue;
            const std::string &mn = bl.tokens[0];
            if (mn == ".entry") {
                mod->entryFunction(fid);
                sawEntry = true;
                continue;
            }
            auto oit = opTable().find(mn);
            if (oit == opTable().end())
                throw AsmError(bl.number, "unknown mnemonic " + mn);
            const OpInfo &info = oit->second;
            const auto &T = bl.tokens;
            auto need = [&](size_t n) {
                if (T.size() != n) {
                    throw AsmError(bl.number,
                                   "wrong operand count for " + mn);
                }
            };
            Instruction ins;
            ins.op = info.op;
            switch (info.form) {
              case OpInfo::RRR:
                need(4);
                ins.rd = parseReg(T[1], bl.number);
                ins.rs1 = parseReg(T[2], bl.number);
                ins.rs2 = parseReg(T[3], bl.number);
                b.emit(ins);
                break;
              case OpInfo::RRI:
                need(4);
                ins.rd = parseReg(T[1], bl.number);
                ins.rs1 = parseReg(T[2], bl.number);
                ins.imm = parseInt(T[3], bl.number);
                b.emit(ins);
                break;
              case OpInfo::LiF: {
                need(3);
                RegId rd = parseReg(T[1], bl.number);
                std::int64_t imm;
                try {
                    imm = parseInt(T[2], bl.number);
                } catch (const AsmError &) {
                    try {
                        imm = std::int64_t(mod->dataAddr(T[2]));
                    } catch (const std::exception &) {
                        throw AsmError(bl.number,
                                       "unknown symbol " + T[2]);
                    }
                }
                b.li(rd, imm);
                break;
              }
              case OpInfo::LoadF:
                // ld rd, imm ( rs1 )  -> tokens: rd, imm, rs1
                need(4);
                ins.rd = parseReg(T[1], bl.number);
                ins.imm = parseInt(T[2], bl.number);
                ins.rs1 = parseReg(T[3], bl.number);
                b.emit(ins);
                break;
              case OpInfo::StoreF:
                need(4);
                ins.rs2 = parseReg(T[1], bl.number);  // value
                ins.imm = parseInt(T[2], bl.number);
                ins.rs1 = parseReg(T[3], bl.number);  // base
                b.emit(ins);
                break;
              case OpInfo::Branch2: {
                need(4);
                RegId rs1 = parseReg(T[1], bl.number);
                RegId rs2 = parseReg(T[2], bl.number);
                BlockId target = labelOf(T[3], bl.number);
                ins.rs1 = rs1;
                ins.rs2 = rs2;
                ins.targetBlock = target;
                b.emit(ins);
                fn.block(b.curBlock()).takenSucc(target);
                break;
              }
              case OpInfo::Branch1: {
                if (info.op == Opcode::JALR) {
                    need(2);
                    b.callIndirect(parseReg(T[1], bl.number));
                    break;
                }
                need(3);
                ins.rs1 = parseReg(T[1], bl.number);
                BlockId target = labelOf(T[2], bl.number);
                ins.targetBlock = target;
                b.emit(ins);
                fn.block(b.curBlock()).takenSucc(target);
                break;
              }
              case OpInfo::JumpF:
                need(2);
                b.jump(labelOf(T[1], bl.number));
                break;
              case OpInfo::CallF: {
                need(2);
                FuncId callee = mod->findFunction(T[1]);
                if (callee == invalidFunc)
                    throw AsmError(bl.number,
                                   "unknown function " + T[1]);
                b.call(callee);
                break;
              }
              case OpInfo::JrF: {
                if (T.size() < 3) {
                    throw AsmError(bl.number,
                                   "jr needs declared targets");
                }
                std::vector<BlockId> targets;
                for (size_t k = 2; k < T.size(); ++k)
                    targets.push_back(labelOf(T[k], bl.number));
                b.jr(parseReg(T[1], bl.number), targets);
                break;
              }
              case OpInfo::Bare:
                need(1);
                if (info.op == Opcode::RET)
                    b.ret();
                else if (info.op == Opcode::HALT)
                    b.halt();
                else
                    b.nop();
                break;
            }
        }
        i = end + 1;
    }

    if (!sawEntry && mod->numFunctions() > 0)
        mod->entryFunction(0);
    return mod;
}

} // namespace polyflow
