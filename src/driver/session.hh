/**
 * @file
 * polyflow::Session — the front door of the library.
 *
 * A Session is a handle on one (workload, scale) pair that wires the
 * whole trace → analyze → simulate pipeline behind accessors, so
 * callers stop hand-wiring runFunctional → TraceIndex →
 * SpawnAnalysis → HintTable → runTiming:
 *
 *     Session s = Session::open("twolf", 0.25);
 *     const Trace &t = s.trace();                  // traced once
 *     TimingResult base = s.simulate(
 *         MachineConfig::superscalar(), SpawnPolicy::none());
 *     TimingResult pf = s.simulate(
 *         MachineConfig{}, SpawnPolicy::postdoms());
 *
 * Every artifact a Session hands out comes from a SweepCache — built
 * at most once per process, shared read-only, and (when the
 * persistent artifact store is enabled, see store/artifact_store.hh)
 * read through to $PF_CACHE_DIR so a warm process rebuilds nothing.
 * Sessions are cheap value objects: opening several against one
 * shared cache (e.g. SweepRunner::cacheHandle()) shares every
 * artifact; opening with no explicit cache creates a private one
 * with the environment-selected store attached.
 */

#ifndef POLYFLOW_DRIVER_SESSION_HH
#define POLYFLOW_DRIVER_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "driver/sweep.hh"

namespace polyflow {

/** Per-run knobs for Session::simulate(). */
struct RunOptions
{
    /** Collect task lifecycle events of the run. */
    std::vector<TaskEvent> *events = nullptr;
    /**
     * Receives the run's spawn source, so dynamic sources (the
     * reconvergence predictor, DMT heuristics) stay inspectable
     * after training. Set to nullptr for baseline runs.
     */
    std::shared_ptr<SpawnSource> *sourceOut = nullptr;
};

/**
 * The resolved inputs of one timing run — trace, spawn source and
 * shared indexes — without the simulation itself. Session::prepare
 * builds one; Session::simulate is prepare + TimingSim::run, and the
 * sweep engine feeds several PreparedRuns that share a MachineConfig
 * to the batched engine (TimingSim::runBatch) in one go.
 */
struct PreparedRun
{
    /** Keeps the trace (and the program it points into) alive. */
    std::shared_ptr<const driver::TracedWorkload> traced;
    /** Spawn source, private to this run (dynamic sources train);
     *  null for the superscalar baseline. */
    std::shared_ptr<SpawnSource> source;
    /** Shared read-only indexes over the trace; null for the
     *  baseline. */
    std::shared_ptr<const TraceIndex> index;
    /** Reported as TimingResult::policyName. */
    std::string label;

    const Trace &trace() const { return traced->trace; }

    /** View as one machine of a batch (TimingSim::runBatch). */
    BatchItem
    item(std::vector<TaskEvent> *events = nullptr) const
    {
        return {&traced->trace, source.get(), index.get(), label,
                events};
    }
};

class Session
{
  public:
    /** Nested spelling kept so call sites read
     *  Session::RunOptions. */
    using RunOptions = polyflow::RunOptions;

    /**
     * Open a session on a registered workload (see
     * workloads/workloads.hh), with a private cache backed by the
     * environment-selected artifact store.
     */
    static Session open(const std::string &name, double scale = 1.0);

    /** Open against an existing shared cache (and its store). */
    static Session open(const std::string &name, double scale,
                        std::shared_ptr<driver::SweepCache> cache);

    /**
     * Wrap an ad-hoc program (e.g. one just assembled from text) in
     * a session. The workload's name and @p scale key its cache and
     * store entries; the store stays safe against name collisions
     * because keys also hash the linked program's content.
     */
    static Session adopt(Workload workload, double scale = 1.0);

    /** @name Identity @{ */
    const std::string &name() const { return _name; }
    double scale() const { return _scale; }
    /** @} */

    /** @name Pipeline artifacts (each built/loaded at most once) @{ */
    const Workload &workload() const;
    const LinkedProgram &program() const;
    const Module &module() const;
    /** Committed trace from the functional golden model. */
    const Trace &trace() const;
    /** Whole-module spawn analysis. */
    const SpawnAnalysis &analysis() const;
    /** Hint table for @p policy (cached per policy kind mask). */
    std::shared_ptr<const HintTable>
    hints(const SpawnPolicy &policy) const;
    /** @} */

    /**
     * One timing simulation under a static spawn policy. A policy
     * with an empty kind mask (SpawnPolicy::none()) runs the
     * spawning-free superscalar baseline. The run's label defaults
     * to the policy name.
     */
    TimingResult simulate(const MachineConfig &config,
                          const SpawnPolicy &policy,
                          const RunOptions &options = {});

    /**
     * One timing simulation from a SourceSpec, which also covers
     * the dynamic sources (reconvergence predictor, DMT).
     */
    TimingResult simulate(const MachineConfig &config,
                          const driver::SourceSpec &source,
                          const std::string &label,
                          const RunOptions &options = {});

    /**
     * Resolve the inputs of a run without simulating: the cached
     * trace, a fresh spawn source for @p source and the shared
     * trace indexes. Feed several of these (same MachineConfig) to
     * TimingSim::runBatch, or one to TimingSim directly.
     */
    PreparedRun prepare(const driver::SourceSpec &source,
                        const std::string &label) const;

    /** The cache backing this session (shareable across sessions). */
    const std::shared_ptr<driver::SweepCache> &cache() const
    {
        return _cache;
    }

  private:
    Session(std::string name, double scale,
            std::shared_ptr<driver::SweepCache> cache);

    std::string _name;
    double _scale;
    std::shared_ptr<driver::SweepCache> _cache;
};

} // namespace polyflow

#endif // POLYFLOW_DRIVER_SESSION_HH
