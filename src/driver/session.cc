#include "driver/session.hh"

namespace polyflow {

namespace {

/** Spawn source over a cache-shared hint table (StaticSpawnSource
 *  owns its table; this one only borrows). Query is read-only, so
 *  one table serves any number of concurrent simulations. */
class SharedHintSource final : public SpawnSource
{
  public:
    explicit SharedHintSource(std::shared_ptr<const HintTable> table)
        : _table(std::move(table))
    {}

    std::optional<SpawnHint>
    query(const LinkedInstr &li) override
    {
        const SpawnPoint *p = _table->lookup(li.addr);
        if (!p)
            return std::nullopt;
        return SpawnHint{p->targetPc, p->kind, p->depMask};
    }

    void onCommit(const LinkedInstr &, bool) override {}

  private:
    std::shared_ptr<const HintTable> _table;
};

std::shared_ptr<driver::SweepCache>
privateCache()
{
    auto cache = std::make_shared<driver::SweepCache>();
    cache->attachStore(store::ArtifactStore::openFromEnv());
    return cache;
}

} // namespace

Session::Session(std::string name, double scale,
                 std::shared_ptr<driver::SweepCache> cache)
    : _name(std::move(name)), _scale(scale), _cache(std::move(cache))
{}

Session
Session::open(const std::string &name, double scale)
{
    return open(name, scale, privateCache());
}

Session
Session::open(const std::string &name, double scale,
              std::shared_ptr<driver::SweepCache> cache)
{
    return Session(name, scale, std::move(cache));
}

Session
Session::adopt(Workload workload, double scale)
{
    auto cache = privateCache();
    std::string name = workload.name;
    cache->adopt(std::move(workload), scale);
    return Session(std::move(name), scale, std::move(cache));
}

const Workload &
Session::workload() const
{
    return *_cache->workload(_name, _scale);
}

const LinkedProgram &
Session::program() const
{
    return workload().prog;
}

const Module &
Session::module() const
{
    return *workload().module;
}

const Trace &
Session::trace() const
{
    return _cache->traced(_name, _scale)->trace;
}

const SpawnAnalysis &
Session::analysis() const
{
    return *_cache->analysis(_name, _scale);
}

std::shared_ptr<const HintTable>
Session::hints(const SpawnPolicy &policy) const
{
    return _cache->hints(_name, _scale, policy);
}

TimingResult
Session::simulate(const MachineConfig &config,
                  const SpawnPolicy &policy,
                  const RunOptions &options)
{
    driver::SourceSpec spec = policy.kindMask == 0
        ? driver::SourceSpec::baseline()
        : driver::SourceSpec::statics(policy);
    return simulate(config, spec, policy.name, options);
}

PreparedRun
Session::prepare(const driver::SourceSpec &source,
                 const std::string &label) const
{
    PreparedRun run;
    run.traced = _cache->traced(_name, _scale);
    run.label = label;
    switch (source.kind) {
      case driver::SourceSpec::Kind::Baseline:
        break;
      case driver::SourceSpec::Kind::Static:
        run.source = std::make_shared<SharedHintSource>(
            _cache->hints(_name, _scale, source.policy));
        run.index = _cache->traceIndex(_name, _scale);
        break;
      case driver::SourceSpec::Kind::Recon:
        run.source = std::make_shared<ReconSpawnSource>();
        run.index = _cache->traceIndex(_name, _scale);
        break;
      case driver::SourceSpec::Kind::Dmt:
        run.source = std::make_shared<DmtSpawnSource>();
        run.index = _cache->traceIndex(_name, _scale);
        break;
    }
    return run;
}

TimingResult
Session::simulate(const MachineConfig &config,
                  const driver::SourceSpec &source,
                  const std::string &label,
                  const RunOptions &options)
{
    PreparedRun run = prepare(source, label);
    TimingSim sim(config, run.trace(), run.source.get(),
                  run.index.get());
    if (options.events)
        sim.traceTasks(options.events);
    TimingResult res = sim.run(label);
    if (options.sourceOut)
        *options.sourceOut = std::move(run.source);
    return res;
}

} // namespace polyflow
