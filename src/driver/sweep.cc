#include "driver/sweep.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "driver/session.hh"
#include "isa/functional_sim.hh"

namespace polyflow::driver {

namespace {

/** Cache key for a (name, scale) pair; exact round-trip of the
 *  double so distinct scales never collide. */
std::string
scaleKey(const std::string &name, double scale)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale);
    return name + "@" + buf;
}

} // namespace

std::shared_ptr<const Workload>
SweepCache::workload(const std::string &name, double scale)
{
    return _workloads.getOrBuild(scaleKey(name, scale), [&] {
        ++_workloadsBuilt;
        return std::make_shared<const Workload>(
            buildWorkload(name, scale));
    });
}

std::shared_ptr<const Workload>
SweepCache::adopt(Workload w, double scale)
{
    std::string key = scaleKey(w.name, scale);
    return _workloads.getOrBuild(key, [&] {
        ++_workloadsBuilt;
        return std::make_shared<const Workload>(std::move(w));
    });
}

std::shared_ptr<const TracedWorkload>
SweepCache::traced(const std::string &name, double scale)
{
    return _traced.getOrBuild(scaleKey(name, scale), [&] {
        // The trace stores a pointer into the workload's linked
        // program, so trace only the cached (address-stable) copy.
        std::shared_ptr<const Workload> w = workload(name, scale);
        auto tw = std::make_shared<TracedWorkload>();
        tw->workload = w;
        // Store tier first: a validated hit skips the functional
        // run entirely (tracesBuilt stays untouched).
        if (_store) {
            if (auto t = _store->loadTrace(name, scale, w->prog)) {
                tw->trace = std::move(*t);
                return std::shared_ptr<const TracedWorkload>(
                    std::move(tw));
            }
        }
        FunctionalOptions opt;
        opt.recordTrace = true;
        FunctionalResult r = runFunctional(w->prog, opt);
        if (!r.halted)
            throw std::runtime_error(name + ": did not halt");
        ++_tracesBuilt;
        tw->trace = std::move(r.trace);
        if (_store)
            _store->saveTrace(name, scale, w->prog, tw->trace);
        return std::shared_ptr<const TracedWorkload>(std::move(tw));
    });
}

std::shared_ptr<const TraceIndex>
SweepCache::traceIndex(const std::string &name, double scale)
{
    return _indexes.getOrBuild(scaleKey(name, scale), [&] {
        auto tw = traced(name, scale);
        auto idx = std::make_shared<const TraceIndex>(tw->trace);
        return idx;
    });
}

std::shared_ptr<const SpawnAnalysis>
SweepCache::analysis(const std::string &name, double scale)
{
    return _analyses.getOrBuild(scaleKey(name, scale), [&] {
        auto w = workload(name, scale);
        if (_store) {
            if (auto pts = _store->loadAnalysisPoints(name, scale,
                                                      w->prog)) {
                return std::make_shared<const SpawnAnalysis>(
                    std::move(*pts));
            }
        }
        ++_analysesBuilt;
        auto sa = std::make_shared<const SpawnAnalysis>(*w->module,
                                                        w->prog);
        if (_store)
            _store->saveAnalysisPoints(name, scale, w->prog,
                                       sa->points());
        return sa;
    });
}

std::shared_ptr<const HintTable>
SweepCache::hints(const std::string &name, double scale,
                  const SpawnPolicy &policy)
{
    std::string key = scaleKey(name, scale) + "#" +
        std::to_string(policy.kindMask);
    return _hints.getOrBuild(key, [&] {
        auto w = workload(name, scale);
        if (_store) {
            if (auto pts = _store->loadHintPoints(
                    name, scale, w->prog, policy.kindMask)) {
                return std::make_shared<const HintTable>(*pts);
            }
        }
        auto sa = analysis(name, scale);
        ++_hintTablesBuilt;
        auto ht = std::make_shared<const HintTable>(*sa, policy);
        if (_store)
            _store->saveHintPoints(name, scale, w->prog,
                                   policy.kindMask, ht->points());
        return ht;
    });
}

SweepRunner::SweepRunner(int jobs, int batchWidth)
    : _jobs(jobs > 0 ? jobs : defaultJobs()),
      _batchWidth(batchWidth > 0 ? batchWidth : defaultBatchWidth()),
      _cache(std::make_shared<SweepCache>())
{
    _cache->attachStore(store::ArtifactStore::openFromEnv());
}

CellResult
SweepRunner::runCell(const SweepCell &cell)
{
    Session session =
        Session::open(cell.workload, cell.scale, _cache);
    CellResult out;
    Session::RunOptions opts;
    opts.sourceOut = &out.source;

    auto t0 = std::chrono::steady_clock::now();
    out.sim =
        session.simulate(cell.config, cell.source, cell.label, opts);
    out.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return out;
}

void
SweepRunner::runGroup(const std::vector<SweepCell> &cells,
                      const std::vector<size_t> &indices,
                      std::vector<CellResult> &out)
{
    auto t0 = std::chrono::steady_clock::now();
    // Resolving inputs goes through the shared cache (thread-safe,
    // build-once), so concurrent groups over one workload still
    // trace it exactly once.
    std::vector<PreparedRun> runs;
    runs.reserve(indices.size());
    for (size_t i : indices) {
        Session session =
            Session::open(cells[i].workload, cells[i].scale, _cache);
        runs.push_back(
            session.prepare(cells[i].source, cells[i].label));
    }
    std::vector<BatchItem> items;
    items.reserve(runs.size());
    for (const PreparedRun &r : runs)
        items.push_back(r.item());
    std::vector<TimingResult> results = TimingSim::runBatch(
        cells[indices.front()].config, items);
    // Machines of one batch interleave, so per-cell wall time is
    // only meaningful as the group average.
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count() /
        double(indices.size());
    for (size_t k = 0; k < indices.size(); ++k) {
        CellResult &cr = out[indices[k]];
        cr.sim = std::move(results[k]);
        cr.wallSeconds = wall;
        cr.source = std::move(runs[k].source);
    }
}

void
SweepRunner::parallelFor(size_t n,
                         const std::function<void(size_t)> &fn)
{
    size_t workers =
        std::min<size_t>(static_cast<size_t>(_jobs), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::mutex errMutex;
    size_t errIndex = n;
    std::exception_ptr error;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (i < errIndex) {
                    errIndex = i;
                    error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

std::vector<CellResult>
SweepRunner::run(const std::vector<SweepCell> &cells, bool report)
{
    std::vector<CellResult> results(cells.size());
    auto t0 = std::chrono::steady_clock::now();
    if (_batchWidth <= 1) {
        // Scalar reference path: one TimingSim::run per cell.
        parallelFor(cells.size(), [&](size_t i) {
            results[i] = runCell(cells[i]);
        });
    } else {
        // Group cells sharing a (workload, scale, MachineConfig) —
        // in cell order — chunk each group into batches of at most
        // _batchWidth machines, and run the batches on the pool.
        // A batch legally needs only a common config, but machines
        // over one shared trace also share its read-only working
        // set (trace, indexes, hint tables), which is where the
        // stage-major loop's cache locality comes from; batching
        // machines over *different* multi-MB traces thrashes the
        // LLC instead (docs/PERFORMANCE.md). Results land at their
        // original indices, so downstream printing is unchanged.
        struct GroupKey
        {
            const SweepCell *cell;
            bool
            matches(const SweepCell &c) const
            {
                return cell->workload == c.workload &&
                    cell->scale == c.scale &&
                    cell->config == c.config;
            }
        };
        std::vector<GroupKey> keys;
        std::vector<std::vector<size_t>> groups;
        for (size_t i = 0; i < cells.size(); ++i) {
            size_t g = 0;
            while (g < keys.size() && !keys[g].matches(cells[i]))
                ++g;
            if (g == keys.size()) {
                keys.push_back({&cells[i]});
                groups.emplace_back();
            }
            groups[g].push_back(i);
        }
        std::vector<std::vector<size_t>> batches;
        for (const std::vector<size_t> &g : groups) {
            for (size_t off = 0; off < g.size();
                 off += size_t(_batchWidth)) {
                size_t end = std::min(g.size(),
                                      off + size_t(_batchWidth));
                batches.emplace_back(g.begin() + long(off),
                                     g.begin() + long(end));
            }
        }
        parallelFor(batches.size(), [&](size_t b) {
            runGroup(cells, batches[b], results);
        });
    }
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

    if (report) {
        std::uint64_t instrs = 0;
        double cellSeconds = 0;
        for (size_t i = 0; i < cells.size(); ++i) {
            instrs += results[i].sim.instrs;
            cellSeconds += results[i].wallSeconds;
            std::fprintf(stderr,
                         "[sweep] %3zu/%zu %-10s %-24s %8.3fs "
                         "%10llu instrs\n",
                         i + 1, cells.size(),
                         cells[i].workload.c_str(),
                         cells[i].label.c_str(),
                         results[i].wallSeconds,
                         static_cast<unsigned long long>(
                             results[i].sim.instrs));
        }
        std::fprintf(stderr,
                     "[sweep] %zu cells on %d job(s) x batch width "
                     "%d: %.3fs wall (%.3fs in cells), %.0f "
                     "simulated instrs/sec\n",
                     cells.size(), _jobs, _batchWidth, wall,
                     cellSeconds,
                     wall > 0 ? double(instrs) / wall : 0.0);
        // Cache-tier accounting: the warm-cache CI job greps for
        // "cache: 0 traces built" on a second run, so keep the
        // phrase stable.
        const auto &st = _cache->store();
        std::fprintf(stderr,
                     "[sweep] cache: %d traces built, %d analyses "
                     "built, %d hint tables built; store %s: "
                     "%d hits, %d misses\n",
                     _cache->tracesBuilt(), _cache->analysesBuilt(),
                     _cache->hintTablesBuilt(),
                     st ? st->root().string().c_str() : "(disabled)",
                     st ? st->hits() : 0, st ? st->misses() : 0);
    }
    return results;
}

std::optional<SourceSpec>
sourceSpecByName(const std::string &policy)
{
    if (policy == "superscalar")
        return SourceSpec::baseline();
    if (policy == "loop")
        return SourceSpec::statics(SpawnPolicy::loop());
    if (policy == "loopFT")
        return SourceSpec::statics(SpawnPolicy::loopFT());
    if (policy == "procFT")
        return SourceSpec::statics(SpawnPolicy::procFT());
    if (policy == "hammock")
        return SourceSpec::statics(SpawnPolicy::hammock());
    if (policy == "other")
        return SourceSpec::statics(SpawnPolicy::other());
    if (policy == "postdoms")
        return SourceSpec::statics(SpawnPolicy::postdoms());
    if (policy == "rec_pred")
        return SourceSpec::recon();
    if (policy == "dmt")
        return SourceSpec::dmt();
    return std::nullopt;
}

int
defaultJobs()
{
    if (const char *env = std::getenv("PF_BENCH_JOBS")) {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(env, &end, 10);
        if (errno != 0 || end == env || *end != '\0' || v < 1 ||
            v > 4096) {
            std::fprintf(stderr,
                         "PF_BENCH_JOBS: expected a positive "
                         "integer, got \"%s\"\n",
                         env);
            std::exit(2);
        }
        return static_cast<int>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
jobsFromArgs(int argc, char **argv)
{
    auto parse = [](const char *text) {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(text, &end, 10);
        if (errno != 0 || end == text || *end != '\0' || v < 1 ||
            v > 4096) {
            std::fprintf(stderr,
                         "--jobs: expected a positive integer, got "
                         "\"%s\"\n",
                         text);
            std::exit(2);
        }
        return static_cast<int>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs: missing value\n");
                std::exit(2);
            }
            return parse(argv[i + 1]);
        }
        if (std::strncmp(arg, "--jobs=", 7) == 0)
            return parse(arg + 7);
    }
    return defaultJobs();
}

int
defaultBatchWidth()
{
    if (const char *env = std::getenv("PF_BENCH_BATCH")) {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(env, &end, 10);
        if (errno != 0 || end == env || *end != '\0' || v < 1 ||
            v > 4096) {
            std::fprintf(stderr,
                         "PF_BENCH_BATCH: expected a positive "
                         "integer, got \"%s\"\n",
                         env);
            std::exit(2);
        }
        return static_cast<int>(v);
    }
    return 8;
}

int
batchWidthFromArgs(int argc, char **argv)
{
    auto parse = [](const char *text) {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(text, &end, 10);
        if (errno != 0 || end == text || *end != '\0' || v < 1 ||
            v > 4096) {
            std::fprintf(stderr,
                         "--batch: expected a positive integer, got "
                         "\"%s\"\n",
                         text);
            std::exit(2);
        }
        return static_cast<int>(v);
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--batch") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--batch: missing value\n");
                std::exit(2);
            }
            return parse(argv[i + 1]);
        }
        if (std::strncmp(arg, "--batch=", 8) == 0)
            return parse(arg + 8);
    }
    return defaultBatchWidth();
}

std::optional<double>
parsePositiveDouble(const char *text)
{
    if (!text || *text == '\0')
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(text, &end);
    if (errno != 0 || end == text || *end != '\0' ||
        !std::isfinite(v) || v <= 0.0) {
        return std::nullopt;
    }
    return v;
}

} // namespace polyflow::driver
