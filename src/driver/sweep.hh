/**
 * @file
 * The parallel sweep engine behind the figure-regeneration benches.
 *
 * Every figure is a grid of independent (workload x spawn-source x
 * machine-config) timing simulations over shared read-only inputs:
 * the committed trace, the compiler spawn analysis and the per-policy
 * hint table. SweepRunner executes the grid on a thread pool
 * (PF_BENCH_JOBS / --jobs, default hardware_concurrency) while
 * SweepCache builds each shared input exactly once per key and hands
 * out immutable shared_ptrs. Results come back in declaration order,
 * so tables and CSVs are bit-identical to a serial run regardless of
 * the job count; wall-clock and throughput reporting goes to stderr
 * only.
 */

#ifndef POLYFLOW_DRIVER_SWEEP_HH
#define POLYFLOW_DRIVER_SWEEP_HH

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/core.hh"
#include "sim/trace_index.hh"
#include "spawn/policy.hh"
#include "spawn/spawn_analysis.hh"
#include "store/artifact_store.hh"
#include "workloads/workloads.hh"

namespace polyflow::driver {

/** A workload traced once and shared read-only across runs. */
struct TracedWorkload
{
    /** Keeps the LinkedProgram the trace points into alive. */
    std::shared_ptr<const Workload> workload;
    Trace trace;
};

/**
 * Keyed build-once caches for everything timing runs share. All
 * getters are thread-safe: concurrent requests for the same key
 * block until the single build finishes; requests for different keys
 * build in parallel.
 *
 * When a persistent artifact store is attached (attachStore), the
 * trace / analysis / hint tiers become read-through/write-back:
 * a getter first consults the store (content-addressed, validated —
 * see store/artifact_store.hh) and only falls back to building, so
 * a warm process performs zero functional simulations. The build
 * counters count real builds only; store hits leave them untouched,
 * which is exactly what the warm-cache CI job asserts on.
 */
class SweepCache
{
  public:
    /** Attach a persistent store as the second cache tier (usually
     *  store::ArtifactStore::openFromEnv()). */
    void attachStore(std::shared_ptr<store::ArtifactStore> s)
    {
        _store = std::move(s);
    }
    const std::shared_ptr<store::ArtifactStore> &store() const
    {
        return _store;
    }

    /** Workload module + linked program, built once per
     *  (name, scale). */
    std::shared_ptr<const Workload> workload(const std::string &name,
                                             double scale);

    /**
     * Seed the workload tier with an ad-hoc program under
     * (workload.name, @p scale) — Session::adopt uses this so
     * assembled-from-text programs ride the same pipeline tiers as
     * registered workloads. If the key is already present the
     * existing entry wins and @p w is dropped.
     */
    std::shared_ptr<const Workload> adopt(Workload w, double scale);

    /** Committed trace, one functional run per (name, scale). */
    std::shared_ptr<const TracedWorkload>
    traced(const std::string &name, double scale);

    /** Spawn-target / store-consumer indexes over the cached
     *  trace. */
    std::shared_ptr<const TraceIndex>
    traceIndex(const std::string &name, double scale);

    /** Whole-module spawn analysis, once per (name, scale). */
    std::shared_ptr<const SpawnAnalysis>
    analysis(const std::string &name, double scale);

    /** Hint table, once per (name, scale, policy kind mask). */
    std::shared_ptr<const HintTable>
    hints(const std::string &name, double scale,
          const SpawnPolicy &policy);

    /** @name Build counters (cache-behavior tests, reporting) @{ */
    int workloadsBuilt() const { return _workloadsBuilt.load(); }
    int tracesBuilt() const { return _tracesBuilt.load(); }
    int analysesBuilt() const { return _analysesBuilt.load(); }
    int hintTablesBuilt() const { return _hintTablesBuilt.load(); }
    /** @} */

  private:
    template <typename V>
    class KeyedStore
    {
      public:
        /** Return the value for @p key, running @p build exactly
         *  once per key (even under concurrency). */
        std::shared_ptr<const V>
        getOrBuild(const std::string &key,
                   const std::function<std::shared_ptr<const V>()>
                       &build)
        {
            std::shared_ptr<Slot> slot;
            {
                std::lock_guard<std::mutex> lock(_mutex);
                auto &s = _slots[key];
                if (!s)
                    s = std::make_shared<Slot>();
                slot = s;
            }
            std::call_once(slot->once,
                           [&] { slot->value = build(); });
            return slot->value;
        }

      private:
        struct Slot
        {
            std::once_flag once;
            std::shared_ptr<const V> value;
        };
        std::mutex _mutex;
        std::map<std::string, std::shared_ptr<Slot>> _slots;
    };

    KeyedStore<Workload> _workloads;
    KeyedStore<TracedWorkload> _traced;
    KeyedStore<TraceIndex> _indexes;
    KeyedStore<SpawnAnalysis> _analyses;
    KeyedStore<HintTable> _hints;

    std::shared_ptr<store::ArtifactStore> _store;

    std::atomic<int> _workloadsBuilt{0};
    std::atomic<int> _tracesBuilt{0};
    std::atomic<int> _analysesBuilt{0};
    std::atomic<int> _hintTablesBuilt{0};
};

/** How one sweep cell obtains spawn targets. */
struct SourceSpec
{
    enum class Kind {
        Baseline,  //!< no spawning (superscalar reference)
        Static,    //!< compiler hint table under @c policy
        Recon,     //!< reconvergence-predictor source (trains)
        Dmt,       //!< DMT-style dynamic heuristics
    };

    Kind kind = Kind::Baseline;
    SpawnPolicy policy{};  //!< for Kind::Static only

    static SourceSpec
    baseline()
    {
        return {};
    }
    static SourceSpec
    statics(SpawnPolicy p)
    {
        SourceSpec s;
        s.kind = Kind::Static;
        s.policy = std::move(p);
        return s;
    }
    static SourceSpec
    recon()
    {
        SourceSpec s;
        s.kind = Kind::Recon;
        return s;
    }
    static SourceSpec
    dmt()
    {
        SourceSpec s;
        s.kind = Kind::Dmt;
        return s;
    }
};

/** One independent timing simulation in a sweep grid. */
struct SweepCell
{
    std::string workload;
    double scale = 1.0;
    SourceSpec source;
    MachineConfig config{};
    /** Reported as TimingResult::policyName. */
    std::string label;
};

/** Outcome of one cell. */
struct CellResult
{
    TimingResult sim;
    double wallSeconds = 0.0;
    /** The cell's spawn source; dynamic sources stay inspectable
     *  after training (e.g. the reconvergence predictor). Null for
     *  baseline cells. */
    std::shared_ptr<SpawnSource> source;
};

/**
 * Thread-pool executor for sweep grids. Cells run concurrently but
 * results are returned in cell order, so downstream printing is
 * deterministic.
 */
class SweepRunner
{
  public:
    /**
     * @param jobs worker count; <= 0 selects defaultJobs().
     * @param batchWidth max machines per batched simulation; <= 0
     *        selects defaultBatchWidth(). Width 1 runs every cell
     *        through the scalar TimingSim::run reference path.
     *
     * Cells that share a (workload, scale, MachineConfig) triple are
     * grouped into batches of up to @p batchWidth machines and run
     * through the stage-major batch engine (sim/batch.hh), one batch
     * per worker — total concurrency is jobs x batch width machines.
     * Grouping requires the same workload, not just the same config,
     * so a batch's machines replay one shared read-only trace
     * instead of multiplying the resident trace bytes by the width.
     * Batched results
     * are cycle-identical to scalar runs, so stdout stays
     * byte-identical across widths (and the CI sha256 check holds
     * the two paths to that).
     *
     * The runner's cache gets the environment-selected persistent
     * store attached (PF_CACHE_DIR; "off" disables), so warm bench
     * reruns skip every functional simulation.
     */
    explicit SweepRunner(int jobs = 0, int batchWidth = 0);

    int jobs() const { return _jobs; }
    int batchWidth() const { return _batchWidth; }
    SweepCache &cache() { return *_cache; }
    /** Shareable handle, e.g. for Session::open over this cache. */
    const std::shared_ptr<SweepCache> &cacheHandle() const
    {
        return _cache;
    }

    /**
     * Execute every cell and return results in cell order. When
     * @p report is true, prints per-cell wall-clock and aggregate
     * simulated-instruction throughput to stderr (never stdout, so
     * table output stays byte-identical across job counts).
     */
    std::vector<CellResult> run(const std::vector<SweepCell> &cells,
                                bool report = true);

    /**
     * Generic parallel loop over [0, n) on the runner's pool; used
     * by analysis-only benches to warm the cache. Exceptions from
     * @p fn are rethrown (lowest index wins).
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t)> &fn);

  private:
    CellResult runCell(const SweepCell &cell);
    /** Run the cells at @p indices (all sharing one workload, scale
     *  and MachineConfig) as one batch, writing each result at its
     *  original index. */
    void runGroup(const std::vector<SweepCell> &cells,
                  const std::vector<size_t> &indices,
                  std::vector<CellResult> &out);

    int _jobs;
    int _batchWidth;
    std::shared_ptr<SweepCache> _cache;
};

/**
 * SourceSpec for a policy name as spelled on tool command lines:
 * "superscalar", the static policy lineup ("loop", "loopFT",
 * "procFT", "hammock", "other", "postdoms"), "rec_pred" or "dmt".
 * nullopt for anything else.
 */
std::optional<SourceSpec>
sourceSpecByName(const std::string &policy);

/**
 * Worker count from the environment: PF_BENCH_JOBS if set (must be a
 * positive integer), else std::thread::hardware_concurrency().
 */
int defaultJobs();

/**
 * Worker count from the command line: `--jobs N` or `--jobs=N`
 * overrides defaultJobs(). Exits with a clear error on malformed
 * values.
 */
int jobsFromArgs(int argc, char **argv);

/**
 * Batch width from the environment: PF_BENCH_BATCH if set (must be
 * a positive integer; 1 forces the scalar reference path), else 8 —
 * wide enough to amortize the stage-major loop, small enough that a
 * sweep grid still splits across jobs.
 */
int defaultBatchWidth();

/**
 * Batch width from the command line: `--batch N` or `--batch=N`
 * overrides defaultBatchWidth(). Exits with a clear error on
 * malformed values.
 */
int batchWidthFromArgs(int argc, char **argv);

/**
 * Strict positive-double parser for environment knobs: the full
 * string must parse and the value must be finite and > 0, else
 * nullopt. (std::atof would silently return 0.)
 */
std::optional<double> parsePositiveDouble(const char *text);

} // namespace polyflow::driver

#endif // POLYFLOW_DRIVER_SWEEP_HH
