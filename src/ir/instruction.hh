/**
 * @file
 * The PRISC instruction definition.
 *
 * PRISC is the compact 64-bit RISC ISA this repository uses in place of
 * the paper's 64-bit MIPS variant. Each instruction is a fixed-size
 * record; branch and call targets are symbolic (block / function ids)
 * until Module::link() resolves them to flat addresses.
 */

#ifndef POLYFLOW_IR_INSTRUCTION_HH
#define POLYFLOW_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "ir/types.hh"

namespace polyflow {

/** Every operation in the PRISC ISA. */
enum class Opcode : std::uint8_t {
    // Register-register ALU.
    ADD, SUB, MUL, DIVU, REMU, AND, OR, XOR,
    SLL, SRL, SRA, SLT, SLTU,
    // Register-immediate ALU.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI,
    LUI,
    // Loads (sign- and zero-extending).
    LB, LBU, LH, LHU, LW, LWU, LD,
    // Stores.
    SB, SH, SW, SD,
    // Conditional branches (rs1 vs rs2, or rs1 vs zero).
    BEQ, BNE, BLT, BGE, BLTZ, BGEZ,
    // Unconditional control flow.
    J,     //!< direct jump (intra-function, to a block)
    JAL,   //!< direct call (to a function); writes ra
    JR,    //!< indirect jump through rs1 (e.g. switch tables)
    JALR,  //!< indirect call through rs1; writes ra
    RET,   //!< return through ra
    // Misc.
    NOP,
    HALT,  //!< stop the program
    NumOpcodes,
};

/** Human-readable mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/**
 * One PRISC instruction. Targets are symbolic until link time:
 * conditional branches and J name a BlockId in the same function;
 * JAL names a FuncId. After linking, the resolved flat address
 * lives in LinkedInstr::targetAddr.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegId rd = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    std::int64_t imm = 0;

    /** Branch / direct-jump target block (invalidBlock if none). */
    BlockId targetBlock = invalidBlock;
    /** Direct-call target function (invalidFunc if none). */
    FuncId targetFunc = invalidFunc;

    /** @name Classification helpers @{ */
    bool isCondBranch() const;
    bool isDirectJump() const { return op == Opcode::J; }
    bool isIndirectJump() const { return op == Opcode::JR; }
    bool isCall() const
    {
        return op == Opcode::JAL || op == Opcode::JALR;
    }
    bool isReturn() const { return op == Opcode::RET; }
    bool isHalt() const { return op == Opcode::HALT; }
    bool isLoad() const;
    bool isStore() const;
    bool isMem() const { return isLoad() || isStore(); }
    /** True if this instruction must end a basic block. */
    bool isTerminator() const;
    /** True for any instruction that redirects fetch when taken. */
    bool isControl() const
    {
        return isCondBranch() || isDirectJump() || isIndirectJump() ||
            isCall() || isReturn() || isHalt();
    }
    /** @} */

    /** Bytes moved by a load/store (0 for non-memory ops). */
    int memBytes() const;
    /** True if the load sign-extends its result. */
    bool loadSigned() const;

    /** Destination register written, or -1 if none. */
    int destReg() const;
    /** Source registers read; count returned, regs in out[0..1]. */
    int srcRegs(RegId out[2]) const;

    /** Disassembly string (symbolic targets). */
    std::string toString() const;
};

} // namespace polyflow

#endif // POLYFLOW_IR_INSTRUCTION_HH
