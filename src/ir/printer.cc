#include "ir/printer.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace polyflow {

void
printFunction(std::ostream &os, const Function &fn)
{
    os << ".func " << fn.name() << "  ; fn" << fn.id() << "\n";
    for (size_t b = 0; b < fn.numBlocks(); ++b) {
        const BasicBlock &bb = fn.block(BlockId(b));
        os << bb.name() << ":";
        if (bb.takenSucc() != invalidBlock ||
            bb.fallSucc() != invalidBlock) {
            os << "  ; succs:";
            if (bb.takenSucc() != invalidBlock)
                os << " taken=bb" << bb.takenSucc();
            if (bb.fallSucc() != invalidBlock)
                os << " fall=bb" << bb.fallSucc();
        }
        os << "\n";
        for (const Instruction &in : bb.instrs())
            os << "    " << in.toString() << "\n";
    }
    os << ".endfunc\n";
}

void
printModule(std::ostream &os, const Module &mod)
{
    os << "; module " << mod.name() << "\n";
    for (size_t f = 0; f < mod.numFunctions(); ++f) {
        printFunction(os, mod.function(FuncId(f)));
        os << "\n";
    }
}

void
disassemble(std::ostream &os, const LinkedProgram &prog)
{
    FuncId lastFunc = invalidFunc;
    for (const LinkedInstr &li : prog.image()) {
        if (li.func != lastFunc) {
            os << "; ---- function fn" << li.func << " ----\n";
            lastFunc = li.func;
        }
        if (li.blockStart)
            os << "; bb" << li.block << ":\n";
        os << "  " << std::hex << std::setw(8) << li.addr << std::dec
           << "  " << li.instr.toString();
        if (li.targetAddr != invalidAddr) {
            os << "    ; -> " << std::hex << li.targetAddr
               << std::dec;
        }
        if (li.addr == prog.entryAddr())
            os << "    ; <entry>";
        os << "\n";
    }
}

std::string
disassemble(const LinkedProgram &prog)
{
    std::ostringstream os;
    disassemble(os, prog);
    return os.str();
}

} // namespace polyflow
