/**
 * @file
 * FunctionBuilder: a fluent emitter for constructing PRISC functions
 * in C++. This is the main authoring interface used by the synthetic
 * workloads and by tests.
 */

#ifndef POLYFLOW_IR_BUILDER_HH
#define POLYFLOW_IR_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hh"
#include "ir/types.hh"

namespace polyflow {

/**
 * Emits instructions into the basic blocks of one function. The
 * builder tracks a current block; control-flow emitters take block
 * ids created up front with newBlock().
 */
class FunctionBuilder
{
  public:
    explicit FunctionBuilder(Function &fn) : _fn(fn)
    {
        _cur = _fn.numBlocks() ? 0 : _fn.createBlock();
    }

    Function &fn() { return _fn; }

    /** Create a block without switching to it. */
    BlockId newBlock(const std::string &name = "")
    {
        return _fn.createBlock(name);
    }

    /** Switch the emission point to @p b. */
    void setBlock(BlockId b) { _cur = b; }
    BlockId curBlock() const { return _cur; }

    /** @name ALU emitters @{ */
    void add(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::ADD, rd, rs1, rs2);
    }
    void sub(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SUB, rd, rs1, rs2);
    }
    void mul(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::MUL, rd, rs1, rs2);
    }
    void divu(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::DIVU, rd, rs1, rs2);
    }
    void remu(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::REMU, rd, rs1, rs2);
    }
    void and_(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::AND, rd, rs1, rs2);
    }
    void or_(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::OR, rd, rs1, rs2);
    }
    void xor_(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::XOR, rd, rs1, rs2);
    }
    void sll(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SLL, rd, rs1, rs2);
    }
    void srl(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SRL, rd, rs1, rs2);
    }
    void sra(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SRA, rd, rs1, rs2);
    }
    void slt(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SLT, rd, rs1, rs2);
    }
    void sltu(RegId rd, RegId rs1, RegId rs2)
    {
        emitRRR(Opcode::SLTU, rd, rs1, rs2);
    }
    void addi(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::ADDI, rd, rs1, imm);
    }
    void andi(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::ANDI, rd, rs1, imm);
    }
    void ori(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::ORI, rd, rs1, imm);
    }
    void xori(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::XORI, rd, rs1, imm);
    }
    void slli(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::SLLI, rd, rs1, imm);
    }
    void srli(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::SRLI, rd, rs1, imm);
    }
    void srai(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::SRAI, rd, rs1, imm);
    }
    void slti(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::SLTI, rd, rs1, imm);
    }
    /** Load a full 64-bit immediate (single-instruction in PRISC). */
    void li(RegId rd, std::int64_t imm)
    {
        Instruction i;
        i.op = Opcode::LUI;
        i.rd = rd;
        i.imm = imm;
        emit(i);
    }
    void mov(RegId rd, RegId rs) { addi(rd, rs, 0); }
    void nop() { emit({}); }
    /** @} */

    /** @name Memory emitters (addr = rs1 + imm) @{ */
    void lb(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LB, rd, rs1, imm);
    }
    void lbu(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LBU, rd, rs1, imm);
    }
    void lh(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LH, rd, rs1, imm);
    }
    void lhu(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LHU, rd, rs1, imm);
    }
    void lw(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LW, rd, rs1, imm);
    }
    void lwu(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LWU, rd, rs1, imm);
    }
    void ld(RegId rd, RegId rs1, std::int64_t imm)
    {
        emitRRI(Opcode::LD, rd, rs1, imm);
    }
    void sb(RegId rval, RegId rbase, std::int64_t imm)
    {
        emitStore(Opcode::SB, rval, rbase, imm);
    }
    void sh(RegId rval, RegId rbase, std::int64_t imm)
    {
        emitStore(Opcode::SH, rval, rbase, imm);
    }
    void sw(RegId rval, RegId rbase, std::int64_t imm)
    {
        emitStore(Opcode::SW, rval, rbase, imm);
    }
    void sd(RegId rval, RegId rbase, std::int64_t imm)
    {
        emitStore(Opcode::SD, rval, rbase, imm);
    }
    /** @} */

    /** @name Control-flow emitters @{ */
    void beq(RegId rs1, RegId rs2, BlockId target)
    {
        emitBranch(Opcode::BEQ, rs1, rs2, target);
    }
    void bne(RegId rs1, RegId rs2, BlockId target)
    {
        emitBranch(Opcode::BNE, rs1, rs2, target);
    }
    void blt(RegId rs1, RegId rs2, BlockId target)
    {
        emitBranch(Opcode::BLT, rs1, rs2, target);
    }
    void bge(RegId rs1, RegId rs2, BlockId target)
    {
        emitBranch(Opcode::BGE, rs1, rs2, target);
    }
    void bltz(RegId rs1, BlockId target)
    {
        emitBranch(Opcode::BLTZ, rs1, 0, target);
    }
    void bgez(RegId rs1, BlockId target)
    {
        emitBranch(Opcode::BGEZ, rs1, 0, target);
    }
    void jump(BlockId target)
    {
        Instruction i;
        i.op = Opcode::J;
        i.targetBlock = target;
        emit(i);
        _fn.block(_cur).takenSucc(target);
    }
    void call(FuncId target)
    {
        Instruction i;
        i.op = Opcode::JAL;
        i.targetFunc = target;
        emit(i);
    }
    void callIndirect(RegId rs1)
    {
        Instruction i;
        i.op = Opcode::JALR;
        i.rs1 = rs1;
        emit(i);
    }
    /** Indirect jump; @p targets declares the possible blocks. */
    void jr(RegId rs1, const std::vector<BlockId> &targets)
    {
        Instruction i;
        i.op = Opcode::JR;
        i.rs1 = rs1;
        emit(i);
        for (BlockId t : targets)
            _fn.block(_cur).addIndirectSucc(t);
    }
    void ret()
    {
        Instruction i;
        i.op = Opcode::RET;
        emit(i);
    }
    void halt()
    {
        Instruction i;
        i.op = Opcode::HALT;
        emit(i);
    }
    /** @} */

    /** Append a raw instruction to the current block. */
    void emit(const Instruction &i) { _fn.block(_cur).append(i); }

  private:
    void
    emitRRR(Opcode op, RegId rd, RegId rs1, RegId rs2)
    {
        Instruction i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        emit(i);
    }

    void
    emitRRI(Opcode op, RegId rd, RegId rs1, std::int64_t imm)
    {
        Instruction i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = imm;
        emit(i);
    }

    void
    emitStore(Opcode op, RegId rval, RegId rbase, std::int64_t imm)
    {
        Instruction i;
        i.op = op;
        i.rs1 = rbase;  // address base
        i.rs2 = rval;   // stored value
        i.imm = imm;
        emit(i);
    }

    void
    emitBranch(Opcode op, RegId rs1, RegId rs2, BlockId target)
    {
        Instruction i;
        i.op = op;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.targetBlock = target;
        emit(i);
        _fn.block(_cur).takenSucc(target);
    }

    Function &_fn;
    BlockId _cur;
};

} // namespace polyflow

#endif // POLYFLOW_IR_BUILDER_HH
