/**
 * @file
 * CFG cleanup transforms: unreachable-block elimination,
 * straight-line block merging and NOP removal. Behaviour-preserving
 * (verified by fuzzing in the test suite); useful for normalizing
 * builder- or assembler-produced functions before analysis.
 *
 * All transforms must run before Module::link() (they renumber
 * blocks).
 */

#ifndef POLYFLOW_IR_TRANSFORMS_HH
#define POLYFLOW_IR_TRANSFORMS_HH

#include <set>

#include "ir/module.hh"

namespace polyflow {

/**
 * Remove blocks unreachable from the entry.
 * @param pinned block ids that must survive (e.g. jump-table
 *        targets)
 * @return number of blocks removed
 */
int removeUnreachableBlocks(Function &fn,
                            const std::set<BlockId> &pinned = {});

/**
 * Merge each block ending in an unconditional jump (or plain
 * fall-through) into its unique successor when that successor has
 * no other predecessors and is not @p pinned. Runs to a fixpoint.
 * @return number of merges performed
 */
int mergeStraightLineBlocks(Function &fn,
                            const std::set<BlockId> &pinned = {});

/**
 * Delete NOP instructions (a block consisting solely of NOPs keeps
 * one so it stays non-empty).
 * @return number of NOPs removed
 */
int removeNops(Function &fn);

/**
 * Run all cleanups on every function of @p mod, protecting
 * jump-table targets. @return total number of changes.
 */
int cleanupModule(Module &mod);

} // namespace polyflow

#endif // POLYFLOW_IR_TRANSFORMS_HH
