#include "ir/transforms.hh"

#include <vector>

namespace polyflow {

namespace {

/** Remap a block id through @p map (-1 entries are dropped ids). */
BlockId
remap(const std::vector<BlockId> &map, BlockId b)
{
    return b == invalidBlock ? invalidBlock : map.at(b);
}

/** Rewrite every target in @p bb through @p map. */
void
remapBlock(BasicBlock &bb, const std::vector<BlockId> &map)
{
    for (Instruction &in : bb.instrs()) {
        if (in.targetBlock != invalidBlock)
            in.targetBlock = remap(map, in.targetBlock);
    }
    bb.takenSucc(remap(map, bb.takenSucc()));
    bb.fallSucc(remap(map, bb.fallSucc()));
    std::vector<BlockId> ind;
    for (BlockId t : bb.indirectSuccs())
        ind.push_back(remap(map, t));
    // Rebuild the indirect list in place.
    const_cast<std::vector<BlockId> &>(bb.indirectSuccs()) =
        std::move(ind);
}

/**
 * Drop the blocks whose @p keep entry is false, renumbering the
 * rest and remapping every target. All dropped blocks must be
 * untargeted by kept blocks.
 */
void
dropBlocks(Function &fn, const std::vector<bool> &keep)
{
    int n = static_cast<int>(fn.numBlocks());
    std::vector<BlockId> map(n, invalidBlock);
    BlockId next = 0;
    for (int b = 0; b < n; ++b) {
        if (keep[b])
            map[b] = next++;
    }
    std::vector<std::unique_ptr<BasicBlock>> blocks;
    for (int b = 0; b < n; ++b) {
        if (!keep[b])
            continue;
        auto nb = std::make_unique<BasicBlock>(map[b],
                                               fn.block(b).name());
        *nb = fn.block(b);  // copies instrs and succs
        nb->id(map[b]);
        remapBlock(*nb, map);
        blocks.push_back(std::move(nb));
    }
    fn.replaceBlocks(std::move(blocks));
}

} // namespace

int
removeUnreachableBlocks(Function &fn, const std::set<BlockId> &pinned)
{
    fn.resolveFallThroughs();
    // Mark reachable blocks with a simple worklist over successors.
    int n = static_cast<int>(fn.numBlocks());
    std::vector<bool> keep(n, false);
    std::vector<BlockId> work{0};
    keep[0] = true;
    while (!work.empty()) {
        BlockId b = work.back();
        work.pop_back();
        for (BlockId s : fn.block(b).successors()) {
            if (!keep[s]) {
                keep[s] = true;
                work.push_back(s);
            }
        }
    }
    for (BlockId p : pinned) {
        if (p >= 0 && p < n)
            keep[p] = true;
    }
    int removed = 0;
    for (int b = 0; b < n; ++b)
        removed += !keep[b];
    if (removed == 0)
        return 0;

    // A kept block may not fall through into a dropped one; it
    // cannot (a fall-through target is reachable whenever its
    // predecessor is), so dropping is safe.
    dropBlocks(fn, keep);
    return removed;
}

int
mergeStraightLineBlocks(Function &fn, const std::set<BlockId> &pinned)
{
    int merges = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        fn.resolveFallThroughs();
        int n = static_cast<int>(fn.numBlocks());

        // Predecessor counts.
        std::vector<int> preds(n, 0);
        for (int b = 0; b < n; ++b) {
            for (BlockId s : fn.block(b).successors())
                ++preds[s];
        }

        for (int b = 0; b < n && !changed; ++b) {
            BasicBlock &bb = fn.block(b);
            // Candidate: ends with an unconditional jump (or a bare
            // fall-through into b+1 before resolution, which
            // resolveFallThroughs leaves as fallSucc with no
            // terminator).
            BlockId t = invalidBlock;
            bool viaJump = false;
            if (bb.hasTerminator() &&
                bb.terminator().isDirectJump()) {
                t = bb.terminator().targetBlock;
                viaJump = true;
            } else if (!bb.hasTerminator() &&
                       bb.fallSucc() != invalidBlock) {
                t = bb.fallSucc();
            }
            if (t == invalidBlock || t == 0 || t == b ||
                preds[t] != 1 || pinned.count(t)) {
                continue;
            }
            const BasicBlock &tb = fn.block(t);
            // If the target ends in a conditional branch it falls
            // through to t+1; merging away from position t would
            // break that adjacency unless t == b + 1.
            bool tFallsThrough = !tb.hasTerminator() ||
                tb.terminator().isCondBranch();
            if (tFallsThrough && t != b + 1)
                continue;

            // Merge t into b.
            if (viaJump)
                bb.instrs().pop_back();
            for (const Instruction &in : tb.instrs())
                bb.append(in);
            bb.takenSucc(tb.takenSucc());
            bb.fallSucc(tb.fallSucc());
            const_cast<std::vector<BlockId> &>(bb.indirectSuccs()) =
                tb.indirectSuccs();

            std::vector<bool> keep(n, true);
            keep[t] = false;
            dropBlocks(fn, keep);
            ++merges;
            changed = true;
        }
    }
    return merges;
}

int
removeNops(Function &fn)
{
    int removed = 0;
    for (size_t b = 0; b < fn.numBlocks(); ++b) {
        auto &instrs = fn.block(BlockId(b)).instrs();
        size_t before = instrs.size();
        size_t nonNops = 0;
        for (const Instruction &in : instrs)
            nonNops += in.op != Opcode::NOP;
        if (nonNops == 0) {
            instrs.resize(1);  // keep one NOP: blocks stay non-empty
        } else if (nonNops < before) {
            std::erase_if(instrs, [](const Instruction &in) {
                return in.op == Opcode::NOP;
            });
        }
        removed += int(before - instrs.size());
    }
    return removed;
}

int
cleanupModule(Module &mod)
{
    // Jump tables store (function, block) pairs that link() resolves
    // later; renumbering a function's blocks would invalidate them,
    // so functions with jump-table targets only get NOP removal.
    std::vector<bool> hasTable(mod.numFunctions(), false);
    for (auto [f, b] : mod.jumpTableTargets()) {
        (void)b;
        hasTable[f] = true;
    }

    int changes = 0;
    for (size_t f = 0; f < mod.numFunctions(); ++f) {
        Function &fn = mod.function(FuncId(f));
        changes += removeNops(fn);
        if (hasTable[f])
            continue;
        changes += removeUnreachableBlocks(fn);
        changes += mergeStraightLineBlocks(fn);
    }
    return changes;
}

} // namespace polyflow
