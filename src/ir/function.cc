#include "ir/function.hh"

#include <stdexcept>

namespace polyflow {

BlockId
Function::createBlock(const std::string &name)
{
    BlockId id = static_cast<BlockId>(_blocks.size());
    std::string n = name.empty()
        ? _name + ".bb" + std::to_string(id) : name;
    _blocks.push_back(std::make_unique<BasicBlock>(id, n));
    return id;
}

size_t
Function::numInstrs() const
{
    size_t n = 0;
    for (const auto &b : _blocks)
        n += b->size();
    return n;
}

void
Function::replaceBlocks(std::vector<std::unique_ptr<BasicBlock>> blocks)
{
    if (blocks.empty())
        throw std::runtime_error("replaceBlocks: empty function");
    _blocks = std::move(blocks);
    for (size_t i = 0; i < _blocks.size(); ++i)
        _blocks[i]->id(static_cast<BlockId>(i));
}

void
Function::resolveFallThroughs()
{
    for (auto &bp : _blocks) {
        BasicBlock &b = *bp;
        BlockId next = b.id() + 1;
        bool have_next = next < static_cast<BlockId>(_blocks.size());
        if (!b.hasTerminator()) {
            if (!have_next) {
                throw std::runtime_error(
                    "function " + _name + ": last block " + b.name() +
                    " has no terminator");
            }
            b.fallSucc(next);
        } else if (b.terminator().isCondBranch()) {
            if (!have_next) {
                throw std::runtime_error(
                    "function " + _name + ": block " + b.name() +
                    " ends in a branch but has no fall-through block");
            }
            b.fallSucc(next);
        }
    }
}

void
Function::validate() const
{
    if (_blocks.empty())
        throw std::runtime_error("function " + _name + " has no blocks");
    for (const auto &bp : _blocks) {
        const BasicBlock &b = *bp;
        if (b.empty()) {
            throw std::runtime_error(
                "function " + _name + ": empty block " + b.name());
        }
        for (size_t i = 0; i + 1 < b.size(); ++i) {
            if (b.instrs()[i].isTerminator()) {
                throw std::runtime_error(
                    "function " + _name + ": terminator mid-block in " +
                    b.name());
            }
        }
        const Instruction &term = b.terminator();
        if (term.isCondBranch() || term.isDirectJump()) {
            if (term.targetBlock == invalidBlock ||
                term.targetBlock >=
                    static_cast<BlockId>(_blocks.size())) {
                throw std::runtime_error(
                    "function " + _name + ": bad branch target in " +
                    b.name());
            }
        }
        if (term.isIndirectJump() && b.indirectSuccs().empty()) {
            throw std::runtime_error(
                "function " + _name + ": indirect jump in " + b.name() +
                " has no declared targets");
        }
        for (BlockId s : b.successors()) {
            if (s < 0 || s >= static_cast<BlockId>(_blocks.size())) {
                throw std::runtime_error(
                    "function " + _name + ": successor out of range in " +
                    b.name());
            }
        }
    }
}

} // namespace polyflow
