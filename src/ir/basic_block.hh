/**
 * @file
 * Basic blocks: straight-line instruction sequences with explicit
 * control-flow successors.
 */

#ifndef POLYFLOW_IR_BASIC_BLOCK_HH
#define POLYFLOW_IR_BASIC_BLOCK_HH

#include <string>
#include <vector>

#include "ir/instruction.hh"
#include "ir/types.hh"

namespace polyflow {

/**
 * A basic block. Control enters only at the first instruction and
 * leaves only through the terminator (or by falling through to the
 * next block when no terminator is present).
 *
 * Successor conventions:
 *  - conditional branch: takenSucc = branch target,
 *    fallSucc = fall-through block;
 *  - direct jump: takenSucc only;
 *  - indirect jump: indirectSuccs lists the possible targets
 *    (required for static analysis of switch tables);
 *  - return / halt: no successors (edges to the virtual exit are
 *    added by the CFG view).
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId id, std::string name)
        : _id(id), _name(std::move(name))
    {}

    BlockId id() const { return _id; }
    /** Reassign the id (CFG transforms only). */
    void id(BlockId v) { _id = v; }
    const std::string &name() const { return _name; }

    const std::vector<Instruction> &instrs() const { return _instrs; }
    std::vector<Instruction> &instrs() { return _instrs; }

    bool empty() const { return _instrs.empty(); }
    size_t size() const { return _instrs.size(); }

    /** The last instruction, which defines the block's successors. */
    const Instruction &terminator() const { return _instrs.back(); }

    bool hasTerminator() const
    {
        return !_instrs.empty() && _instrs.back().isTerminator();
    }

    /** Append an instruction. */
    void append(const Instruction &instr) { _instrs.push_back(instr); }

    BlockId takenSucc() const { return _takenSucc; }
    BlockId fallSucc() const { return _fallSucc; }
    const std::vector<BlockId> &indirectSuccs() const
    {
        return _indirectSuccs;
    }

    void takenSucc(BlockId b) { _takenSucc = b; }
    void fallSucc(BlockId b) { _fallSucc = b; }
    void addIndirectSucc(BlockId b) { _indirectSuccs.push_back(b); }

    /** All successor block ids, in a deterministic order. */
    std::vector<BlockId> successors() const;

    /** First-instruction address, assigned by Module::link(). */
    Addr startAddr() const { return _startAddr; }
    void startAddr(Addr a) { _startAddr = a; }

    /** Address of the terminator (invalidAddr if none). */
    Addr termAddr() const
    {
        if (!hasTerminator())
            return invalidAddr;
        return _startAddr + (_instrs.size() - 1) * instrBytes;
    }

  private:
    BlockId _id;
    std::string _name;
    std::vector<Instruction> _instrs;
    BlockId _takenSucc = invalidBlock;
    BlockId _fallSucc = invalidBlock;
    std::vector<BlockId> _indirectSuccs;
    Addr _startAddr = invalidAddr;
};

} // namespace polyflow

#endif // POLYFLOW_IR_BASIC_BLOCK_HH
