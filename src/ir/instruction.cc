#include "ir/instruction.hh"

#include <sstream>

namespace polyflow {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIVU: return "divu";
      case Opcode::REMU: return "remu";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::ADDI: return "addi";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::LUI: return "lui";
      case Opcode::LB: return "lb";
      case Opcode::LBU: return "lbu";
      case Opcode::LH: return "lh";
      case Opcode::LHU: return "lhu";
      case Opcode::LW: return "lw";
      case Opcode::LWU: return "lwu";
      case Opcode::LD: return "ld";
      case Opcode::SB: return "sb";
      case Opcode::SH: return "sh";
      case Opcode::SW: return "sw";
      case Opcode::SD: return "sd";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::BLTZ: return "bltz";
      case Opcode::BGEZ: return "bgez";
      case Opcode::J: return "j";
      case Opcode::JAL: return "jal";
      case Opcode::JR: return "jr";
      case Opcode::JALR: return "jalr";
      case Opcode::RET: return "ret";
      case Opcode::NOP: return "nop";
      case Opcode::HALT: return "halt";
      default: return "???";
    }
}

bool
Instruction::isCondBranch() const
{
    switch (op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTZ:
      case Opcode::BGEZ:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isLoad() const
{
    switch (op) {
      case Opcode::LB:
      case Opcode::LBU:
      case Opcode::LH:
      case Opcode::LHU:
      case Opcode::LW:
      case Opcode::LWU:
      case Opcode::LD:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isStore() const
{
    switch (op) {
      case Opcode::SB:
      case Opcode::SH:
      case Opcode::SW:
      case Opcode::SD:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isTerminator() const
{
    // Calls do not terminate basic blocks (standard intraprocedural
    // CFG convention); everything else that redirects fetch does.
    return isCondBranch() || isDirectJump() || isIndirectJump() ||
        isReturn() || isHalt();
}

int
Instruction::memBytes() const
{
    switch (op) {
      case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
      case Opcode::LH: case Opcode::LHU: case Opcode::SH: return 2;
      case Opcode::LW: case Opcode::LWU: case Opcode::SW: return 4;
      case Opcode::LD: case Opcode::SD: return 8;
      default: return 0;
    }
}

bool
Instruction::loadSigned() const
{
    switch (op) {
      case Opcode::LB: case Opcode::LH: case Opcode::LW:
        return true;
      default:
        return false;
    }
}

int
Instruction::destReg() const
{
    switch (op) {
      case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SD:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTZ: case Opcode::BGEZ:
      case Opcode::J: case Opcode::JR: case Opcode::RET:
      case Opcode::NOP: case Opcode::HALT:
        return -1;
      case Opcode::JAL: case Opcode::JALR:
        return reg::ra;
      default:
        return rd == reg::zero ? -1 : rd;
    }
}

int
Instruction::srcRegs(RegId out[2]) const
{
    int n = 0;
    auto add = [&](RegId r) {
        if (r != reg::zero)
            out[n++] = r;
    };
    switch (op) {
      // Two-source register ALU ops and reg-reg branches.
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIVU: case Opcode::REMU: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE:
        add(rs1);
        add(rs2);
        break;
      // One-source ops.
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::LB: case Opcode::LBU: case Opcode::LH:
      case Opcode::LHU: case Opcode::LW: case Opcode::LWU:
      case Opcode::LD:
      case Opcode::BLTZ: case Opcode::BGEZ:
      case Opcode::JR: case Opcode::JALR:
        add(rs1);
        break;
      // Stores read both the base and the data register.
      case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SD:
        add(rs1);
        add(rs2);
        break;
      case Opcode::RET:
        add(reg::ra);
        break;
      default:
        break;
    }
    return n;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    if (isCondBranch()) {
        os << " r" << int(rs1);
        if (op != Opcode::BLTZ && op != Opcode::BGEZ)
            os << ", r" << int(rs2);
        os << ", bb" << targetBlock;
    } else if (op == Opcode::J) {
        os << " bb" << targetBlock;
    } else if (op == Opcode::JAL) {
        os << " fn" << targetFunc;
    } else if (op == Opcode::JR || op == Opcode::JALR) {
        os << " r" << int(rs1);
    } else if (isLoad()) {
        os << " r" << int(rd) << ", " << imm << "(r" << int(rs1) << ")";
    } else if (isStore()) {
        os << " r" << int(rs2) << ", " << imm << "(r" << int(rs1) << ")";
    } else if (op == Opcode::LUI) {
        os << " r" << int(rd) << ", " << imm;
    } else if (destReg() >= 0) {
        os << " r" << int(rd) << ", r" << int(rs1);
        switch (op) {
          case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
          case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
          case Opcode::SRAI: case Opcode::SLTI:
            os << ", " << imm;
            break;
          default:
            os << ", r" << int(rs2);
            break;
        }
    }
    return os.str();
}

} // namespace polyflow
