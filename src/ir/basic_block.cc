#include "ir/basic_block.hh"

namespace polyflow {

std::vector<BlockId>
BasicBlock::successors() const
{
    std::vector<BlockId> out;
    if (_takenSucc != invalidBlock)
        out.push_back(_takenSucc);
    if (_fallSucc != invalidBlock && _fallSucc != _takenSucc)
        out.push_back(_fallSucc);
    for (BlockId b : _indirectSuccs) {
        bool dup = false;
        for (BlockId o : out)
            dup = dup || (o == b);
        if (!dup)
            out.push_back(b);
    }
    return out;
}

} // namespace polyflow
