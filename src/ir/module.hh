/**
 * @file
 * Modules: whole programs (functions + data segment) and the linker
 * that produces a flat executable image.
 */

#ifndef POLYFLOW_IR_MODULE_HH
#define POLYFLOW_IR_MODULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hh"
#include "ir/types.hh"

namespace polyflow {

/** An instruction in a linked image, with all targets resolved. */
struct LinkedInstr
{
    Instruction instr;
    Addr addr = invalidAddr;
    /** Resolved target of a branch / jump / call (invalidAddr if none
     *  or indirect). */
    Addr targetAddr = invalidAddr;
    FuncId func = invalidFunc;
    BlockId block = invalidBlock;
    /** True for the first instruction of a basic block. */
    bool blockStart = false;
};

/** An initialized byte range in the data segment. */
struct DataInit
{
    Addr addr;
    std::vector<std::uint8_t> bytes;
};

/**
 * A fully linked program: a flat instruction image plus initialized
 * data. This is what the functional and timing simulators consume.
 */
class LinkedProgram
{
  public:
    const std::vector<LinkedInstr> &image() const { return _image; }
    const LinkedInstr &at(ImageIdx i) const { return _image.at(i); }
    size_t size() const { return _image.size(); }

    Addr entryAddr() const { return _entryAddr; }

    /** Image index of the instruction at @p addr, or fail. */
    ImageIdx idxOf(Addr addr) const;
    bool hasAddr(Addr addr) const
    {
        return _addrToIdx.find(addr) != _addrToIdx.end();
    }

    const std::vector<DataInit> &dataInits() const { return _dataInits; }

    /** Flat address of a block's first instruction. */
    Addr blockAddr(FuncId f, BlockId b) const;

    /** Lowest / one-past-highest code addresses. */
    Addr codeBegin() const { return _codeBegin; }
    Addr codeEnd() const { return _codeEnd; }

    friend class Module;

  private:
    std::vector<LinkedInstr> _image;
    std::unordered_map<Addr, ImageIdx> _addrToIdx;
    std::unordered_map<std::uint64_t, Addr> _blockAddrs;
    std::vector<DataInit> _dataInits;
    Addr _entryAddr = invalidAddr;
    Addr _codeBegin = 0;
    Addr _codeEnd = 0;
};

/**
 * A module is a whole program under construction: functions, a data
 * segment, and link-time jump tables. Call link() once construction
 * is complete to obtain the executable image.
 */
class Module
{
  public:
    explicit Module(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /** @name Code @{ */
    Function &createFunction(const std::string &name);
    Function &function(FuncId id) { return *_funcs.at(id); }
    const Function &function(FuncId id) const { return *_funcs.at(id); }
    FuncId findFunction(const std::string &name) const;
    size_t numFunctions() const { return _funcs.size(); }
    /** Entry function (default: function 0). */
    void entryFunction(FuncId f) { _entryFunc = f; }
    FuncId entryFunction() const { return _entryFunc; }
    /** @} */

    /** @name Data segment @{ */
    /** Reserve @p size bytes (8-aligned); returns the address. */
    Addr allocData(const std::string &name, size_t size);
    /** Address of a named data object. */
    Addr dataAddr(const std::string &name) const;
    /** Initialize bytes starting at @p addr. */
    void setData(Addr addr, std::vector<std::uint8_t> bytes);
    /** Initialize one 64-bit little-endian word at @p addr. */
    void setData64(Addr addr, std::uint64_t value);
    /**
     * Reserve a jump table of code addresses; each entry is resolved
     * to the flat address of (func, block) at link time.
     */
    Addr allocJumpTable(const std::string &name,
                        std::vector<std::pair<FuncId, BlockId>> entries);
    /** All (function, block) pairs referenced by jump tables. */
    std::vector<std::pair<FuncId, BlockId>> jumpTableTargets() const;
    /** @} */

    Addr codeBase() const { return _codeBase; }
    void codeBase(Addr a) { _codeBase = a; }
    Addr dataBase() const { return _dataBase; }

    /**
     * Lay out code, resolve symbolic targets and jump tables, and
     * produce the executable image. Validates every function.
     */
    LinkedProgram link();

  private:
    struct JumpTable
    {
        Addr addr;
        std::vector<std::pair<FuncId, BlockId>> entries;
    };

    std::string _name;
    std::vector<std::unique_ptr<Function>> _funcs;
    FuncId _entryFunc = 0;
    Addr _codeBase = 0x1000;
    Addr _dataBase = 0x10000000;
    Addr _dataTop = 0x10000000;
    std::unordered_map<std::string, Addr> _dataNames;
    std::vector<DataInit> _dataInits;
    std::vector<JumpTable> _jumpTables;
};

} // namespace polyflow

#endif // POLYFLOW_IR_MODULE_HH
