/**
 * @file
 * Pretty-printing / disassembly of functions, modules and linked
 * programs.
 */

#ifndef POLYFLOW_IR_PRINTER_HH
#define POLYFLOW_IR_PRINTER_HH

#include <iosfwd>
#include <string>

#include "ir/module.hh"

namespace polyflow {

/** Print @p fn block by block (symbolic targets). */
void printFunction(std::ostream &os, const Function &fn);

/** Print every function of @p mod. */
void printModule(std::ostream &os, const Module &mod);

/**
 * Disassemble a linked program: address, block markers and resolved
 * targets, in layout order.
 */
void disassemble(std::ostream &os, const LinkedProgram &prog);

/** Convenience: disassembly as a string. */
std::string disassemble(const LinkedProgram &prog);

} // namespace polyflow

#endif // POLYFLOW_IR_PRINTER_HH
