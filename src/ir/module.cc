#include "ir/module.hh"

#include <stdexcept>

namespace polyflow {

namespace {

std::uint64_t
blockKey(FuncId f, BlockId b)
{
    return (std::uint64_t(std::uint32_t(f)) << 32) | std::uint32_t(b);
}

} // namespace

ImageIdx
LinkedProgram::idxOf(Addr addr) const
{
    auto it = _addrToIdx.find(addr);
    if (it == _addrToIdx.end()) {
        throw std::runtime_error(
            "no instruction at address " + std::to_string(addr));
    }
    return it->second;
}

Addr
LinkedProgram::blockAddr(FuncId f, BlockId b) const
{
    auto it = _blockAddrs.find(blockKey(f, b));
    if (it == _blockAddrs.end())
        throw std::runtime_error("unknown block in blockAddr");
    return it->second;
}

Function &
Module::createFunction(const std::string &name)
{
    FuncId id = static_cast<FuncId>(_funcs.size());
    _funcs.push_back(std::make_unique<Function>(id, name));
    return *_funcs.back();
}

FuncId
Module::findFunction(const std::string &name) const
{
    for (const auto &f : _funcs) {
        if (f->name() == name)
            return f->id();
    }
    return invalidFunc;
}

Addr
Module::allocData(const std::string &name, size_t size)
{
    Addr addr = (_dataTop + 7) & ~Addr(7);
    _dataTop = addr + size;
    if (!name.empty()) {
        if (_dataNames.count(name))
            throw std::runtime_error("duplicate data name " + name);
        _dataNames[name] = addr;
    }
    return addr;
}

Addr
Module::dataAddr(const std::string &name) const
{
    auto it = _dataNames.find(name);
    if (it == _dataNames.end())
        throw std::runtime_error("unknown data name " + name);
    return it->second;
}

void
Module::setData(Addr addr, std::vector<std::uint8_t> bytes)
{
    _dataInits.push_back({addr, std::move(bytes)});
}

void
Module::setData64(Addr addr, std::uint64_t value)
{
    std::vector<std::uint8_t> b(8);
    for (int i = 0; i < 8; ++i)
        b[i] = (value >> (8 * i)) & 0xff;
    setData(addr, std::move(b));
}

Addr
Module::allocJumpTable(const std::string &name,
                       std::vector<std::pair<FuncId, BlockId>> entries)
{
    Addr addr = allocData(name, entries.size() * 8);
    _jumpTables.push_back({addr, std::move(entries)});
    return addr;
}

std::vector<std::pair<FuncId, BlockId>>
Module::jumpTableTargets() const
{
    std::vector<std::pair<FuncId, BlockId>> out;
    for (const JumpTable &jt : _jumpTables) {
        for (auto e : jt.entries)
            out.push_back(e);
    }
    return out;
}

LinkedProgram
Module::link()
{
    if (_funcs.empty())
        throw std::runtime_error("module has no functions");

    LinkedProgram prog;

    // Pass 1: assign addresses.
    Addr pc = _codeBase;
    for (auto &fp : _funcs) {
        Function &fn = *fp;
        fn.resolveFallThroughs();
        fn.validate();
        fn.startAddr(pc);
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock &bb = fn.block(static_cast<BlockId>(b));
            bb.startAddr(pc);
            prog._blockAddrs[blockKey(fn.id(),
                                      static_cast<BlockId>(b))] = pc;
            pc += bb.size() * instrBytes;
        }
        pc += fn.padding();
    }
    prog._codeBegin = _codeBase;
    prog._codeEnd = pc;

    // Pass 2: emit linked instructions with resolved targets.
    for (auto &fp : _funcs) {
        Function &fn = *fp;
        for (size_t b = 0; b < fn.numBlocks(); ++b) {
            BasicBlock &bb = fn.block(static_cast<BlockId>(b));
            Addr iaddr = bb.startAddr();
            for (size_t i = 0; i < bb.size(); ++i) {
                const Instruction &ins = bb.instrs()[i];
                LinkedInstr li;
                li.instr = ins;
                li.addr = iaddr;
                li.func = fn.id();
                li.block = bb.id();
                li.blockStart = (i == 0);
                if (ins.isCondBranch() || ins.isDirectJump()) {
                    li.targetAddr =
                        fn.block(ins.targetBlock).startAddr();
                } else if (ins.op == Opcode::JAL) {
                    if (ins.targetFunc == invalidFunc ||
                        ins.targetFunc >=
                            static_cast<FuncId>(_funcs.size())) {
                        throw std::runtime_error(
                            "bad call target in " + fn.name());
                    }
                    li.targetAddr = _funcs[ins.targetFunc]->startAddr();
                }
                prog._addrToIdx[iaddr] =
                    static_cast<ImageIdx>(prog._image.size());
                prog._image.push_back(li);
                iaddr += instrBytes;
            }
        }
    }

    // Pass 3: resolve jump tables into the data image.
    for (const JumpTable &jt : _jumpTables) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(jt.entries.size() * 8);
        for (auto [f, b] : jt.entries) {
            Addr a = _funcs.at(f)->block(b).startAddr();
            for (int i = 0; i < 8; ++i)
                bytes.push_back((a >> (8 * i)) & 0xff);
        }
        prog._dataInits.push_back({jt.addr, std::move(bytes)});
    }
    for (const DataInit &di : _dataInits)
        prog._dataInits.push_back(di);

    prog._entryAddr = _funcs.at(_entryFunc)->startAddr();
    return prog;
}

} // namespace polyflow
