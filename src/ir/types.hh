/**
 * @file
 * Fundamental scalar types shared by every PolyFlow module.
 */

#ifndef POLYFLOW_IR_TYPES_HH
#define POLYFLOW_IR_TYPES_HH

#include <cstdint>
#include <limits>

namespace polyflow {

/** A flat byte address in the simulated machine (code or data). */
using Addr = std::uint64_t;

/** An architectural register identifier (0..numArchRegs-1). */
using RegId = std::uint8_t;

/** Index of a basic block within its function. */
using BlockId = std::int32_t;

/** Index of a function within its module. */
using FuncId = std::int32_t;

/** Index of an instruction in a linked (flat) program image. */
using ImageIdx = std::uint32_t;

/** Index of a record in a dynamic (committed) instruction trace. */
using TraceIdx = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = -1;

/** Sentinel for "no function". */
constexpr FuncId invalidFunc = -1;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no trace index". */
constexpr TraceIdx invalidTrace = std::numeric_limits<TraceIdx>::max();

/** Number of architectural integer registers. Register 0 reads as zero. */
constexpr int numArchRegs = 32;

/** Size in bytes of every encoded instruction. */
constexpr Addr instrBytes = 4;

/** Conventional register assignments (RISC-style ABI). */
namespace reg {
constexpr RegId zero = 0;  //!< hardwired zero
constexpr RegId ra = 1;    //!< return address
constexpr RegId sp = 2;    //!< stack pointer
constexpr RegId gp = 3;    //!< global (data segment) pointer
constexpr RegId a0 = 4;    //!< first argument / return value
constexpr RegId a1 = 5;
constexpr RegId a2 = 6;
constexpr RegId a3 = 7;
constexpr RegId t0 = 8;    //!< temporaries t0..t7 = r8..r15
constexpr RegId t1 = 9;
constexpr RegId t2 = 10;
constexpr RegId t3 = 11;
constexpr RegId t4 = 12;
constexpr RegId t5 = 13;
constexpr RegId t6 = 14;
constexpr RegId t7 = 15;
constexpr RegId s0 = 16;   //!< saved s0..s7 = r16..r23
constexpr RegId s1 = 17;
constexpr RegId s2 = 18;
constexpr RegId s3 = 19;
constexpr RegId s4 = 20;
constexpr RegId s5 = 21;
constexpr RegId s6 = 22;
constexpr RegId s7 = 23;
constexpr RegId t8 = 24;   //!< more temporaries r24..r31
constexpr RegId t9 = 25;
constexpr RegId t10 = 26;
constexpr RegId t11 = 27;
} // namespace reg

} // namespace polyflow

#endif // POLYFLOW_IR_TYPES_HH
