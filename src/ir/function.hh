/**
 * @file
 * Functions: named collections of basic blocks with a single entry.
 */

#ifndef POLYFLOW_IR_FUNCTION_HH
#define POLYFLOW_IR_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hh"
#include "ir/types.hh"

namespace polyflow {

/**
 * A function. Block 0 is always the entry block. Blocks are laid out
 * in id order at link time, so a block without a terminator falls
 * through to block id+1.
 */
class Function
{
  public:
    Function(FuncId id, std::string name)
        : _id(id), _name(std::move(name))
    {}

    FuncId id() const { return _id; }
    const std::string &name() const { return _name; }

    /** Create a new basic block and return its id. */
    BlockId createBlock(const std::string &name = "");

    BasicBlock &block(BlockId id) { return *_blocks.at(id); }
    const BasicBlock &block(BlockId id) const { return *_blocks.at(id); }

    size_t numBlocks() const { return _blocks.size(); }

    BlockId entry() const { return 0; }

    /** Total instruction count across all blocks. */
    size_t numInstrs() const;

    /**
     * Finalize fall-through edges: any block whose terminator is a
     * conditional branch (or that has no terminator) falls through to
     * the next block by id. Called by Module::link(); idempotent.
     */
    void resolveFallThroughs();

    /** Sanity-check structural invariants; throws on violation. */
    void validate() const;

    /**
     * Replace the whole block list (CFG transforms only). Ids are
     * reassigned to match positions; the caller must already have
     * remapped every target.
     */
    void replaceBlocks(
        std::vector<std::unique_ptr<BasicBlock>> blocks);

    Addr startAddr() const { return _startAddr; }
    void startAddr(Addr a) { _startAddr = a; }

    /** Padding inserted after the function at link time (bytes). */
    Addr padding() const { return _padding; }
    void padding(Addr p) { _padding = p; }

  private:
    FuncId _id;
    std::string _name;
    std::vector<std::unique_ptr<BasicBlock>> _blocks;
    Addr _startAddr = invalidAddr;
    Addr _padding = 0;
};

} // namespace polyflow

#endif // POLYFLOW_IR_FUNCTION_HH
