/**
 * @file
 * The persistent, content-addressed artifact store.
 *
 * Every bench and sweep regenerates the same committed traces, spawn
 * analyses and hint tables from immutable inputs. This store makes
 * those artifacts persistent across processes: each is serialized
 * into a versioned binary container under a cache directory
 * ($PF_CACHE_DIR, default ".pf-cache"), keyed by a content hash of
 * everything that determines the artifact —
 *
 *     (artifact kind, workload name, scale,
 *      linked-program content hash, format version
 *      [, policy kind mask for hint tables])
 *
 * — so a workload edit, a scale change or a format bump simply
 * misses and rebuilds; stale entries are never served.
 *
 * Container layout (little-endian):
 *
 *     magic "PFARTFCT" | u32 formatVersion | u32 kind
 *     u64 keyHash | u64 payloadBytes | u64 payloadHash (FNV-1a)
 *     u16 keyLen | key string | payload
 *
 * Loads validate all of it — magic, version, kind, full key string,
 * payload length and checksum — and report any mismatch as a plain
 * miss, so corrupt, truncated or version-skewed files fall back to a
 * rebuild, never a crash or a wrong result. Saves are atomic
 * (unique temp file + rename), so concurrent writers of the same key
 * race benignly: readers see either nothing or one complete entry.
 *
 * The store is a cache, not a database: every save is best-effort
 * (I/O failures are swallowed and counted), and deleting the cache
 * directory is always safe.
 */

#ifndef POLYFLOW_STORE_ARTIFACT_STORE_HH
#define POLYFLOW_STORE_ARTIFACT_STORE_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/module.hh"
#include "isa/trace.hh"
#include "spawn/spawn_point.hh"

namespace polyflow::store {

/** Bumped whenever any container or payload layout changes. */
constexpr std::uint32_t formatVersion = 1;

/** What a store entry holds. */
enum class ArtifactKind : std::uint32_t {
    Trace = 1,     //!< committed dynamic trace (isa/trace_io.hh)
    Analysis = 2,  //!< SpawnAnalysis points (spawn/spawn_io.hh)
    Hints = 3,     //!< HintTable points for one policy kind mask
};

const char *artifactKindName(ArtifactKind k);

/** One store entry as seen by the pf_cache CLI. */
struct EntryInfo
{
    std::filesystem::path path;
    std::uintmax_t fileBytes = 0;
    /** Parsed from the container header; meaningful iff valid. */
    ArtifactKind kind = ArtifactKind::Trace;
    std::string key;
    /** Full validation (header + checksum) passed. */
    bool valid = false;
    /** Human-readable reason when !valid. */
    std::string error;
};

/**
 * Content hash of a linked program: instruction image (operations,
 * registers, immediates, resolved targets, layout), entry point and
 * initialized data. Two programs with equal hashes execute
 * identically under the functional simulator, so trace/analysis
 * artifacts keyed on it can never be served to a workload whose
 * definition changed.
 */
std::uint64_t programContentHash(const LinkedProgram &prog);

class ArtifactStore
{
  public:
    /** Open (and lazily create) a store rooted at @p root. */
    explicit ArtifactStore(std::filesystem::path root);

    /**
     * Open the store named by the environment: $PF_CACHE_DIR, or
     * ".pf-cache" (relative to the working directory) when unset.
     * Returns nullptr — caching disabled — when PF_CACHE_DIR is
     * "off", "none" or "0".
     */
    static std::shared_ptr<ArtifactStore> openFromEnv();

    static const char *defaultDir() { return ".pf-cache"; }

    const std::filesystem::path &root() const { return _root; }

    /** @name Typed load/save (the SweepCache read-through tier) @{ */
    /**
     * Load the committed trace for (@p name, @p scale, @p prog).
     * The decoded trace is bound to @p prog. nullopt on miss or on
     * any validation failure.
     */
    std::optional<Trace> loadTrace(const std::string &name,
                                   double scale,
                                   const LinkedProgram &prog) const;
    bool saveTrace(const std::string &name, double scale,
                   const LinkedProgram &prog, const Trace &trace);

    /** SpawnAnalysis points, in original analysis order. */
    std::optional<std::vector<SpawnPoint>>
    loadAnalysisPoints(const std::string &name, double scale,
                       const LinkedProgram &prog) const;
    bool saveAnalysisPoints(const std::string &name, double scale,
                            const LinkedProgram &prog,
                            const std::vector<SpawnPoint> &points);

    /** HintTable points for one policy kind mask. */
    std::optional<std::vector<SpawnPoint>>
    loadHintPoints(const std::string &name, double scale,
                   const LinkedProgram &prog,
                   unsigned kindMask) const;
    bool saveHintPoints(const std::string &name, double scale,
                        const LinkedProgram &prog, unsigned kindMask,
                        const std::vector<SpawnPoint> &points);
    /** @} */

    /** @name Maintenance (tools/pf_cache) @{ */
    /** Every *.pfa entry under the root, sorted by filename. */
    std::vector<EntryInfo> entries() const;

    /** Delete entries that fail validation; returns count. */
    int removeInvalid();

    /**
     * Delete oldest entries (by last write time) until the store
     * totals at most @p maxBytes; returns count removed.
     */
    int trimToBytes(std::uintmax_t maxBytes);

    /** Delete every entry; returns count. */
    int clear();
    /** @} */

    /** @name Hit/miss accounting for reporting and tests @{ */
    int hits() const { return _hits.load(); }
    int misses() const { return _misses.load(); }
    int saveFailures() const { return _saveFailures.load(); }
    /** @} */

  private:
    std::string keyString(ArtifactKind kind, const std::string &name,
                          double scale, const LinkedProgram &prog,
                          unsigned kindMask) const;
    std::filesystem::path pathFor(ArtifactKind kind,
                                  const std::string &key) const;

    /** Validated payload of the entry for @p key, or nullopt. */
    std::optional<std::string> loadPayload(ArtifactKind kind,
                                           const std::string &key) const;
    bool savePayload(ArtifactKind kind, const std::string &key,
                     const std::string &payload);

    std::filesystem::path _root;
    mutable std::atomic<int> _hits{0};
    mutable std::atomic<int> _misses{0};
    std::atomic<int> _saveFailures{0};
};

} // namespace polyflow::store

#endif // POLYFLOW_STORE_ARTIFACT_STORE_HH
