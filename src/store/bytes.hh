/**
 * @file
 * Little-endian byte-stream helpers and the FNV-1a hash used by the
 * persistent artifact store. Header-only so the serialization code
 * in src/isa and src/spawn can use it without linking pf_store.
 *
 * Every multi-byte value is written least-significant byte first,
 * regardless of host endianness, so cache files are portable and the
 * checksums are stable across machines.
 */

#ifndef POLYFLOW_STORE_BYTES_HH
#define POLYFLOW_STORE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace polyflow::store {

/** @name Append little-endian scalars to a byte buffer @{ */
inline void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

inline void
putU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putI64(std::string &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

inline void
putI32(std::string &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}
/** @} */

/**
 * Bounds-checked little-endian reader over a byte buffer. Every
 * accessor returns false once the buffer is exhausted; ok() stays
 * false from the first failed read, so a decode loop can check once
 * at the end.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : _data(data) {}

    bool
    u8(std::uint8_t &v)
    {
        if (!need(1))
            return false;
        v = static_cast<std::uint8_t>(_data[_pos++]);
        return true;
    }

    bool
    u16(std::uint16_t &v)
    {
        if (!need(2))
            return false;
        v = static_cast<std::uint16_t>(
            static_cast<std::uint8_t>(_data[_pos]) |
            (static_cast<std::uint8_t>(_data[_pos + 1]) << 8));
        _pos += 2;
        return true;
    }

    bool
    u32(std::uint32_t &v)
    {
        if (!need(4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(
                     static_cast<std::uint8_t>(_data[_pos + i]))
                << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (!need(8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(
                     static_cast<std::uint8_t>(_data[_pos + i]))
                << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    i64(std::int64_t &v)
    {
        std::uint64_t u;
        if (!u64(u))
            return false;
        std::memcpy(&v, &u, sizeof(v));
        return true;
    }

    bool
    i32(std::int32_t &v)
    {
        std::uint32_t u;
        if (!u32(u))
            return false;
        std::memcpy(&v, &u, sizeof(v));
        return true;
    }

    bool
    bytes(std::string &out, size_t n)
    {
        if (!need(n))
            return false;
        out.assign(_data.substr(_pos, n));
        _pos += n;
        return true;
    }

    size_t remaining() const { return _data.size() - _pos; }
    bool atEnd() const { return ok() && _pos == _data.size(); }
    bool ok() const { return !_failed; }

  private:
    bool
    need(size_t n)
    {
        if (_failed || _data.size() - _pos < n) {
            _failed = true;
            return false;
        }
        return true;
    }

    std::string_view _data;
    size_t _pos = 0;
    bool _failed = false;
};

/** FNV-1a 64-bit over a byte range, chainable via @p seed. */
constexpr std::uint64_t fnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

inline std::uint64_t
fnv1a(std::string_view data, std::uint64_t seed = fnvOffsetBasis)
{
    std::uint64_t h = seed;
    for (char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= fnvPrime;
    }
    return h;
}

/** Hash one little-endian encoded u64 into a running FNV state. */
inline std::uint64_t
fnv1aU64(std::uint64_t v, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
    return h;
}

} // namespace polyflow::store

#endif // POLYFLOW_STORE_BYTES_HH
