#include "store/artifact_store.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "isa/trace_io.hh"
#include "spawn/spawn_io.hh"
#include "store/bytes.hh"

namespace polyflow::store {

namespace fs = std::filesystem;

namespace {

constexpr char magic[8] = {'P', 'F', 'A', 'R', 'T', 'F', 'C', 'T'};

/** Exact round-trip formatting of a scale, matching the in-memory
 *  SweepCache key so the two tiers agree on identity. */
std::string
scaleText(double scale)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale);
    return buf;
}

std::string
hexU64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Whole file as bytes, or nullopt on any I/O error. */
std::optional<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return data;
}

/** Parse + fully validate one container file. On success @p key,
 *  @p kind and @p payload are set. Returns an error string, empty
 *  on success. */
std::string
parseContainer(const std::string &data, ArtifactKind &kind,
               std::string &key, std::string &payload)
{
    ByteReader r(data);
    std::string m;
    if (!r.bytes(m, sizeof(magic)) ||
        std::memcmp(m.data(), magic, sizeof(magic)) != 0)
        return "bad magic";
    std::uint32_t version = 0, rawKind = 0;
    std::uint64_t keyHash = 0, payloadBytes = 0, payloadHash = 0;
    std::uint16_t keyLen = 0;
    if (!r.u32(version) || !r.u32(rawKind) || !r.u64(keyHash) ||
        !r.u64(payloadBytes) || !r.u64(payloadHash) || !r.u16(keyLen))
        return "truncated header";
    if (version != formatVersion)
        return "format version " + std::to_string(version) +
            " (want " + std::to_string(formatVersion) + ")";
    if (rawKind < std::uint32_t(ArtifactKind::Trace) ||
        rawKind > std::uint32_t(ArtifactKind::Hints))
        return "unknown artifact kind";
    if (!r.bytes(key, keyLen))
        return "truncated key";
    if (fnv1a(key) != keyHash)
        return "key hash mismatch";
    if (r.remaining() != payloadBytes)
        return "payload length mismatch";
    if (!r.bytes(payload, static_cast<size_t>(payloadBytes)))
        return "truncated payload";
    if (fnv1a(payload) != payloadHash)
        return "payload checksum mismatch";
    kind = static_cast<ArtifactKind>(rawKind);
    return "";
}

} // namespace

const char *
artifactKindName(ArtifactKind k)
{
    switch (k) {
      case ArtifactKind::Trace: return "trace";
      case ArtifactKind::Analysis: return "analysis";
      case ArtifactKind::Hints: return "hints";
    }
    return "?";
}

std::uint64_t
programContentHash(const LinkedProgram &prog)
{
    std::uint64_t h = fnvOffsetBasis;
    h = fnv1aU64(prog.size(), h);
    h = fnv1aU64(prog.entryAddr(), h);
    h = fnv1aU64(prog.codeBegin(), h);
    h = fnv1aU64(prog.codeEnd(), h);
    for (const LinkedInstr &li : prog.image()) {
        const Instruction &in = li.instr;
        h = fnv1aU64(static_cast<std::uint64_t>(in.op), h);
        h = fnv1aU64(in.rd, h);
        h = fnv1aU64(in.rs1, h);
        h = fnv1aU64(in.rs2, h);
        h = fnv1aU64(static_cast<std::uint64_t>(in.imm), h);
        h = fnv1aU64(li.addr, h);
        h = fnv1aU64(li.targetAddr, h);
        h = fnv1aU64(static_cast<std::uint64_t>(li.func), h);
        h = fnv1aU64(static_cast<std::uint64_t>(li.block), h);
        h = fnv1aU64(li.blockStart ? 1 : 0, h);
    }
    for (const DataInit &d : prog.dataInits()) {
        h = fnv1aU64(d.addr, h);
        h = fnv1aU64(d.bytes.size(), h);
        h = fnv1a(std::string_view(
                      reinterpret_cast<const char *>(d.bytes.data()),
                      d.bytes.size()),
                  h);
    }
    return h;
}

ArtifactStore::ArtifactStore(fs::path root) : _root(std::move(root))
{
    std::error_code ec;
    fs::create_directories(_root, ec);
    // A failure here just means every save fails later; loads on a
    // missing directory are plain misses.
}

std::shared_ptr<ArtifactStore>
ArtifactStore::openFromEnv()
{
    const char *dir = std::getenv("PF_CACHE_DIR");
    if (dir) {
        std::string d(dir);
        if (d == "off" || d == "none" || d == "0")
            return nullptr;
        if (!d.empty())
            return std::make_shared<ArtifactStore>(fs::path(d));
    }
    return std::make_shared<ArtifactStore>(fs::path(defaultDir()));
}

std::string
ArtifactStore::keyString(ArtifactKind kind, const std::string &name,
                         double scale, const LinkedProgram &prog,
                         unsigned kindMask) const
{
    std::string key = artifactKindName(kind);
    key += '|';
    key += name;
    key += '@';
    key += scaleText(scale);
    key += '|';
    key += hexU64(programContentHash(prog));
    key += "|v";
    key += std::to_string(formatVersion);
    if (kind == ArtifactKind::Hints) {
        key += "|m";
        key += std::to_string(kindMask);
    }
    return key;
}

fs::path
ArtifactStore::pathFor(ArtifactKind kind,
                       const std::string &key) const
{
    return _root / (std::string(artifactKindName(kind)) + "-" +
                    hexU64(fnv1a(key)) + ".pfa");
}

std::optional<std::string>
ArtifactStore::loadPayload(ArtifactKind kind,
                           const std::string &key) const
{
    auto data = readFile(pathFor(kind, key));
    if (!data) {
        ++_misses;
        return std::nullopt;
    }
    ArtifactKind gotKind;
    std::string gotKey, payload;
    std::string err = parseContainer(*data, gotKind, gotKey, payload);
    if (!err.empty() || gotKind != kind || gotKey != key) {
        ++_misses;
        return std::nullopt;
    }
    ++_hits;
    return payload;
}

bool
ArtifactStore::savePayload(ArtifactKind kind, const std::string &key,
                           const std::string &payload)
{
    std::string file;
    file.reserve(64 + key.size() + payload.size());
    file.append(magic, sizeof(magic));
    putU32(file, formatVersion);
    putU32(file, static_cast<std::uint32_t>(kind));
    putU64(file, fnv1a(key));
    putU64(file, payload.size());
    putU64(file, fnv1a(payload));
    putU16(file, static_cast<std::uint16_t>(key.size()));
    file += key;
    file += payload;

    static std::atomic<unsigned> tmpCounter{0};
    fs::path dest = pathFor(kind, key);
    fs::path tmp = dest;
    tmp += ".tmp-" + std::to_string(::getpid()) + "-" +
        std::to_string(tmpCounter.fetch_add(1));

    std::error_code ec;
    fs::create_directories(_root, ec);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !out.write(file.data(),
                               static_cast<std::streamsize>(
                                   file.size()))) {
            ++_saveFailures;
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, dest, ec);
    if (ec) {
        ++_saveFailures;
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<Trace>
ArtifactStore::loadTrace(const std::string &name, double scale,
                         const LinkedProgram &prog) const
{
    auto payload = loadPayload(
        ArtifactKind::Trace,
        keyString(ArtifactKind::Trace, name, scale, prog, 0));
    if (!payload)
        return std::nullopt;
    Trace t;
    if (!decodeTrace(*payload, prog, t))
        return std::nullopt;
    return t;
}

bool
ArtifactStore::saveTrace(const std::string &name, double scale,
                         const LinkedProgram &prog,
                         const Trace &trace)
{
    std::string payload;
    encodeTrace(trace, payload);
    return savePayload(
        ArtifactKind::Trace,
        keyString(ArtifactKind::Trace, name, scale, prog, 0),
        payload);
}

std::optional<std::vector<SpawnPoint>>
ArtifactStore::loadAnalysisPoints(const std::string &name,
                                  double scale,
                                  const LinkedProgram &prog) const
{
    auto payload = loadPayload(
        ArtifactKind::Analysis,
        keyString(ArtifactKind::Analysis, name, scale, prog, 0));
    if (!payload)
        return std::nullopt;
    std::vector<SpawnPoint> points;
    if (!decodeSpawnPoints(*payload, points))
        return std::nullopt;
    return points;
}

bool
ArtifactStore::saveAnalysisPoints(
    const std::string &name, double scale, const LinkedProgram &prog,
    const std::vector<SpawnPoint> &points)
{
    std::string payload;
    encodeSpawnPoints(points, payload);
    return savePayload(
        ArtifactKind::Analysis,
        keyString(ArtifactKind::Analysis, name, scale, prog, 0),
        payload);
}

std::optional<std::vector<SpawnPoint>>
ArtifactStore::loadHintPoints(const std::string &name, double scale,
                              const LinkedProgram &prog,
                              unsigned kindMask) const
{
    auto payload = loadPayload(
        ArtifactKind::Hints,
        keyString(ArtifactKind::Hints, name, scale, prog, kindMask));
    if (!payload)
        return std::nullopt;
    std::vector<SpawnPoint> points;
    if (!decodeSpawnPoints(*payload, points))
        return std::nullopt;
    return points;
}

bool
ArtifactStore::saveHintPoints(const std::string &name, double scale,
                              const LinkedProgram &prog,
                              unsigned kindMask,
                              const std::vector<SpawnPoint> &points)
{
    std::string payload;
    encodeSpawnPoints(points, payload);
    return savePayload(
        ArtifactKind::Hints,
        keyString(ArtifactKind::Hints, name, scale, prog, kindMask),
        payload);
}

std::vector<EntryInfo>
ArtifactStore::entries() const
{
    std::vector<EntryInfo> out;
    std::error_code ec;
    fs::directory_iterator it(_root, ec);
    if (ec)
        return out;
    for (const auto &de : it) {
        if (!de.is_regular_file(ec) ||
            de.path().extension() != ".pfa")
            continue;
        EntryInfo info;
        info.path = de.path();
        info.fileBytes = de.file_size(ec);
        auto data = readFile(de.path());
        if (!data) {
            info.error = "unreadable";
        } else {
            std::string payload;
            info.error = parseContainer(*data, info.kind, info.key,
                                        payload);
            info.valid = info.error.empty();
        }
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.path.filename() < b.path.filename();
              });
    return out;
}

int
ArtifactStore::removeInvalid()
{
    int removed = 0;
    std::error_code ec;
    for (const EntryInfo &e : entries()) {
        if (e.valid)
            continue;
        if (fs::remove(e.path, ec) && !ec)
            ++removed;
    }
    return removed;
}

int
ArtifactStore::trimToBytes(std::uintmax_t maxBytes)
{
    struct Aged
    {
        fs::path path;
        std::uintmax_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Aged> aged;
    std::uintmax_t total = 0;
    std::error_code ec;
    for (const EntryInfo &e : entries()) {
        Aged a{e.path, e.fileBytes, fs::last_write_time(e.path, ec)};
        total += a.bytes;
        aged.push_back(std::move(a));
    }
    std::sort(aged.begin(), aged.end(),
              [](const Aged &a, const Aged &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    int removed = 0;
    for (const Aged &a : aged) {
        if (total <= maxBytes)
            break;
        if (fs::remove(a.path, ec) && !ec) {
            total -= a.bytes;
            ++removed;
        }
    }
    return removed;
}

int
ArtifactStore::clear()
{
    int removed = 0;
    std::error_code ec;
    for (const EntryInfo &e : entries()) {
        if (fs::remove(e.path, ec) && !ec)
            ++removed;
    }
    return removed;
}

} // namespace polyflow::store
