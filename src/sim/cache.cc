#include "sim/cache.hh"

#include <stdexcept>

namespace polyflow {

Cache::Cache(const CacheConfig &config) : _cfg(config)
{
    if (_cfg.lineBytes <= 0 || _cfg.assoc <= 0 || _cfg.sizeBytes <= 0)
        throw std::runtime_error("bad cache config");
    _numSets = _cfg.sizeBytes / (_cfg.lineBytes * _cfg.assoc);
    if (_numSets <= 0 ||
        (_numSets & (_numSets - 1)) != 0) {
        throw std::runtime_error("cache sets must be a power of two");
    }
    _ways.resize(size_t(_numSets) * _cfg.assoc);
}

bool
Cache::access(Addr addr)
{
    ++_clock;
    Addr line = addr / _cfg.lineBytes;
    int set = int(line & Addr(_numSets - 1));
    Way *base = &_ways[size_t(set) * _cfg.assoc];

    for (int w = 0; w < _cfg.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = _clock;
            ++_hits;
            return true;
        }
    }
    // Miss: fill an invalid way if any, else the true-LRU way.
    Way *lru = base;
    for (int w = 0; w < _cfg.assoc; ++w) {
        Way &way = base[w];
        if (!way.valid) {
            lru = &way;
            break;
        }
        if (way.lastUse < lru->lastUse)
            lru = &way;
    }
    lru->valid = true;
    lru->tag = line;
    lru->lastUse = _clock;
    ++_misses;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    Addr line = addr / _cfg.lineBytes;
    int set = int(line & Addr(_numSets - 1));
    const Way *base = &_ways[size_t(set) * _cfg.assoc];
    for (int w = 0; w < _cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (Way &w : _ways)
        w = Way{};
    _clock = _hits = _misses = 0;
}

MemHierarchy::MemHierarchy(const MachineConfig &config)
    : _l1i(config.l1i), _l1d(config.l1d), _l2(config.l2)
{}

int
MemHierarchy::accessInstr(Addr addr)
{
    if (_l1i.access(addr))
        return 1;
    int lat = 1 + _l1i.config().missLatency;
    if (!_l2.access(addr))
        lat += _l2.config().missLatency;
    return lat;
}

int
MemHierarchy::accessData(Addr addr)
{
    if (_l1d.access(addr))
        return 1;
    int lat = 1 + _l1d.config().missLatency;
    if (!_l2.access(addr))
        lat += _l2.config().missLatency;
    return lat;
}

void
MemHierarchy::reset()
{
    _l1i.reset();
    _l1d.reset();
    _l2.reset();
}

} // namespace polyflow
