/**
 * @file
 * The PolyFlow cycle-level timing simulator.
 *
 * The machine (Figure 7 of the paper) is an SMT core running up to
 * numTasks control-equivalent tasks carved out of one sequential
 * stream. The model is execution-driven in two phases: the
 * functional golden model produces the committed dynamic trace
 * (isa/functional_sim.hh), and this engine replays it cycle by
 * cycle with real predictors, caches and resource contention.
 * Wrong-path fetch is modelled as a per-task fetch stall from the
 * mispredicted fetch until branch resolution (see DESIGN.md for why
 * this preserves the paper's first-order effects).
 *
 * TimingSim itself is a thin orchestrator: all microarchitectural
 * state lives in sim::MachineState (machine_state.hh) and each
 * pipeline stage is its own module (frontend.hh, rename.hh,
 * backend.hh, commit.hh, recovery.hh, accounting.hh). Per cycle:
 *
 *   unblock -> commit -> [accounting] -> divert-release -> issue ->
 *   rename -> fetch(+spawn) -> violations/squash
 */

#ifndef POLYFLOW_SIM_CORE_HH
#define POLYFLOW_SIM_CORE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/trace.hh"
#include "sim/backend.hh"
#include "sim/commit.hh"
#include "sim/config.hh"
#include "sim/frontend.hh"
#include "sim/machine_state.hh"
#include "sim/recovery.hh"
#include "sim/rename.hh"
#include "sim/result.hh"
#include "sim/spawn_source.hh"
#include "sim/trace_index.hh"

namespace polyflow {

/**
 * Wall-clock time spent inside each stage module over a run,
 * accumulated only when profiling is enabled (TimingSim::
 * profileStages, MachineBatch::profileStages);
 * bench/micro_timing_sim reports the breakdown.
 *
 * A batched run accumulates each stage's time across the whole
 * batch and counts one profiled cycle per live machine per step, so
 * stageNs / cycles is the per-machine average either way.
 */
struct StageProfile
{
    std::uint64_t commitNs = 0;      //!< unblock + commit
    std::uint64_t accountingNs = 0;  //!< slot-bucket attribution
    std::uint64_t divertNs = 0;      //!< divert-queue release
    std::uint64_t issueNs = 0;       //!< wakeup/select + FUs
    std::uint64_t renameNs = 0;      //!< rename/dispatch
    std::uint64_t fetchNs = 0;       //!< fetch + spawn unit
    std::uint64_t recoveryNs = 0;    //!< violations + squash
    /** Machine-cycles profiled (over all machines of a batch). */
    std::uint64_t cycles = 0;
    std::uint64_t machines = 0;      //!< machines profiled

    /** Wall time across all stages. */
    std::uint64_t
    totalNs() const
    {
        return commitNs + accountingNs + divertNs + issueNs +
            renameNs + fetchNs + recoveryNs;
    }
};

/** One machine's inputs for a batched run (TimingSim::runBatch). */
struct BatchItem
{
    /** Committed dynamic trace from the functional sim. */
    const Trace *trace = nullptr;
    /** Spawn source, or nullptr for the superscalar baseline. Must
     *  be private to this machine when it trains. */
    SpawnSource *source = nullptr;
    /** Precomputed indexes over @c trace (shared read-only), or
     *  nullptr to build private ones when spawning is enabled. */
    const TraceIndex *index = nullptr;
    /** Reported as TimingResult::policyName. */
    std::string label;
    /** Optional task-lifecycle event sink for this machine. */
    std::vector<TaskEvent> *events = nullptr;
};

/**
 * One timing simulation over a committed trace. Construct, then call
 * run() exactly once.
 */
class TimingSim
{
  public:
    /**
     * @param config machine parameters
     * @param trace committed dynamic trace from the functional sim
     * @param source spawn source, or nullptr for the superscalar
     *               baseline (no spawning)
     * @param sharedIndex precomputed indexes over @p trace, shared
     *               read-only across simulations (the sweep engine
     *               passes these); nullptr builds private ones when
     *               spawning is enabled
     */
    TimingSim(const MachineConfig &config, const Trace &trace,
              SpawnSource *source,
              const TraceIndex *sharedIndex = nullptr);

    /** Simulate to completion and return the statistics. */
    TimingResult run(const std::string &policyName);

    /** Record task lifecycle events into @p sink (optional; call
     *  before run()). */
    void traceTasks(std::vector<TaskEvent> *sink)
    {
        _m.events = sink;
    }

    /** Accumulate per-stage wall time into @p sink (optional; call
     *  before run()). */
    void profileStages(StageProfile *sink) { _profile = sink; }

    /**
     * Batched entry point: run every machine of @p items (same
     * machine config, independent traces) to completion through the
     * stage-major batch engine (sim/batch.hh) and return their
     * statistics in item order. Results are cycle-identical to
     * running each item through TimingSim::run. @p profile, when
     * non-null, accumulates per-stage wall time across the batch.
     */
    static std::vector<TimingResult>
    runBatch(const MachineConfig &config,
             std::span<const BatchItem> items,
             StageProfile *profile = nullptr);

  private:
    sim::MachineState _m;

    sim::Frontend _frontend;
    sim::Rename _rename;
    sim::Backend _backend;
    sim::Commit _commit;
    sim::Recovery _recovery;

    StageProfile *_profile = nullptr;
    bool _ran = false;
};

/**
 * Convenience wrapper: run @p trace on @p config with an optional
 * spawn source. @p sharedIndex, when given, must index @p trace.
 * Most callers should not need it: polyflow::Session wires the whole
 * trace → analyze → simulate pipeline (polyflow.hh).
 */
TimingResult runTiming(const MachineConfig &config,
                       const Trace &trace, SpawnSource *source,
                       const std::string &name,
                       const TraceIndex *sharedIndex = nullptr);

} // namespace polyflow

#endif // POLYFLOW_SIM_CORE_HH
