/**
 * @file
 * The PolyFlow cycle-level timing simulator.
 *
 * The machine (Figure 7 of the paper) is an SMT core running up to
 * numTasks control-equivalent tasks carved out of one sequential
 * stream. The model is execution-driven in two phases: the
 * functional golden model produces the committed dynamic trace
 * (isa/functional_sim.hh), and this engine replays it cycle by
 * cycle with real predictors, caches and resource contention.
 * Wrong-path fetch is modelled as a per-task fetch stall from the
 * mispredicted fetch until branch resolution (see DESIGN.md for why
 * this preserves the paper's first-order effects).
 *
 * Pipeline per cycle:
 *   unblock -> commit -> divert-release -> issue -> rename ->
 *   fetch(+spawn) -> violations/squash
 */

#ifndef POLYFLOW_SIM_CORE_HH
#define POLYFLOW_SIM_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "isa/trace.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/result.hh"
#include "sim/spawn_source.hh"
#include "sim/store_sets.hh"
#include "sim/trace_index.hh"

namespace polyflow {

/**
 * One timing simulation over a committed trace. Construct, then call
 * run() exactly once.
 */
class TimingSim
{
  public:
    /**
     * @param config machine parameters
     * @param trace committed dynamic trace from the functional sim
     * @param source spawn source, or nullptr for the superscalar
     *               baseline (no spawning)
     * @param sharedIndex precomputed indexes over @p trace, shared
     *               read-only across simulations (the sweep engine
     *               passes these); nullptr builds private ones when
     *               spawning is enabled
     */
    TimingSim(const MachineConfig &config, const Trace &trace,
              SpawnSource *source,
              const TraceIndex *sharedIndex = nullptr);

    /** Simulate to completion and return the statistics. */
    TimingResult run(const std::string &policyName);

    /** Record task lifecycle events into @p sink (optional; call
     *  before run()). */
    void traceTasks(std::vector<TaskEvent> *sink) { _events = sink; }

  private:
    enum class Stage : std::uint8_t {
        None = 0,
        Fetched = 1,
        Diverted = 2,
        InSched = 3,
        Issued = 4,
        Committed = 5,
    };

    struct InstrState
    {
        Stage stage = Stage::None;
        std::uint64_t fetchCycle = 0;
        std::uint64_t completeCycle = 0;
    };

    /** Why a task's fetch last stalled; refines the cycle-
     *  accounting blame while the stall (and the frontend refill
     *  behind it) drains. */
    enum class FetchStall : std::uint8_t {
        None,          //!< no stall recorded yet (cold start)
        Mispredict,    //!< branch mispredict redirect
        ICache,        //!< instruction-cache miss
        Squash,        //!< restart after a violation squash
        SpawnStartup,  //!< context-allocation delay of a new task
    };

    struct Task
    {
        TraceIdx begin = 0, end = 0;
        TraceIdx fetchIdx = 0, dispIdx = 0;
        std::uint64_t fetchReady = 0;
        FetchStall lastFetchStall = FetchStall::None;
        TraceIdx blockedOnBranch = invalidTrace;
        std::uint32_t ghr = 0;
        ReturnAddressStack ras;
        Addr curFetchLine = invalidAddr;
        std::uint64_t inflight = 0;  //!< fetched, not committed
        int robHeld = 0;
        Addr triggerPc = invalidAddr;  //!< spawn PC that created us
        std::uint32_t divertedCount = 0;
        /** Compiler hint: spawner-written live-in registers. */
        std::uint32_t depMask = 0;
    };

    struct Violation
    {
        TraceIdx consumer;
        /** Conflicting store for memory violations; invalidTrace
         *  for stale register reads. */
        TraceIdx store;
    };

    struct DivertEntry
    {
        TraceIdx idx;
        /** Cycle the entry may re-enter rename once its wake-up
         *  condition holds (0 = condition not yet observed). */
        std::uint64_t readyAt = 0;
    };

    /** @name Cycle phases @{ */
    void unblockTasks();
    void commitPhase();
    void releaseDiverted();
    void issuePhase();
    void renamePhase();
    void fetchPhase();
    void processViolations();
    /** @} */

    void maybeSpawn(Task &t, TraceIdx i, const LinkedInstr &li);
    void squashFromTask(size_t taskPos);
    void retireHead();

    /** @name Cycle accounting @{ */
    /** Attribute this cycle's pipelineWidth issue slots: commits
     *  fill Committed, the rest go to blameBucket(). Called once
     *  per counted cycle, right after commitPhase(). */
    void accountCycle();
    /** Why the oldest uncommitted instruction did not commit. */
    SlotBucket blameBucket() const;
    /** Map a task's recorded fetch stall to its bucket. */
    static SlotBucket stallBucket(const Task &t);
    /** @} */

    /** True if instruction @p i must (still) wait in the divert
     *  queue: a synchronized producer has not been renamed yet. */
    bool divertHolds(TraceIdx i, const DynInstr &d,
                     const Task &t) const;
    bool loadSyncNeeded(TraceIdx i, const DynInstr &d,
                        const Task &t) const;
    bool robAllowed(size_t taskPos) const;
    int execLatency(const LinkedInstr &li) const;

    Task *taskOf(TraceIdx i);
    size_t taskPosOf(TraceIdx i) const;

    bool
    doneAt(TraceIdx p, std::uint64_t cycle) const
    {
        const InstrState &s = _state[p];
        return s.stage == Stage::Committed ||
            (s.stage == Stage::Issued && s.completeCycle <= cycle);
    }

    const LinkedInstr &
    staticOf(TraceIdx i) const
    {
        return _trace->staticOf(i);
    }

    MachineConfig _cfg;
    const Trace *_trace;
    SpawnSource *_source;

    std::vector<InstrState> _state;
    std::vector<Task> _tasks;  //!< active tasks, oldest first
    std::vector<TraceIdx> _sched;
    std::deque<DivertEntry> _divert;
    std::vector<Violation> _pendingViolations;
    int _robUsed = 0;
    TraceIdx _commitIdx = 0;
    std::uint64_t _now = 0;
    /** Instructions committed this cycle (set by commitPhase,
     *  consumed by accountCycle). */
    int _cycleCommits = 0;

    MemHierarchy _hier;
    GsharePredictor _gshare;
    IndirectPredictor _indirect;
    StoreSetPredictor _storeSets;
    RegDepPredictor _regPred;
    /** Per-trace indexes (spawn targets, store->consumer loads);
     *  either shared by the caller or privately owned. */
    const TraceIndex *_index = nullptr;
    std::unique_ptr<TraceIndex> _ownedIndex;

    /** Spawn-profitability feedback (paper: "dynamic feedback about
     *  which tasks are profitable"). */
    struct Feedback
    {
        int spawns = 0;
        int squashes = 0;
        int unprofitable = 0;
        int profitable = 0;
    };
    std::unordered_map<Addr, Feedback> _feedback;
    std::unordered_set<Addr> _disabledTriggers;
    /** Expiry cycles of contexts held by wrong-path (ghost) tasks. */
    std::vector<std::uint64_t> _ghosts;

    /** A spawn decided mid-fetch, applied at end of cycle so task
     *  positions stay stable while fetchPhase iterates. */
    struct PendingSpawn
    {
        bool valid = false;
        TraceIdx parentBegin = 0;
        TraceIdx start = 0;
        TraceIdx end = 0;
        SpawnHint hint{};
        Addr triggerPc = invalidAddr;
        std::uint32_t ghr = 0;
        ReturnAddressStack ras;
    };
    void applyPendingSpawn();

    PendingSpawn _pending;
    TimingResult _res;
    std::vector<TaskEvent> *_events = nullptr;
    bool _ran = false;
};

/**
 * Convenience wrapper: run @p trace on @p config with an optional
 * spawn source. @p sharedIndex, when given, must index @p trace.
 */
TimingResult runTiming(const MachineConfig &config,
                       const Trace &trace, SpawnSource *source,
                       const std::string &name,
                       const TraceIndex *sharedIndex = nullptr);

/**
 * @deprecated Pre-normalization name of runTiming(), kept for one
 * PR so benches and tests can migrate incrementally (docs/API.md).
 * Most callers should not need either: polyflow::Session wires the
 * whole trace → analyze → simulate pipeline (polyflow.hh).
 */
inline TimingResult
simulate(const MachineConfig &config, const Trace &trace,
         SpawnSource *source, const std::string &name,
         const TraceIndex *sharedIndex = nullptr)
{
    return runTiming(config, trace, source, name, sharedIndex);
}

} // namespace polyflow

#endif // POLYFLOW_SIM_CORE_HH
