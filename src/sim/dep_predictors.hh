/**
 * @file
 * The rename-stage data dependence predictors of the PolyFlow
 * pipeline (Figure 7): learn-on-violation, PC-indexed predictors
 * that decide which consumers synchronize through the divert queue
 * instead of re-speculating.
 *
 *  - The *register* predictor marks a consumer instruction that once
 *    read a stale value produced by an older in-flight task.
 *  - The *memory* predictor (store-set style, in the spirit of the
 *    Synchronizing Store Sets used by PolyFlow) marks a load that
 *    once violated against an older task's store.
 *
 * Both are queried for every instruction at rename and for every
 * divert-queue entry every cycle, so the backing is a flat per-static
 * -instruction table indexed by image index (each image slot is one
 * PC, so image-indexing is exactly PC-indexing without the hash).
 */

#ifndef POLYFLOW_SIM_DEP_PREDICTORS_HH
#define POLYFLOW_SIM_DEP_PREDICTORS_HH

#include <cstdint>
#include <vector>

#include "ir/types.hh"

namespace polyflow {

class DepPredictors
{
  public:
    /** @param imageSize static instruction count of the program. */
    explicit DepPredictors(size_t imageSize)
        : _bits(imageSize, 0)
    {}

    /** Consumer at image slot @p i is predicted to read a value an
     *  older task produces; synchronize it. */
    bool
    predictsRegDep(ImageIdx i) const
    {
        return _bits[i] & RegDep;
    }

    /** Load at image slot @p i is predicted to conflict with an
     *  older task's store; synchronize it. */
    bool
    predictsMemDep(ImageIdx i) const
    {
        return _bits[i] & MemDep;
    }

    /** Learn from a stale register read by the consumer at @p i. */
    void
    recordRegViolation(ImageIdx i)
    {
        _bits[i] |= RegDep;
        ++_violationsRecorded;
    }

    /** Learn from a memory-order violation by the load at @p i. */
    void
    recordMemViolation(ImageIdx i)
    {
        _bits[i] |= MemDep;
        ++_violationsRecorded;
    }

    std::uint64_t violationsRecorded() const
    {
        return _violationsRecorded;
    }

    /** Static instructions currently predicted dependent (either
     *  kind). */
    size_t
    numDependent() const
    {
        size_t n = 0;
        for (std::uint8_t b : _bits)
            n += b != 0;
        return n;
    }

  private:
    enum : std::uint8_t { RegDep = 1, MemDep = 2 };
    std::vector<std::uint8_t> _bits;
    std::uint64_t _violationsRecorded = 0;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_DEP_PREDICTORS_HH
