#include "sim/backend.hh"

#include <algorithm>

namespace polyflow::sim {

namespace {

/**
 * Wakeup/select/execute for one scheduler entry: check operand and
 * memory-ordering readiness, then execute on a FU, recording any
 * dependence violations for the recovery stage. @p t is the task
 * owning @p i (nullptr if none). Returns true if the entry issued —
 * the caller frees its scheduler slot and spends one FU.
 */
bool
tryIssue(MachineState &m, TraceIdx i, Task *t)
{
    InstrState &s = m.istate[i];
    const DynInstr &d = m.trace->instrs[i];
    const LinkedInstr &li = m.staticOf(i);

    // Register operands: synchronized producers must be
    // complete; an unsynchronized (unpredicted) cross-task
    // producer lets the consumer issue with a stale value,
    // which is a dependence violation.
    bool ready = true;
    bool staleRegRead = false;
    RegId srcs[2];
    int nsrc = li.instr.srcRegs(srcs);
    for (int k = 0; k < nsrc; ++k) {
        TraceIdx p = d.prod[k];
        if (p == invalidTrace || m.doneAt(p, m.now))
            continue;
        bool same_task = t && p >= t->begin;
        bool hinted = t && m.cfg.compilerDepHints &&
            ((t->depMask >> srcs[k]) & 1);
        if (same_task || hinted ||
            m.depPred.predictsRegDep(d.img)) {
            ready = false;
        } else {
            staleRegRead = true;
        }
    }

    // Memory ordering for loads.
    bool speculativeLoad = false;
    if (ready && li.instr.isLoad() &&
        d.memProd != invalidTrace &&
        m.istate[d.memProd].stage != InstrStage::Committed) {
        if (t && m.loadSyncNeeded(i, d, *t)) {
            if (!m.doneAt(d.memProd, m.now))
                ready = false;
        } else if (!m.doneAt(d.memProd, m.now)) {
            // Unsynchronized cross-task load issuing before the
            // conflicting store has produced its data.
            speculativeLoad = true;
        }
    }

    if (!ready)
        return false;
    if (staleRegRead)
        m.pendingViolations.push_back({i, invalidTrace});

    // Issue.
    s.stage = InstrStage::Issued;
    if (li.instr.isLoad()) {
        int lat = m.hier.accessData(d.effAddr);
        s.completeCycle = m.now + m.cfg.loadLatency + (lat - 1);
    } else if (li.instr.isStore()) {
        m.hier.accessData(d.effAddr);
        s.completeCycle = m.now + 1;
        // A store executing after dependent cross-task loads
        // have already issued is a dependence violation.
        if (m.index) {
            for (TraceIdx l : m.index->consumersOf(i)) {
                if (m.istate[l].stage == InstrStage::Issued &&
                    (!t || l >= t->end)) {
                    m.pendingViolations.push_back({l, i});
                }
            }
        }
    } else {
        s.completeCycle = m.now + m.execLatency(li);
    }
    if (speculativeLoad &&
        m.istate[d.memProd].stage == InstrStage::Issued &&
        m.istate[d.memProd].completeCycle > m.now) {
        // Load read stale data while the store is in flight.
        m.pendingViolations.push_back({i, d.memProd});
    }
    return true;
}

} // namespace

void
Backend::releaseDiverted(MachineState &m)
{
    int budget = m.cfg.pipelineWidth;
    for (auto it = m.divert.begin();
         it != m.divert.end() && budget > 0;) {
        TraceIdx i = it->idx;
        if (m.istate[i].stage != InstrStage::Diverted) {
            it = m.divert.erase(it);  // squashed while diverted
            continue;
        }
        size_t pos = m.taskPosOf(i);
        Task &t = m.tasks[pos];
        const DynInstr &d = m.trace->instrs[i];

        if (m.divertHolds(i, d, t)) {
            it->readyAt = 0;  // wake-up condition not met (yet)
            ++it;
            continue;
        }
        // Condition holds: model the FIFO re-dispatch latency. The
        // ROB entry was already allocated when the instruction
        // entered the divert queue (holding it there is what makes
        // in-order commit deadlock-free; see DESIGN.md).
        if (it->readyAt == 0)
            it->readyAt = m.now + m.cfg.divertReleaseDelay;
        if (m.now >= it->readyAt &&
            static_cast<int>(m.sched.size()) <
                m.cfg.schedEntries) {
            m.istate[i].stage = InstrStage::InSched;
            m.sched.push_back(i);
            --budget;
            it = m.divert.erase(it);
        } else {
            ++it;
        }
    }
}

void
Backend::issue(MachineState &m)
{
    std::sort(m.sched.begin(), m.sched.end());
    int fu = m.cfg.numFUs;
    for (auto it = m.sched.begin();
         it != m.sched.end() && fu > 0;) {
        TraceIdx i = *it;
        if (m.istate[i].stage != InstrStage::InSched) {
            it = m.sched.erase(it);  // squashed while scheduled
            continue;
        }
        if (tryIssue(m, i, m.taskOf(i))) {
            it = m.sched.erase(it);
            --fu;
        } else {
            ++it;
        }
    }
}

void
Backend::releaseDivertedCompact(MachineState &m)
{
    int budget = m.cfg.pipelineWidth;
    std::vector<DivertEntry> &q = m.divert;
    _divertKeep.clear();
    size_t j = 0;
    for (; j < q.size() && budget > 0; ++j) {
        DivertEntry e = q[j];
        TraceIdx i = e.idx;
        if (m.istate[i].stage != InstrStage::Diverted)
            continue;  // squashed while diverted: drop
        Task &t = m.tasks[m.taskPosOf(i)];
        const DynInstr &d = m.trace->instrs[i];

        if (m.divertHolds(i, d, t)) {
            e.readyAt = 0;  // wake-up condition not met (yet)
            _divertKeep.push_back(e);
            continue;
        }
        if (e.readyAt == 0)
            e.readyAt = m.now + m.cfg.divertReleaseDelay;
        if (m.now >= e.readyAt &&
            static_cast<int>(m.sched.size()) <
                m.cfg.schedEntries) {
            m.istate[i].stage = InstrStage::InSched;
            m.sched.push_back(i);
            --budget;
        } else {
            _divertKeep.push_back(e);
        }
    }
    // Budget exhausted: the unexamined tail stays verbatim, exactly
    // like the reference loop leaving it untouched.
    _divertKeep.insert(_divertKeep.end(), q.begin() + j, q.end());
    q.swap(_divertKeep);
}

void
Backend::issueCompact(MachineState &m)
{
    // Repair oldest-first order: survivors of the previous scan are
    // already sorted, and rename/divert-release appended short
    // ascending runs behind them, so an adaptive insertion pass
    // restores full order in ~n comparisons — no per-cycle sort.
    std::vector<TraceIdx> &q = m.sched;
    for (size_t j = 1; j < q.size(); ++j) {
        TraceIdx v = q[j];
        size_t k = j;
        for (; k > 0 && q[k - 1] > v; --k)
            q[k] = q[k - 1];
        q[k] = v;
    }

    int fu = m.cfg.numFUs;
    _schedKeep.clear();
    // Ascending age keys let the owning task be resolved by walking
    // the (begin-sorted) task table in lockstep instead of a binary
    // search per entry.
    size_t cursor = 0;
    size_t j = 0;
    for (; j < q.size() && fu > 0; ++j) {
        TraceIdx i = q[j];
        if (m.istate[i].stage != InstrStage::InSched)
            continue;  // squashed while scheduled: drop
        while (cursor < m.tasks.size() &&
               m.tasks[cursor].end <= i)
            ++cursor;
        Task *t = cursor < m.tasks.size() &&
                m.tasks[cursor].begin <= i
            ? &m.tasks[cursor]
            : nullptr;
        if (tryIssue(m, i, t))
            --fu;
        else
            _schedKeep.push_back(i);
    }
    _schedKeep.insert(_schedKeep.end(), q.begin() + j, q.end());
    q.swap(_schedKeep);
}

void
Backend::releaseDiverted(std::span<MachineState *const> machines)
{
    for (MachineState *m : machines) {
        if (!m->divert.empty())
            releaseDivertedCompact(*m);
    }
}

void
Backend::issue(std::span<MachineState *const> machines)
{
    for (MachineState *m : machines) {
        if (!m->sched.empty())
            issueCompact(*m);
    }
}

} // namespace polyflow::sim
