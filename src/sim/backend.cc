#include "sim/backend.hh"

#include <algorithm>

namespace polyflow::sim {

void
Backend::releaseDiverted(MachineState &m)
{
    int budget = m.cfg.pipelineWidth;
    for (auto it = m.divert.begin();
         it != m.divert.end() && budget > 0;) {
        TraceIdx i = it->idx;
        if (m.istate[i].stage != InstrStage::Diverted) {
            it = m.divert.erase(it);  // squashed while diverted
            continue;
        }
        size_t pos = m.taskPosOf(i);
        Task &t = m.tasks[pos];
        const DynInstr &d = m.trace->instrs[i];

        if (m.divertHolds(i, d, t)) {
            it->readyAt = 0;  // wake-up condition not met (yet)
            ++it;
            continue;
        }
        // Condition holds: model the FIFO re-dispatch latency. The
        // ROB entry was already allocated when the instruction
        // entered the divert queue (holding it there is what makes
        // in-order commit deadlock-free; see DESIGN.md).
        if (it->readyAt == 0)
            it->readyAt = m.now + m.cfg.divertReleaseDelay;
        if (m.now >= it->readyAt &&
            static_cast<int>(m.sched.size()) <
                m.cfg.schedEntries) {
            m.istate[i].stage = InstrStage::InSched;
            m.sched.push_back(i);
            --budget;
            it = m.divert.erase(it);
        } else {
            ++it;
        }
    }
}

void
Backend::issue(MachineState &m)
{
    std::sort(m.sched.begin(), m.sched.end());
    int fu = m.cfg.numFUs;
    for (auto it = m.sched.begin();
         it != m.sched.end() && fu > 0;) {
        TraceIdx i = *it;
        InstrState &s = m.istate[i];
        if (s.stage != InstrStage::InSched) {
            it = m.sched.erase(it);  // squashed while scheduled
            continue;
        }
        const DynInstr &d = m.trace->instrs[i];
        const LinkedInstr &li = m.staticOf(i);
        Task *t = m.taskOf(i);

        // Register operands: synchronized producers must be
        // complete; an unsynchronized (unpredicted) cross-task
        // producer lets the consumer issue with a stale value,
        // which is a dependence violation.
        bool ready = true;
        bool staleRegRead = false;
        RegId srcs[2];
        int nsrc = li.instr.srcRegs(srcs);
        for (int k = 0; k < nsrc; ++k) {
            TraceIdx p = d.prod[k];
            if (p == invalidTrace || m.doneAt(p, m.now))
                continue;
            bool same_task = t && p >= t->begin;
            bool hinted = t && m.cfg.compilerDepHints &&
                ((t->depMask >> srcs[k]) & 1);
            if (same_task || hinted ||
                m.depPred.predictsRegDep(d.img)) {
                ready = false;
            } else {
                staleRegRead = true;
            }
        }

        // Memory ordering for loads.
        bool speculativeLoad = false;
        if (ready && li.instr.isLoad() &&
            d.memProd != invalidTrace &&
            m.istate[d.memProd].stage != InstrStage::Committed) {
            if (t && m.loadSyncNeeded(i, d, *t)) {
                if (!m.doneAt(d.memProd, m.now))
                    ready = false;
            } else if (!m.doneAt(d.memProd, m.now)) {
                // Unsynchronized cross-task load issuing before the
                // conflicting store has produced its data.
                speculativeLoad = true;
            }
        }

        if (!ready) {
            ++it;
            continue;
        }
        if (staleRegRead)
            m.pendingViolations.push_back({i, invalidTrace});

        // Issue.
        s.stage = InstrStage::Issued;
        if (li.instr.isLoad()) {
            int lat = m.hier.accessData(d.effAddr);
            s.completeCycle = m.now + m.cfg.loadLatency + (lat - 1);
        } else if (li.instr.isStore()) {
            m.hier.accessData(d.effAddr);
            s.completeCycle = m.now + 1;
            // A store executing after dependent cross-task loads
            // have already issued is a dependence violation.
            if (m.index) {
                Task *st = m.taskOf(i);
                for (TraceIdx l : m.index->consumersOf(i)) {
                    if (m.istate[l].stage == InstrStage::Issued &&
                        (!st || l >= st->end)) {
                        m.pendingViolations.push_back({l, i});
                    }
                }
            }
        } else {
            s.completeCycle = m.now + m.execLatency(li);
        }
        if (speculativeLoad &&
            m.istate[d.memProd].stage == InstrStage::Issued &&
            m.istate[d.memProd].completeCycle > m.now) {
            // Load read stale data while the store is in flight.
            m.pendingViolations.push_back({i, d.memProd});
        }
        it = m.sched.erase(it);
        --fu;
    }
}

} // namespace polyflow::sim
