#include "sim/spawn_source.hh"

namespace polyflow {

std::optional<SpawnHint>
StaticSpawnSource::query(const LinkedInstr &li)
{
    const SpawnPoint *p = _table.lookup(li.addr);
    if (!p)
        return std::nullopt;
    return SpawnHint{p->targetPc, p->kind, p->depMask};
}

std::optional<SpawnHint>
ReconSpawnSource::query(const LinkedInstr &li)
{
    if (li.instr.isCall()) {
        return SpawnHint{li.addr + instrBytes, SpawnKind::ProcFT};
    }
    if (li.instr.isCondBranch()) {
        Addr target = _predictor.predict(li.addr);
        if (target != invalidAddr)
            return SpawnHint{target, SpawnKind::Other};
    }
    return std::nullopt;
}

void
ReconSpawnSource::onCommit(const LinkedInstr &li, bool taken)
{
    _predictor.observeCommit(li.addr, li.instr.isCondBranch(), taken,
                             li.blockStart);
}

std::optional<SpawnHint>
DmtSpawnSource::query(const LinkedInstr &li)
{
    if (li.instr.isCall())
        return SpawnHint{li.addr + instrBytes, SpawnKind::ProcFT};
    if (li.instr.isCondBranch() && li.targetAddr != invalidAddr &&
        li.targetAddr < li.addr) {
        // Backward branch: the instruction after it approximates
        // the loop fall-through.
        return SpawnHint{li.addr + instrBytes, SpawnKind::LoopFT};
    }
    return std::nullopt;
}

} // namespace polyflow
