/**
 * @file
 * Frontend stage: SMT fetch (biased ICount over up to
 * fetchTasksPerCycle tasks), branch prediction, and the Task Spawn
 * Unit (spawn decisions at fetch, applied end-of-cycle).
 */

#ifndef POLYFLOW_SIM_FRONTEND_HH
#define POLYFLOW_SIM_FRONTEND_HH

#include <span>
#include <vector>

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Frontend
{
  public:
    /**
     * One fetch cycle: pick eligible tasks by biased ICount, fetch
     * up to pipelineWidth instructions across them, consult the
     * branch predictors (a mispredict blocks that task's fetch until
     * resolution), and let the spawn unit observe every fetched
     * instruction. A spawn decision truncates the parent immediately
     * but the context allocation is deferred to applySpawn().
     */
    void fetch(MachineState &m);

    /**
     * Apply the cycle's pending spawn, if any: allocate the new task
     * context right after its parent. Deferred so task positions
     * stay stable while fetch() iterates.
     */
    void applySpawn(MachineState &m);

    /**
     * Batched form: fetch() followed by applySpawn() for each
     * machine in the span, reusing one eligible-task scratch buffer
     * instead of allocating one per machine per cycle. Identical
     * per-machine behavior to the scalar pair (shared
     * implementation).
     */
    void fetch(std::span<MachineState *const> machines);

  private:
    void fetchImpl(MachineState &m, std::vector<size_t> &eligible);
    void maybeSpawn(MachineState &m, Task &t, TraceIdx i,
                    const LinkedInstr &li);

    /** Eligible-task scratch of the batched form, reused across
     *  machines and cycles. */
    std::vector<size_t> _eligible;
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_FRONTEND_HH
