/**
 * @file
 * Rename/dispatch stage: in-order per task into the shared ROB and
 * scheduler, diverting predicted-dependent consumers into the divert
 * queue (Figure 7's rename-stage dependence predictors).
 */

#ifndef POLYFLOW_SIM_RENAME_HH
#define POLYFLOW_SIM_RENAME_HH

#include <span>

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Rename
{
  public:
    /**
     * Rename up to pipelineWidth instructions, oldest task first.
     * A consumer the dependence predictors (or the compiler dep
     * mask) mark as synchronized enters the divert queue holding its
     * ROB entry; everything else dispatches to the scheduler. Stalls
     * on frontend depth, ROB admission (robAllowed) and full
     * divert/scheduler queues.
     */
    void step(MachineState &m);

    /** Batched form: step() over every machine in the span, one
     *  pass of stage code per cycle. */
    void step(std::span<MachineState *const> machines)
    {
        for (MachineState *m : machines)
            step(*m);
    }
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_RENAME_HH
