/**
 * @file
 * AddrIndex: per-PC occurrence lists over a committed trace. The
 * Task Spawn Unit uses this to locate the next dynamic occurrence of
 * a spawn target (the paper's spawn unit "uses a trace to ensure
 * that tasks are not spawned too far into the future").
 */

#ifndef POLYFLOW_SIM_ADDR_INDEX_HH
#define POLYFLOW_SIM_ADDR_INDEX_HH

#include <unordered_map>
#include <vector>

#include "isa/trace.hh"

namespace polyflow {

/** Sorted occurrence index of every PC in a trace. */
class AddrIndex
{
  public:
    explicit AddrIndex(const Trace &trace);

    /**
     * First trace index strictly after @p after whose PC is @p pc,
     * or invalidTrace.
     */
    TraceIdx nextOccurrence(Addr pc, TraceIdx after) const;

    /** Total dynamic occurrences of @p pc. */
    size_t count(Addr pc) const;

  private:
    std::unordered_map<Addr, std::vector<TraceIdx>> _occ;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_ADDR_INDEX_HH
