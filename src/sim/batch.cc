#include "sim/batch.hh"

#include <span>
#include <stdexcept>

#include "sim/accounting.hh"
#include "sim/stage_timer.hh"

namespace polyflow::sim {

namespace {

/** Same deadlock diagnostic as the scalar run loop, plus which
 *  batch member hung. */
[[noreturn]] void
throwCycleLimit(const MachineState &m, const std::string &label)
{
    std::string msg =
        "MachineBatch: cycle limit exceeded (deadlock?) in \"" +
        label + "\" at commitIdx " + std::to_string(m.commitIdx) +
        " stage=" +
        std::to_string(int(m.istate[m.commitIdx].stage)) +
        " sched=" + std::to_string(m.sched.size()) +
        " divert=" + std::to_string(m.divert.size()) +
        " rob=" + std::to_string(m.robUsed) + " tasks=[";
    for (const Task &t : m.tasks) {
        msg += "(" + std::to_string(t.begin) + "," +
            std::to_string(t.end) + ",f" +
            std::to_string(t.fetchIdx) + ",d" +
            std::to_string(t.dispIdx) + ",blk" +
            std::to_string(t.blockedOnBranch == invalidTrace
                               ? -1
                               : int(t.blockedOnBranch)) +
            ",rdy" + std::to_string(t.fetchReady) + ")";
    }
    msg += "]";
    throw std::runtime_error(msg);
}

} // namespace

MachineBatch::MachineBatch(const MachineConfig &config)
    : _cfg(config)
{
}

MachineBatch::~MachineBatch() = default;

size_t
MachineBatch::add(const Trace &trace, SpawnSource *source,
                  const TraceIndex *index, std::string label,
                  std::vector<TaskEvent> *events)
{
    if (_ran)
        throw std::runtime_error("MachineBatch::add after run");
    auto m = std::make_unique<MachineState>(_cfg, trace, source,
                                            index);
    m->events = events;
    _machines.push_back(std::move(m));
    _labels.push_back(std::move(label));
    return _machines.size() - 1;
}

/*
 * The stage-major loop. Per machine this is the exact stage
 * sequence of TimingSim::run —
 *
 *   unblock -> commit -> [finish?] -> accounting -> divert-release
 *   -> issue -> rename -> fetch(+spawn) -> violations/squash
 *
 * — only the iteration order changes: each stage runs over every
 * live machine before the next stage starts, so the stage's code
 * and lookup tables stay resident across the batch. Machines are
 * independent, so the per-machine result is identical either way.
 */
std::vector<TimingResult>
MachineBatch::run()
{
    if (_ran)
        throw std::runtime_error("MachineBatch::run called twice");
    _ran = true;

    const size_t n = _machines.size();
    std::vector<TimingResult> out(n);
    // The live set, in add order, with each machine's output slot
    // and cycle limit; all three compact in lockstep as machines
    // finish.
    std::vector<MachineState *> live;
    std::vector<size_t> liveOut;
    std::vector<std::uint64_t> liveLimit;
    live.reserve(n);
    liveOut.reserve(n);
    liveLimit.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        MachineState &m = *_machines[i];
        m.res.policyName = _labels[i];
        m.res.instrs = m.trace->size();
        m.res.issueWidth = std::uint64_t(m.cfg.pipelineWidth);
        live.push_back(&m);
        liveOut.push_back(i);
        liveLimit.push_back(std::uint64_t(200) * m.trace->size() +
                            1'000'000);
    }
    if (_profile)
        _profile->machines += n;

    auto slot = [this](std::uint64_t StageProfile::*field) {
        return _profile ? &(_profile->*field) : nullptr;
    };

    while (!live.empty()) {
        {
            ScopedNs t(slot(&StageProfile::commitNs));
            for (MachineState *m : live) {
                _commit.unblock(*m);
                _commit.step(*m);
            }
        }
        // Machines whose last instruction just committed finish on
        // this partial cycle (which, as in the scalar loop, does
        // not advance their clock and is not accounted) and drop
        // out of the live set without disturbing the others.
        size_t w = 0;
        for (size_t r = 0; r < live.size(); ++r) {
            MachineState &m = *live[r];
            if (m.commitIdx >= m.trace->size()) {
                m.res.cycles = m.now;
                m.res.icacheMisses = m.hier.l1i().misses();
                m.res.dcacheMisses = m.hier.l1d().misses();
                out[liveOut[r]] = m.res;
                continue;
            }
            live[w] = live[r];
            liveOut[w] = liveOut[r];
            liveLimit[w] = liveLimit[r];
            ++w;
        }
        live.resize(w);
        liveOut.resize(w);
        liveLimit.resize(w);
        if (live.empty())
            break;

        std::span<MachineState *const> ms(live);
        {
            ScopedNs t(slot(&StageProfile::accountingNs));
            for (MachineState *m : live)
                accountCycle(*m);
        }
        {
            ScopedNs t(slot(&StageProfile::divertNs));
            _backend.releaseDiverted(ms);
        }
        {
            ScopedNs t(slot(&StageProfile::issueNs));
            _backend.issue(ms);
        }
        {
            ScopedNs t(slot(&StageProfile::renameNs));
            _rename.step(ms);
        }
        {
            ScopedNs t(slot(&StageProfile::fetchNs));
            _frontend.fetch(ms);  // includes applySpawn per machine
        }
        {
            ScopedNs t(slot(&StageProfile::recoveryNs));
            for (MachineState *m : live)
                _recovery.step(*m);
        }
        for (size_t r = 0; r < live.size(); ++r) {
            MachineState &m = *live[r];
            ++m.now;
            if (m.now > liveLimit[r])
                throwCycleLimit(m, m.res.policyName);
        }
        if (_profile)
            _profile->cycles += live.size();
    }
    return out;
}

} // namespace polyflow::sim

namespace polyflow {

std::vector<TimingResult>
TimingSim::runBatch(const MachineConfig &config,
                    std::span<const BatchItem> items,
                    StageProfile *profile)
{
    sim::MachineBatch batch(config);
    for (const BatchItem &item : items) {
        batch.add(*item.trace, item.source, item.index, item.label,
                  item.events);
    }
    if (profile)
        batch.profileStages(profile);
    return batch.run();
}

} // namespace polyflow
