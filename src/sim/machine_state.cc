#include "sim/machine_state.hh"

#include <stdexcept>

namespace polyflow::sim {

MachineState::MachineState(const MachineConfig &config,
                           const Trace &trace_, SpawnSource *source_,
                           const TraceIndex *sharedIndex)
    : cfg(config), trace(&trace_), source(source_), hier(config),
      gshare(config), depPred(trace_.prog ? trace_.prog->size() : 0)
{
    if (trace_.size() == 0)
        throw std::runtime_error("TimingSim: empty trace");
    istate.resize(trace_.size());

    if (source) {
        if (sharedIndex) {
            index = sharedIndex;
        } else {
            ownedIndex = std::make_unique<TraceIndex>(trace_);
            index = ownedIndex.get();
        }
        feedback.resize(trace_.prog->size());
    }

    Task t0;
    t0.begin = 0;
    t0.end = static_cast<TraceIdx>(trace_.size());
    t0.ras = ReturnAddressStack(config.returnStackEntries);
    // Reserve so that spawning inside the fetch stage never
    // reallocates while a Task reference is live.
    tasks.reserve(size_t(config.numTasks) + 1);
    tasks.push_back(std::move(t0));
}

} // namespace polyflow::sim
