/**
 * @file
 * Commit stage: in-order retirement of the head task, branch-stall
 * release, task retirement with profitability feedback.
 */

#ifndef POLYFLOW_SIM_COMMIT_HH
#define POLYFLOW_SIM_COMMIT_HH

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Commit
{
  public:
    /**
     * Release tasks whose blocking branch resolved: fetch resumes
     * after the mispredict penalty, charged to the Mispredict stall
     * cause. Runs first each cycle so commit sees fresh state.
     */
    void unblock(MachineState &m);

    /**
     * Commit up to pipelineWidth instructions of the head task in
     * trace order; a fully committed task retires its context.
     * Leaves the cycle's commit count in MachineState::cycleCommits
     * for the accounting layer.
     */
    void step(MachineState &m);

  private:
    void retireHead(MachineState &m);
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_COMMIT_HH
