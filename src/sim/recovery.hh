/**
 * @file
 * Recovery stage: dependence-violation handling and task squash.
 * Trains the dependence predictors, rolls the violating task and all
 * younger tasks back to their range starts, and applies squash
 * profitability feedback.
 */

#ifndef POLYFLOW_SIM_RECOVERY_HH
#define POLYFLOW_SIM_RECOVERY_HH

#include <cstddef>

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Recovery
{
  public:
    /**
     * Handle the cycle's pending violations: squash from the oldest
     * violating consumer's task (everything younger gets squashed
     * anyway) and train the corresponding predictor.
     */
    void step(MachineState &m);

    /**
     * Squash the task at @p taskPos and every younger task: reset
     * their instructions to un-fetched, free their ROB share, and
     * restart fetch at the range start after the squash penalty.
     */
    void squashFromTask(MachineState &m, size_t taskPos);
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_RECOVERY_HH
