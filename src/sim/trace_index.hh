/**
 * @file
 * TraceIndex: immutable per-trace lookup structures the timing
 * simulator needs when spawning is enabled. Building them costs one
 * pass over the trace, so the sweep engine computes them once per
 * (workload, scale) and shares them read-only across every
 * concurrent TimingSim on that trace.
 */

#ifndef POLYFLOW_SIM_TRACE_INDEX_HH
#define POLYFLOW_SIM_TRACE_INDEX_HH

#include <cstdint>
#include <vector>

#include "isa/trace.hh"
#include "sim/addr_index.hh"

namespace polyflow {

/**
 * Read-only indexes over one committed trace:
 *
 *  - the per-PC occurrence lists the Task Spawn Unit queries
 *    (AddrIndex), and
 *  - a flat CSR mapping each store to the loads that name it as
 *    memory producer, replacing the old per-sim
 *    unordered_map<TraceIdx, vector<TraceIdx>> with two contiguous
 *    arrays indexed directly by trace position.
 *
 * Consumers of a store i live in
 * consumers[consumerOffsets[i] .. consumerOffsets[i + 1]), in
 * ascending trace order.
 */
class TraceIndex
{
  public:
    explicit TraceIndex(const Trace &trace);

    const AddrIndex &addrIndex() const { return _addr; }

    /** Loads depending on store @p i (empty span for non-stores). */
    struct ConsumerSpan
    {
        const TraceIdx *first;
        const TraceIdx *last;
        const TraceIdx *begin() const { return first; }
        const TraceIdx *end() const { return last; }
        bool empty() const { return first == last; }
    };

    ConsumerSpan
    consumersOf(TraceIdx store) const
    {
        const TraceIdx *base = _consumers.data();
        return {base + _consumerOffsets[store],
                base + _consumerOffsets[store + 1]};
    }

  private:
    AddrIndex _addr;
    std::vector<std::uint32_t> _consumerOffsets;  //!< size()+1
    std::vector<TraceIdx> _consumers;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_TRACE_INDEX_HH
