#include "sim/accounting.hh"

namespace polyflow::sim {

void
accountCycle(MachineState &m)
{
    m.res.slots[static_cast<int>(SlotBucket::Committed)] +=
        std::uint64_t(m.cycleCommits);
    int empty = m.cfg.pipelineWidth - m.cycleCommits;
    if (empty > 0)
        m.res.slots[static_cast<int>(blameBucket(m))] +=
            std::uint64_t(empty);
}

SlotBucket
stallBucket(const Task &t)
{
    switch (t.lastFetchStall) {
      case FetchStall::Mispredict:
        return SlotBucket::FetchMispredict;
      case FetchStall::ICache:
        return SlotBucket::FetchICache;
      case FetchStall::Squash:
        return SlotBucket::SquashRefetch;
      case FetchStall::None:
      case FetchStall::SpawnStartup:
        break;
    }
    return SlotBucket::NoTask;
}

SlotBucket
blameBucket(const MachineState &m)
{
    // Head-of-ROB blame: whatever keeps the oldest uncommitted
    // instruction from committing owns every empty slot this cycle.
    TraceIdx i = m.commitIdx;
    const InstrState &s = m.istate[i];
    const Task &t = m.tasks.front();
    switch (s.stage) {
      case InstrStage::Issued:
      case InstrStage::InSched:
        // In the backend, waiting on operands or exec/memory
        // latency.
        return SlotBucket::Drain;
      case InstrStage::Diverted:
        return SlotBucket::DivertWait;
      case InstrStage::Fetched:
        // In the fetch queue, rename stalled. Mirror the rename
        // stage's stall conditions for the head task (position 0).
        if (s.fetchCycle + m.cfg.frontendDepth > m.now) {
            // Frontend refill after a redirect/stall is part of
            // that stall's cost.
            return stallBucket(t);
        }
        if (!m.robAllowed(0))
            return SlotBucket::RobFull;
        if (m.divertHolds(i, m.trace->instrs[i], t)) {
            if (static_cast<int>(m.divert.size()) >=
                m.cfg.divertEntries) {
                return SlotBucket::DivertWait;
            }
            // Rename ran before the wake-up condition flipped;
            // transient, uncommon.
            return SlotBucket::NoTask;
        }
        if (static_cast<int>(m.sched.size()) >= m.cfg.schedEntries)
            return SlotBucket::SchedulerFull;
        return SlotBucket::NoTask;
      case InstrStage::None:
        // Not even fetched yet.
        if (t.blockedOnBranch != invalidTrace)
            return SlotBucket::FetchMispredict;
        if (t.fetchReady > m.now)
            return stallBucket(t);
        // Fetch bandwidth went to other tasks, or cold start.
        return SlotBucket::NoTask;
      case InstrStage::Committed:
        break;  // unreachable: i is the oldest *uncommitted* instr
    }
    return SlotBucket::NoTask;
}

} // namespace polyflow::sim
