/**
 * @file
 * TimingResult: everything a timing run reports.
 */

#ifndef POLYFLOW_SIM_RESULT_HH
#define POLYFLOW_SIM_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "spawn/spawn_point.hh"

namespace polyflow {

/** One task lifecycle event, for timeline tracing. */
struct TaskEvent
{
    enum class Kind : std::uint8_t { Spawn, Retire, Squash };
    Kind kind;
    std::uint64_t cycle;
    /** Trace range of the task. */
    std::uint32_t begin, end;
    /** Trigger PC that spawned it (invalid for the root task). */
    std::uint64_t triggerPc;
    /** Commit frontier (oldest uncommitted trace index) when the
     *  event fired. A squash may never hit committed work, so
     *  commitFrontier <= begin holds for every Squash event. */
    std::uint64_t commitFrontier = 0;
    /** Instructions this task sent through the divert queue during
     *  the incarnation ending here (Retire/Squash; 0 for Spawn). */
    std::uint32_t diverted = 0;

    bool operator==(const TaskEvent &) const = default;
};

/**
 * Cycle-accounting buckets: every (cycle x issue-slot) of a run is
 * attributed to exactly one of these. Slots that retire an
 * instruction are Committed; empty slots are blamed on whatever is
 * holding back the oldest uncommitted instruction (head-of-ROB
 * blame, in the style of top-down cycle accounting). The taxonomy
 * and the decision tree are documented in docs/OBSERVABILITY.md.
 */
enum class SlotBucket : std::uint8_t {
    Committed,        //!< slot retired an instruction
    FetchMispredict,  //!< head fetch stalled on an unresolved or
                      //!< just-resolved branch mispredict
    FetchICache,      //!< head fetch waiting on an icache miss
    DivertWait,       //!< head serialized in the divert queue (or
                      //!< rename blocked by a full divert queue)
    SchedulerFull,    //!< head fetched, scheduler has no free entry
    RobFull,          //!< head fetched, ROB has no free entry
    SquashRefetch,    //!< head task restarting after a violation
                      //!< squash
    NoTask,           //!< head not yet fetched and no classified
                      //!< stall: cold start, context startup, or
                      //!< fetch bandwidth spent on other tasks
    Drain,            //!< head in the backend (scheduler or FU)
                      //!< waiting on operands or latency
    NumBuckets,
};

constexpr int numSlotBuckets =
    static_cast<int>(SlotBucket::NumBuckets);

/** Stable display/export name of a bucket. */
inline const char *
slotBucketName(SlotBucket b)
{
    switch (b) {
      case SlotBucket::Committed: return "committed";
      case SlotBucket::FetchMispredict:
        return "fetch-stall:mispredict";
      case SlotBucket::FetchICache: return "fetch-stall:icache";
      case SlotBucket::DivertWait: return "divert-wait";
      case SlotBucket::SchedulerFull: return "scheduler-full";
      case SlotBucket::RobFull: return "rob-full";
      case SlotBucket::SquashRefetch: return "squash-refetch";
      case SlotBucket::NoTask: return "no-task";
      case SlotBucket::Drain: return "drain";
      case SlotBucket::NumBuckets: break;
    }
    return "?";
}

/** Aggregate statistics from one timing-simulator run. */
struct TimingResult
{
    std::string policyName;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;

    /** @name Cycle accounting @{ */
    /** Issue slots per cycle (the run's pipelineWidth). */
    std::uint64_t issueWidth = 0;
    /**
     * Issue slots attributed to each SlotBucket. The accounting
     * identity — enforced by tests/test_accounting.cc on curated
     * and fuzzed programs alike — is
     *
     *     sum(slots) == cycles * issueWidth
     *
     * (the final partial cycle, which commits the last instructions
     * and does not advance the cycle counter, is not accounted).
     */
    std::array<std::uint64_t, numSlotBuckets> slots{};

    /** Sum over all buckets (== cycles * issueWidth). */
    std::uint64_t
    slotTotal() const
    {
        std::uint64_t s = 0;
        for (std::uint64_t v : slots)
            s += v;
        return s;
    }

    /** Share of all issue slots in @p b, in percent. */
    double
    slotPercent(SlotBucket b) const
    {
        std::uint64_t total = slotTotal();
        return total ? 100.0 *
                double(slots[static_cast<int>(b)]) / double(total)
                     : 0.0;
    }
    /** @} */

    /** @name Task spawning @{ */
    std::uint64_t spawns = 0;
    std::array<std::uint64_t, numSpawnKinds> spawnsByKind{};
    std::uint64_t spawnsSkippedNoContext = 0;
    std::uint64_t spawnsSkippedDistance = 0;
    std::uint64_t spawnsSkippedFeedback = 0;
    std::uint64_t triggersDisabled = 0;
    std::uint64_t tasksRetired = 0;
    /** @} */

    /** @name Squashes and synchronization @{ */
    std::uint64_t violations = 0;
    std::uint64_t tasksSquashed = 0;
    std::uint64_t instrsDiverted = 0;
    std::uint64_t divertQueueFullStalls = 0;
    /** @} */

    /** @name Front end @{ */
    std::uint64_t condBranches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t returnMispredicts = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    /** @} */

    /** Memberwise equality — every counter, bucket and label. The
     *  batched-equals-scalar tests compare entire results with
     *  this. */
    bool operator==(const TimingResult &) const = default;

    double
    ipc() const
    {
        return cycles ? double(instrs) / double(cycles) : 0.0;
    }

    /** Percent speedup of this run over @p baseline. */
    double
    speedupOver(const TimingResult &baseline) const
    {
        if (cycles == 0)
            return 0.0;
        return 100.0 *
            (double(baseline.cycles) / double(cycles) - 1.0);
    }
};

} // namespace polyflow

#endif // POLYFLOW_SIM_RESULT_HH
