/**
 * @file
 * SimResult: everything a timing run reports.
 */

#ifndef POLYFLOW_SIM_RESULT_HH
#define POLYFLOW_SIM_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "spawn/spawn_point.hh"

namespace polyflow {

/** One task lifecycle event, for timeline tracing. */
struct TaskEvent
{
    enum class Kind : std::uint8_t { Spawn, Retire, Squash };
    Kind kind;
    std::uint64_t cycle;
    /** Trace range of the task. */
    std::uint32_t begin, end;
    /** Trigger PC that spawned it (invalid for the root task). */
    std::uint64_t triggerPc;
};

/** Aggregate statistics from one timing-simulator run. */
struct SimResult
{
    std::string policyName;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;

    /** @name Task spawning @{ */
    std::uint64_t spawns = 0;
    std::array<std::uint64_t, numSpawnKinds> spawnsByKind{};
    std::uint64_t spawnsSkippedNoContext = 0;
    std::uint64_t spawnsSkippedDistance = 0;
    std::uint64_t spawnsSkippedFeedback = 0;
    std::uint64_t triggersDisabled = 0;
    std::uint64_t tasksRetired = 0;
    /** @} */

    /** @name Squashes and synchronization @{ */
    std::uint64_t violations = 0;
    std::uint64_t tasksSquashed = 0;
    std::uint64_t instrsDiverted = 0;
    std::uint64_t divertQueueFullStalls = 0;
    /** @} */

    /** @name Front end @{ */
    std::uint64_t condBranches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t returnMispredicts = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;
    /** @} */

    double
    ipc() const
    {
        return cycles ? double(instrs) / double(cycles) : 0.0;
    }

    /** Percent speedup of this run over @p baseline. */
    double
    speedupOver(const SimResult &baseline) const
    {
        if (cycles == 0)
            return 0.0;
        return 100.0 *
            (double(baseline.cycles) / double(cycles) - 1.0);
    }
};

} // namespace polyflow

#endif // POLYFLOW_SIM_RESULT_HH
