#include "sim/commit.hh"

#include <algorithm>

namespace polyflow::sim {

void
Commit::unblock(MachineState &m)
{
    for (Task &t : m.tasks) {
        if (t.blockedOnBranch == invalidTrace)
            continue;
        TraceIdx b = t.blockedOnBranch;
        const InstrState &s = m.istate[b];
        bool resolved = s.stage == InstrStage::Committed ||
            (s.stage == InstrStage::Issued &&
             s.completeCycle <= m.now);
        if (resolved) {
            std::uint64_t resume = std::max(
                s.fetchCycle + m.cfg.minMispredictPenalty,
                std::max(s.completeCycle, m.now) + 1);
            t.fetchReady = std::max(t.fetchReady, resume);
            t.blockedOnBranch = invalidTrace;
            t.lastFetchStall = FetchStall::Mispredict;
            t.curFetchLine = invalidAddr;  // redirected fetch
        }
    }
}

void
Commit::step(MachineState &m)
{
    int n = 0;
    while (n < m.cfg.pipelineWidth &&
           m.commitIdx < m.trace->size()) {
        InstrState &s = m.istate[m.commitIdx];
        if (s.stage != InstrStage::Issued ||
            s.completeCycle > m.now) {
            break;
        }
        s.stage = InstrStage::Committed;
        if (m.source) {
            m.source->onCommit(m.staticOf(m.commitIdx),
                               m.trace->instrs[m.commitIdx].taken);
        }
        Task &head = m.tasks.front();
        --head.robHeld;
        --head.inflight;
        --m.robUsed;
        ++m.commitIdx;
        ++n;
        if (m.commitIdx == head.end)
            retireHead(m);
    }
    m.cycleCommits = n;
}

void
Commit::retireHead(MachineState &m)
{
    ++m.res.tasksRetired;
    const Task &t = m.tasks.front();
    if (m.events) {
        m.events->push_back({TaskEvent::Kind::Retire, m.now,
                             t.begin, t.end, t.triggerPc,
                             m.commitIdx, t.divertedCount});
    }
    // Profitability feedback (paper Section 3.1): a task most of
    // whose instructions had to synchronize on older tasks added
    // overhead without overlap; stop spawning from triggers that
    // keep producing such tasks.
    if (m.cfg.spawnFeedback && t.triggerPc != invalidAddr) {
        TriggerFeedback &fb = m.feedbackOf(t);
        std::uint64_t size = t.end - t.begin;
        if (t.divertedCount * 100 >=
            size * std::uint64_t(m.cfg.feedbackDivertPercent)) {
            ++fb.unprofitable;
        } else {
            ++fb.profitable;
        }
        if (fb.unprofitable >= m.cfg.feedbackMinUnprofitable &&
            fb.unprofitable >= 2 * fb.profitable && !fb.disabled) {
            fb.disabled = true;
            ++m.res.triggersDisabled;
        }
    }
    m.tasks.erase(m.tasks.begin());
}

} // namespace polyflow::sim
