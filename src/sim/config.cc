#include "sim/config.hh"

#include <sstream>

namespace polyflow {

std::string
MachineConfig::describe() const
{
    std::ostringstream os;
    os << "pipeline width " << pipelineWidth << ", tasks " << numTasks
       << ", ROB " << robEntries << ", scheduler " << schedEntries
       << ", divert queue " << divertEntries << ", FUs " << numFUs
       << ", gshare " << (gshareCounters * 2 / 1024) << "Kbit/"
       << historyBits << "b hist"
       << ", L1I " << l1i.sizeBytes / 1024 << "KB/" << l1i.assoc
       << "way/" << l1i.lineBytes << "B"
       << ", L1D " << l1d.sizeBytes / 1024 << "KB/" << l1d.assoc
       << "way/" << l1d.lineBytes << "B"
       << ", L2 " << l2.sizeBytes / 1024 << "KB/" << l2.assoc
       << "way/" << l2.lineBytes << "B";
    return os.str();
}

} // namespace polyflow
