#include "sim/core.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace polyflow {

TimingSim::TimingSim(const MachineConfig &config, const Trace &trace,
                     SpawnSource *source,
                     const TraceIndex *sharedIndex)
    : _cfg(config), _trace(&trace), _source(source), _hier(config),
      _gshare(config)
{
    if (trace.size() == 0)
        throw std::runtime_error("TimingSim: empty trace");
    _state.resize(trace.size());

    if (_source) {
        if (sharedIndex) {
            _index = sharedIndex;
        } else {
            _ownedIndex = std::make_unique<TraceIndex>(trace);
            _index = _ownedIndex.get();
        }
    }

    Task t0;
    t0.begin = 0;
    t0.end = static_cast<TraceIdx>(trace.size());
    t0.ras = ReturnAddressStack(config.returnStackEntries);
    // Reserve so that spawning inside fetchPhase never reallocates
    // while a Task reference is live.
    _tasks.reserve(size_t(config.numTasks) + 1);
    _tasks.push_back(std::move(t0));
}

TimingSim::Task *
TimingSim::taskOf(TraceIdx i)
{
    // Tasks carve disjoint ranges out of the trace and stay sorted
    // by begin (spawns only split a task's own tail), so the owner
    // is the last task starting at or before i.
    auto it = std::upper_bound(
        _tasks.begin(), _tasks.end(), i,
        [](TraceIdx v, const Task &t) { return v < t.begin; });
    if (it == _tasks.begin())
        return nullptr;
    --it;
    return i < it->end ? &*it : nullptr;
}

size_t
TimingSim::taskPosOf(TraceIdx i) const
{
    auto it = std::upper_bound(
        _tasks.begin(), _tasks.end(), i,
        [](TraceIdx v, const Task &t) { return v < t.begin; });
    if (it != _tasks.begin()) {
        --it;
        if (i < it->end)
            return static_cast<size_t>(it - _tasks.begin());
    }
    throw std::runtime_error("taskPosOf: index not in any task");
}

bool
TimingSim::robAllowed(size_t taskPos) const
{
    // Younger tasks leave headroom so the head task can always make
    // progress toward in-order commit (deadlock freedom; DESIGN.md).
    int reserve =
        _cfg.robReservePerOlderTask * static_cast<int>(taskPos);
    return _robUsed < _cfg.robEntries - reserve;
}

int
TimingSim::execLatency(const LinkedInstr &li) const
{
    switch (li.instr.op) {
      case Opcode::MUL:
        return _cfg.mulLatency;
      case Opcode::DIVU:
      case Opcode::REMU:
        return _cfg.divLatency;
      default:
        return _cfg.intLatency;
    }
}

bool
TimingSim::divertHolds(TraceIdx i, const DynInstr &d,
                       const Task &t) const
{
    // An instruction synchronizes (stays diverted) while a producer
    // it is predicted to depend on has not been renamed yet.
    // Same-task producers are always synchronized: in-order rename
    // has seen them, and following them into the divert queue keeps
    // the scheduler free of entries that could never wake up
    // (deadlock freedom; see DESIGN.md). Cross-task register
    // producers are synchronized only when the rename-stage
    // dependence predictor says so; otherwise the consumer
    // speculates and may trigger a violation at issue.
    const LinkedInstr &li = staticOf(i);
    RegId srcs[2];
    int nsrc = li.instr.srcRegs(srcs);
    for (int k = 0; k < nsrc; ++k) {
        TraceIdx p = d.prod[k];
        if (p == invalidTrace)
            continue;
        bool same_task = p >= t.begin;
        if (same_task) {
            // Same-task values flow through the scheduler normally;
            // divert only while the producer is not yet renamed
            // (it may itself sit in the divert queue).
            if (_state[p].stage < Stage::InSched)
                return true;
            continue;
        }
        bool hinted = _cfg.compilerDepHints &&
            ((t.depMask >> srcs[k]) & 1);
        if ((hinted || _regPred.predictsDependence(li.addr)) &&
            _state[p].stage < Stage::Issued) {
            // Synchronized consumers re-enter rename once the
            // producer has issued ("some time after its producer
            // has been dispatched", paper Section 3.1); the
            // scheduler's normal wakeup covers the rest.
            return true;
        }
    }
    if (loadSyncNeeded(i, d, t) && !doneAt(d.memProd, _now))
        return true;
    return false;
}

bool
TimingSim::loadSyncNeeded(TraceIdx i, const DynInstr &d,
                          const Task &t) const
{
    if (!staticOf(i).instr.isLoad() || d.memProd == invalidTrace)
        return false;
    if (_state[d.memProd].stage == Stage::Committed)
        return false;
    bool same_task = d.memProd >= t.begin;
    return same_task ||
        _storeSets.predictsDependence(staticOf(i).addr);
}

void
TimingSim::unblockTasks()
{
    for (Task &t : _tasks) {
        if (t.blockedOnBranch == invalidTrace)
            continue;
        TraceIdx b = t.blockedOnBranch;
        const InstrState &s = _state[b];
        bool resolved = s.stage == Stage::Committed ||
            (s.stage == Stage::Issued && s.completeCycle <= _now);
        if (resolved) {
            std::uint64_t resume = std::max(
                s.fetchCycle + _cfg.minMispredictPenalty,
                std::max(s.completeCycle, _now) + 1);
            t.fetchReady = std::max(t.fetchReady, resume);
            t.blockedOnBranch = invalidTrace;
            t.lastFetchStall = FetchStall::Mispredict;
            t.curFetchLine = invalidAddr;  // redirected fetch
        }
    }
}

void
TimingSim::accountCycle()
{
    _res.slots[static_cast<int>(SlotBucket::Committed)] +=
        std::uint64_t(_cycleCommits);
    int empty = _cfg.pipelineWidth - _cycleCommits;
    if (empty > 0)
        _res.slots[static_cast<int>(blameBucket())] +=
            std::uint64_t(empty);
}

SlotBucket
TimingSim::stallBucket(const Task &t)
{
    switch (t.lastFetchStall) {
      case FetchStall::Mispredict:
        return SlotBucket::FetchMispredict;
      case FetchStall::ICache:
        return SlotBucket::FetchICache;
      case FetchStall::Squash:
        return SlotBucket::SquashRefetch;
      case FetchStall::None:
      case FetchStall::SpawnStartup:
        break;
    }
    return SlotBucket::NoTask;
}

SlotBucket
TimingSim::blameBucket() const
{
    // Head-of-ROB blame: whatever keeps the oldest uncommitted
    // instruction from committing owns every empty slot this cycle.
    TraceIdx i = _commitIdx;
    const InstrState &s = _state[i];
    const Task &t = _tasks.front();
    switch (s.stage) {
      case Stage::Issued:
      case Stage::InSched:
        // In the backend, waiting on operands or exec/memory
        // latency.
        return SlotBucket::Drain;
      case Stage::Diverted:
        return SlotBucket::DivertWait;
      case Stage::Fetched:
        // In the fetch queue, rename stalled. Mirror renamePhase's
        // stall conditions for the head task (position 0).
        if (s.fetchCycle + _cfg.frontendDepth > _now) {
            // Frontend refill after a redirect/stall is part of
            // that stall's cost.
            return stallBucket(t);
        }
        if (!robAllowed(0))
            return SlotBucket::RobFull;
        if (divertHolds(i, _trace->instrs[i], t)) {
            if (static_cast<int>(_divert.size()) >=
                _cfg.divertEntries) {
                return SlotBucket::DivertWait;
            }
            // Rename ran before the wake-up condition flipped;
            // transient, uncommon.
            return SlotBucket::NoTask;
        }
        if (static_cast<int>(_sched.size()) >= _cfg.schedEntries)
            return SlotBucket::SchedulerFull;
        return SlotBucket::NoTask;
      case Stage::None:
        // Not even fetched yet.
        if (t.blockedOnBranch != invalidTrace)
            return SlotBucket::FetchMispredict;
        if (t.fetchReady > _now)
            return stallBucket(t);
        // Fetch bandwidth went to other tasks, or cold start.
        return SlotBucket::NoTask;
      case Stage::Committed:
        break;  // unreachable: i is the oldest *uncommitted* instr
    }
    return SlotBucket::NoTask;
}

void
TimingSim::commitPhase()
{
    int n = 0;
    while (n < _cfg.pipelineWidth &&
           _commitIdx < _trace->size()) {
        InstrState &s = _state[_commitIdx];
        if (s.stage != Stage::Issued || s.completeCycle > _now)
            break;
        s.stage = Stage::Committed;
        if (_source) {
            _source->onCommit(staticOf(_commitIdx),
                              _trace->instrs[_commitIdx].taken);
        }
        Task &head = _tasks.front();
        --head.robHeld;
        --head.inflight;
        --_robUsed;
        ++_commitIdx;
        ++n;
        if (_commitIdx == head.end)
            retireHead();
    }
    _cycleCommits = n;
}

void
TimingSim::retireHead()
{
    ++_res.tasksRetired;
    const Task &t = _tasks.front();
    if (_events) {
        _events->push_back({TaskEvent::Kind::Retire, _now, t.begin,
                            t.end, t.triggerPc, _commitIdx,
                            t.divertedCount});
    }
    // Profitability feedback (paper Section 3.1): a task most of
    // whose instructions had to synchronize on older tasks added
    // overhead without overlap; stop spawning from triggers that
    // keep producing such tasks.
    if (_cfg.spawnFeedback && t.triggerPc != invalidAddr) {
        Feedback &fb = _feedback[t.triggerPc];
        std::uint64_t size = t.end - t.begin;
        if (t.divertedCount * 100 >=
            size * std::uint64_t(_cfg.feedbackDivertPercent)) {
            ++fb.unprofitable;
        } else {
            ++fb.profitable;
        }
        if (fb.unprofitable >= _cfg.feedbackMinUnprofitable &&
            fb.unprofitable >= 2 * fb.profitable) {
            _disabledTriggers.insert(t.triggerPc);
        }
    }
    _tasks.erase(_tasks.begin());
}

void
TimingSim::releaseDiverted()
{
    int budget = _cfg.pipelineWidth;
    for (auto it = _divert.begin();
         it != _divert.end() && budget > 0;) {
        TraceIdx i = it->idx;
        if (_state[i].stage != Stage::Diverted) {
            it = _divert.erase(it);  // squashed while diverted
            continue;
        }
        size_t pos = taskPosOf(i);
        Task &t = _tasks[pos];
        const DynInstr &d = _trace->instrs[i];

        if (divertHolds(i, d, t)) {
            it->readyAt = 0;  // wake-up condition not met (yet)
            ++it;
            continue;
        }
        // Condition holds: model the FIFO re-dispatch latency. The
        // ROB entry was already allocated when the instruction
        // entered the divert queue (holding it there is what makes
        // in-order commit deadlock-free; see DESIGN.md).
        if (it->readyAt == 0)
            it->readyAt = _now + _cfg.divertReleaseDelay;
        if (_now >= it->readyAt &&
            static_cast<int>(_sched.size()) < _cfg.schedEntries) {
            _state[i].stage = Stage::InSched;
            _sched.push_back(i);
            --budget;
            it = _divert.erase(it);
        } else {
            ++it;
        }
    }
}

void
TimingSim::issuePhase()
{
    std::sort(_sched.begin(), _sched.end());
    int fu = _cfg.numFUs;
    for (auto it = _sched.begin(); it != _sched.end() && fu > 0;) {
        TraceIdx i = *it;
        InstrState &s = _state[i];
        if (s.stage != Stage::InSched) {
            it = _sched.erase(it);  // squashed while scheduled
            continue;
        }
        const DynInstr &d = _trace->instrs[i];
        const LinkedInstr &li = staticOf(i);
        Task *t = taskOf(i);

        // Register operands: synchronized producers must be
        // complete; an unsynchronized (unpredicted) cross-task
        // producer lets the consumer issue with a stale value,
        // which is a dependence violation.
        bool ready = true;
        bool staleRegRead = false;
        RegId srcs[2];
        int nsrc = li.instr.srcRegs(srcs);
        for (int k = 0; k < nsrc; ++k) {
            TraceIdx p = d.prod[k];
            if (p == invalidTrace || doneAt(p, _now))
                continue;
            bool same_task = t && p >= t->begin;
            bool hinted = t && _cfg.compilerDepHints &&
                ((t->depMask >> srcs[k]) & 1);
            if (same_task || hinted ||
                _regPred.predictsDependence(li.addr)) {
                ready = false;
            } else {
                staleRegRead = true;
            }
        }

        // Memory ordering for loads.
        bool speculativeLoad = false;
        if (ready && li.instr.isLoad() &&
            d.memProd != invalidTrace &&
            _state[d.memProd].stage != Stage::Committed) {
            if (t && loadSyncNeeded(i, d, *t)) {
                if (!doneAt(d.memProd, _now))
                    ready = false;
            } else if (!doneAt(d.memProd, _now)) {
                // Unsynchronized cross-task load issuing before the
                // conflicting store has produced its data.
                speculativeLoad = true;
            }
        }

        if (!ready) {
            ++it;
            continue;
        }
        if (staleRegRead)
            _pendingViolations.push_back({i, invalidTrace});

        // Issue.
        s.stage = Stage::Issued;
        if (li.instr.isLoad()) {
            int lat = _hier.accessData(d.effAddr);
            s.completeCycle = _now + _cfg.loadLatency + (lat - 1);
        } else if (li.instr.isStore()) {
            _hier.accessData(d.effAddr);
            s.completeCycle = _now + 1;
            // A store executing after dependent cross-task loads
            // have already issued is a dependence violation.
            if (_index) {
                Task *st = taskOf(i);
                for (TraceIdx l : _index->consumersOf(i)) {
                    if (_state[l].stage == Stage::Issued &&
                        (!st || l >= st->end)) {
                        _pendingViolations.push_back({l, i});
                    }
                }
            }
        } else {
            s.completeCycle = _now + execLatency(li);
        }
        if (speculativeLoad &&
            _state[d.memProd].stage == Stage::Issued &&
            _state[d.memProd].completeCycle > _now) {
            // Load read stale data while the store is in flight.
            _pendingViolations.push_back({i, d.memProd});
        }
        it = _sched.erase(it);
        --fu;
    }
}

void
TimingSim::renamePhase()
{
    int budget = _cfg.pipelineWidth;
    for (size_t pos = 0; pos < _tasks.size() && budget > 0; ++pos) {
        Task &t = _tasks[pos];
        while (budget > 0 && t.dispIdx < t.fetchIdx) {
            TraceIdx i = t.dispIdx;
            InstrState &s = _state[i];
            if (s.fetchCycle + _cfg.frontendDepth > _now)
                break;
            const DynInstr &d = _trace->instrs[i];
            const LinkedInstr &li = staticOf(i);

            if (divertHolds(i, d, t)) {
                if (static_cast<int>(_divert.size()) >=
                        _cfg.divertEntries ||
                    !robAllowed(pos)) {
                    if (static_cast<int>(_divert.size()) >=
                        _cfg.divertEntries) {
                        ++_res.divertQueueFullStalls;
                    }
                    break;
                }
                s.stage = Stage::Diverted;
                _divert.push_back({i, 0});
                ++_robUsed;
                ++t.robHeld;
                ++t.dispIdx;
                ++t.divertedCount;
                --budget;
                ++_res.instrsDiverted;
            } else {
                if (static_cast<int>(_sched.size()) >=
                        _cfg.schedEntries ||
                    !robAllowed(pos)) {
                    break;
                }
                s.stage = Stage::InSched;
                _sched.push_back(i);
                ++_robUsed;
                ++t.robHeld;
                ++t.dispIdx;
                --budget;
            }
        }
    }
}

void
TimingSim::maybeSpawn(Task &t, TraceIdx i, const LinkedInstr &li)
{
    if (!_source)
        return;
    bool isTail = &t == &_tasks.back();
    if (!_cfg.spawnFromAnyTask && !isTail)
        return;  // only the tail task may spawn (paper baseline)
    if (_pending.valid)
        return;  // one spawn-unit port per cycle
    std::erase_if(_ghosts,
                  [&](std::uint64_t e) { return e <= _now; });
    if (static_cast<int>(_tasks.size() + _ghosts.size()) >=
        _cfg.numTasks) {
        ++_res.spawnsSkippedNoContext;
        return;
    }
    auto hint = _source->query(li);
    if (!hint)
        return;
    if (_cfg.spawnFeedback && _disabledTriggers.count(li.addr)) {
        ++_res.spawnsSkippedFeedback;
        return;
    }
    TraceIdx j = _index->addrIndex().nextOccurrence(hint->targetPc, i);
    if (j == invalidTrace || j >= t.end)
        return;
    std::uint32_t dist = j - i;
    if (dist < _cfg.minSpawnDistance ||
        dist > _cfg.maxSpawnDistance) {
        ++_res.spawnsSkippedDistance;
        return;
    }

    // Truncate the parent immediately (its fetch must stop at the
    // new boundary this cycle); the context allocation is applied
    // after fetch finishes so task positions stay stable during
    // the fetch loop.
    _pending.valid = true;
    _pending.parentBegin = t.begin;
    _pending.start = j;
    _pending.end = t.end;
    _pending.hint = *hint;
    _pending.triggerPc = li.addr;
    _pending.ghr = t.ghr;
    _pending.ras = t.ras;
    t.end = j;
}

void
TimingSim::applyPendingSpawn()
{
    if (!_pending.valid)
        return;
    _pending.valid = false;
    // Re-find the parent (it cannot have retired mid-cycle: its
    // fetch was active this cycle, so it still has uncommitted
    // instructions).
    for (size_t pos = 0; pos < _tasks.size(); ++pos) {
        Task &t = _tasks[pos];
        if (t.begin != _pending.parentBegin ||
            t.end != _pending.start) {
            continue;
        }
        Task nt;
        nt.begin = _pending.start;
        nt.end = _pending.end;
        nt.fetchIdx = nt.dispIdx = nt.begin;
        nt.fetchReady = _now + _cfg.spawnStartupDelay;
        nt.lastFetchStall = FetchStall::SpawnStartup;
        nt.ghr = _pending.ghr;
        nt.ras = _pending.ras;
        nt.triggerPc = _pending.triggerPc;
        nt.depMask = _pending.hint.depMask;
        if (_events) {
            _events->push_back({TaskEvent::Kind::Spawn, _now,
                                nt.begin, nt.end, nt.triggerPc,
                                _commitIdx, 0});
        }
        _tasks.insert(_tasks.begin() + pos + 1, std::move(nt));
        ++_res.spawns;
        ++_res.spawnsByKind[static_cast<int>(_pending.hint.kind)];
        ++_feedback[_pending.triggerPc].spawns;
        return;
    }
}

void
TimingSim::fetchPhase()
{
    // Eligible tasks, scheduled by biased ICount: fewest in-flight
    // instructions first, biased toward older tasks.
    std::vector<size_t> eligible;
    for (size_t pos = 0; pos < _tasks.size(); ++pos) {
        Task &t = _tasks[pos];
        if (t.fetchIdx >= t.end || t.fetchReady > _now ||
            t.blockedOnBranch != invalidTrace)
            continue;
        if (static_cast<int>(t.fetchIdx - t.dispIdx) >=
            _cfg.fetchQueueEntries)
            continue;
        eligible.push_back(pos);
    }
    std::sort(eligible.begin(), eligible.end(),
              [&](size_t a, size_t b) {
                  // ICount over front-end occupancy (fetched but
                  // not yet renamed), biased toward older tasks.
                  auto key = [&](size_t p) {
                      const Task &tk = _tasks[p];
                      return static_cast<long long>(tk.fetchIdx -
                                                    tk.dispIdx) +
                          static_cast<long long>(_cfg.icountAgeBias) *
                          static_cast<long long>(p);
                  };
                  long long ka = key(a), kb = key(b);
                  return ka != kb ? ka < kb : a < b;
              });

    int totalBudget = _cfg.pipelineWidth;
    int tasksFetched = 0;
    for (size_t pos : eligible) {
        if (tasksFetched >= _cfg.fetchTasksPerCycle ||
            totalBudget <= 0)
            break;
        ++tasksFetched;
        Task &t = _tasks[pos];
        int taken = 0;
        while (totalBudget > 0 && t.fetchIdx < t.end &&
               t.fetchReady <= _now &&
               t.blockedOnBranch == invalidTrace &&
               static_cast<int>(t.fetchIdx - t.dispIdx) <
                   _cfg.fetchQueueEntries) {
            TraceIdx i = t.fetchIdx;
            const LinkedInstr &li = staticOf(i);
            const DynInstr &d = _trace->instrs[i];

            // Instruction cache.
            Addr line = li.addr / Addr(_cfg.l1i.lineBytes);
            if (line != t.curFetchLine) {
                int lat = _hier.accessInstr(li.addr);
                t.curFetchLine = line;
                if (lat > 1) {
                    t.fetchReady = _now + lat;
                    t.lastFetchStall = FetchStall::ICache;
                    break;
                }
            }

            _state[i].stage = Stage::Fetched;
            _state[i].fetchCycle = _now;
            ++t.fetchIdx;
            ++t.inflight;
            --totalBudget;

            const Instruction &in = li.instr;
            bool mispredict = false;
            if (in.isCondBranch()) {
                ++_res.condBranches;
                bool pred = _gshare.predict(li.addr, t.ghr);
                _gshare.update(li.addr, t.ghr, d.taken);
                t.ghr = _gshare.shiftHistory(t.ghr, d.taken);
                if (pred != d.taken) {
                    ++_res.branchMispredicts;
                    mispredict = true;
                }
            } else if (in.isCall()) {
                t.ras.push(li.addr + instrBytes);
                if (in.op == Opcode::JALR) {
                    Addr p = _indirect.predict(li.addr);
                    _indirect.update(li.addr, d.effAddr);
                    if (p != d.effAddr) {
                        ++_res.indirectMispredicts;
                        mispredict = true;
                    }
                }
            } else if (in.isReturn()) {
                Addr p = t.ras.pop();
                if (p != d.effAddr) {
                    ++_res.returnMispredicts;
                    mispredict = true;
                }
            } else if (in.isIndirectJump()) {
                Addr p = _indirect.predict(li.addr);
                _indirect.update(li.addr, d.effAddr);
                if (p != d.effAddr) {
                    ++_res.indirectMispredicts;
                    mispredict = true;
                }
            }

            maybeSpawn(t, i, li);

            if (mispredict) {
                t.blockedOnBranch = i;
                // Wrong-path fetch past this branch would have
                // spawned bogus tasks; hold a context hostage until
                // the branch resolves (squash of the ghost task).
                if (_source && _cfg.wrongPathGhosts &&
                    static_cast<int>(_tasks.size() +
                                     _ghosts.size()) <
                        _cfg.numTasks) {
                    _ghosts.push_back(
                        _now + _cfg.minMispredictPenalty);
                }
                break;
            }
            if (d.taken) {
                t.curFetchLine = invalidAddr;  // fetch redirect
                if (++taken >= _cfg.maxTakenPerTaskCycle)
                    break;
            }
        }
    }
}

void
TimingSim::processViolations()
{
    if (_pendingViolations.empty())
        return;
    // Handle the oldest violating load; everything younger gets
    // squashed anyway.
    auto v = *std::min_element(
        _pendingViolations.begin(), _pendingViolations.end(),
        [](const Violation &a, const Violation &b) {
            return a.consumer < b.consumer;
        });
    _pendingViolations.clear();

    // The consumer may already have been squashed meanwhile.
    if (_state[v.consumer].stage == Stage::None)
        return;

    ++_res.violations;
    if (v.store == invalidTrace) {
        _regPred.recordViolation(staticOf(v.consumer).addr);
    } else {
        _storeSets.recordViolation(staticOf(v.consumer).addr,
                                   staticOf(v.store).addr);
    }
    squashFromTask(taskPosOf(v.consumer));
}

void
TimingSim::squashFromTask(size_t taskPos)
{
    for (size_t pos = taskPos; pos < _tasks.size(); ++pos) {
        Task &t = _tasks[pos];
        for (TraceIdx i = t.begin; i < t.end; ++i) {
            if (_state[i].stage != Stage::None)
                _state[i] = InstrState{};
        }
        _robUsed -= t.robHeld;
        t.robHeld = 0;
        t.inflight = 0;
        t.fetchIdx = t.dispIdx = t.begin;
        if (_events) {
            _events->push_back({TaskEvent::Kind::Squash, _now,
                                t.begin, t.end, t.triggerPc,
                                _commitIdx, t.divertedCount});
        }
        t.divertedCount = 0;
        t.fetchReady = _now + _cfg.squashRestartPenalty;
        t.lastFetchStall = FetchStall::Squash;
        t.blockedOnBranch = invalidTrace;
        t.curFetchLine = invalidAddr;
        ++_res.tasksSquashed;
        if (_cfg.spawnFeedback && t.triggerPc != invalidAddr) {
            Feedback &fb = _feedback[t.triggerPc];
            ++fb.squashes;
            if (fb.squashes >= _cfg.feedbackMinSquashes &&
                fb.squashes * 4 >= fb.spawns) {
                _disabledTriggers.insert(t.triggerPc);
            }
        }
    }
    // Purge squashed entries from the structures lazily; the stage
    // check in each phase discards them. Clean the scheduler now so
    // capacity frees immediately.
    std::erase_if(_sched, [&](TraceIdx i) {
        return _state[i].stage != Stage::InSched;
    });
    std::erase_if(_divert, [&](const DivertEntry &e) {
        return _state[e.idx].stage != Stage::Diverted;
    });
}

TimingResult
TimingSim::run(const std::string &policyName)
{
    if (_ran)
        throw std::runtime_error("TimingSim::run called twice");
    _ran = true;
    _res.policyName = policyName;
    _res.instrs = _trace->size();
    _res.issueWidth = std::uint64_t(_cfg.pipelineWidth);

    const std::uint64_t cycleLimit =
        std::uint64_t(200) * _trace->size() + 1'000'000;

    while (_commitIdx < _trace->size()) {
        unblockTasks();
        commitPhase();
        if (_commitIdx >= _trace->size())
            break;
        // Attribute this cycle's issue slots while the post-commit
        // state is fresh; the final partial cycle (break above)
        // does not advance _now and is not accounted, keeping the
        // identity sum(slots) == cycles * issueWidth exact.
        accountCycle();
        releaseDiverted();
        issuePhase();
        renamePhase();
        fetchPhase();
        applyPendingSpawn();
        processViolations();
        ++_now;
        if (_now > cycleLimit) {
            std::string msg =
                "TimingSim: cycle limit exceeded (deadlock?) at "
                "commitIdx " + std::to_string(_commitIdx) +
                " stage=" +
                std::to_string(int(_state[_commitIdx].stage)) +
                " sched=" + std::to_string(_sched.size()) +
                " divert=" + std::to_string(_divert.size()) +
                " rob=" + std::to_string(_robUsed) + " tasks=[";
            for (const Task &t : _tasks) {
                msg += "(" + std::to_string(t.begin) + "," +
                    std::to_string(t.end) + ",f" +
                    std::to_string(t.fetchIdx) + ",d" +
                    std::to_string(t.dispIdx) + ",blk" +
                    std::to_string(
                        t.blockedOnBranch == invalidTrace
                            ? -1 : int(t.blockedOnBranch)) +
                    ",rdy" + std::to_string(t.fetchReady) + ")";
            }
            msg += "]";
            throw std::runtime_error(msg);
        }
    }

    _res.cycles = _now;
    _res.triggersDisabled = _disabledTriggers.size();
    _res.icacheMisses = _hier.l1i().misses();
    _res.dcacheMisses = _hier.l1d().misses();
    return _res;
}

TimingResult
runTiming(const MachineConfig &config, const Trace &trace,
          SpawnSource *source, const std::string &name,
          const TraceIndex *sharedIndex)
{
    TimingSim sim(config, trace, source, sharedIndex);
    return sim.run(name);
}

} // namespace polyflow
