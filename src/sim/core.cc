#include "sim/core.hh"

#include <stdexcept>

#include "sim/accounting.hh"
#include "sim/stage_timer.hh"

namespace polyflow {

using sim::ScopedNs;

TimingSim::TimingSim(const MachineConfig &config, const Trace &trace,
                     SpawnSource *source,
                     const TraceIndex *sharedIndex)
    : _m(config, trace, source, sharedIndex)
{
}

TimingResult
TimingSim::run(const std::string &policyName)
{
    if (_ran)
        throw std::runtime_error("TimingSim::run called twice");
    _ran = true;
    sim::MachineState &m = _m;
    m.res.policyName = policyName;
    m.res.instrs = m.trace->size();
    m.res.issueWidth = std::uint64_t(m.cfg.pipelineWidth);

    const std::uint64_t cycleLimit =
        std::uint64_t(200) * m.trace->size() + 1'000'000;

    if (_profile)
        ++_profile->machines;

    auto slot = [this](std::uint64_t StageProfile::*field) {
        return _profile ? &(_profile->*field) : nullptr;
    };

    while (m.commitIdx < m.trace->size()) {
        {
            ScopedNs t(slot(&StageProfile::commitNs));
            _commit.unblock(m);
            _commit.step(m);
        }
        if (m.commitIdx >= m.trace->size())
            break;
        // Attribute this cycle's issue slots while the post-commit
        // state is fresh; the final partial cycle (break above)
        // does not advance the clock and is not accounted, keeping
        // the identity sum(slots) == cycles * issueWidth exact.
        {
            ScopedNs t(slot(&StageProfile::accountingNs));
            sim::accountCycle(m);
        }
        {
            ScopedNs t(slot(&StageProfile::divertNs));
            _backend.releaseDiverted(m);
        }
        {
            ScopedNs t(slot(&StageProfile::issueNs));
            _backend.issue(m);
        }
        {
            ScopedNs t(slot(&StageProfile::renameNs));
            _rename.step(m);
        }
        {
            ScopedNs t(slot(&StageProfile::fetchNs));
            _frontend.fetch(m);
            _frontend.applySpawn(m);
        }
        {
            ScopedNs t(slot(&StageProfile::recoveryNs));
            _recovery.step(m);
        }
        ++m.now;
        if (_profile)
            ++_profile->cycles;
        if (m.now > cycleLimit) {
            std::string msg =
                "TimingSim: cycle limit exceeded (deadlock?) at "
                "commitIdx " + std::to_string(m.commitIdx) +
                " stage=" +
                std::to_string(int(m.istate[m.commitIdx].stage)) +
                " sched=" + std::to_string(m.sched.size()) +
                " divert=" + std::to_string(m.divert.size()) +
                " rob=" + std::to_string(m.robUsed) + " tasks=[";
            for (const sim::Task &t : m.tasks) {
                msg += "(" + std::to_string(t.begin) + "," +
                    std::to_string(t.end) + ",f" +
                    std::to_string(t.fetchIdx) + ",d" +
                    std::to_string(t.dispIdx) + ",blk" +
                    std::to_string(
                        t.blockedOnBranch == invalidTrace
                            ? -1 : int(t.blockedOnBranch)) +
                    ",rdy" + std::to_string(t.fetchReady) + ")";
            }
            msg += "]";
            throw std::runtime_error(msg);
        }
    }

    m.res.cycles = m.now;
    m.res.icacheMisses = m.hier.l1i().misses();
    m.res.dcacheMisses = m.hier.l1d().misses();
    return m.res;
}

TimingResult
runTiming(const MachineConfig &config, const Trace &trace,
          SpawnSource *source, const std::string &name,
          const TraceIndex *sharedIndex)
{
    TimingSim sim(config, trace, source, sharedIndex);
    return sim.run(name);
}

} // namespace polyflow
