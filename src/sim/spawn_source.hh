/**
 * @file
 * Spawn sources: where the Task Spawn Unit gets its spawn targets.
 * Static sources are hint tables produced by compiler analysis;
 * the dynamic source wraps the reconvergence predictor (Section 2.4).
 */

#ifndef POLYFLOW_SIM_SPAWN_SOURCE_HH
#define POLYFLOW_SIM_SPAWN_SOURCE_HH

#include <memory>
#include <optional>

#include "ir/module.hh"
#include "recon/recon_predictor.hh"
#include "spawn/policy.hh"
#include "spawn/spawn_point.hh"

namespace polyflow {

/** A candidate spawn returned by a source at fetch time. */
struct SpawnHint
{
    Addr targetPc;
    SpawnKind kind;
    /** Compiler dependence mask (0 for dynamic sources). */
    std::uint32_t depMask = 0;
};

/**
 * Interface the Task Spawn Unit queries at fetch and trains at
 * commit.
 */
class SpawnSource
{
  public:
    virtual ~SpawnSource() = default;

    /** Spawn hint for fetching @p li, if any. */
    virtual std::optional<SpawnHint> query(const LinkedInstr &li) = 0;

    /** Observe one committed instruction (dynamic sources train). */
    virtual void onCommit(const LinkedInstr &li, bool taken) = 0;
};

/** Static source: compiler-generated hint table, no training. */
class StaticSpawnSource : public SpawnSource
{
  public:
    explicit StaticSpawnSource(HintTable table)
        : _table(std::move(table))
    {}

    std::optional<SpawnHint> query(const LinkedInstr &li) override;
    void onCommit(const LinkedInstr &, bool) override {}

    const HintTable &table() const { return _table; }

  private:
    HintTable _table;
};

/**
 * Dynamic source: reconvergence-predictor spawns at conditional
 * branches plus procedure fall-through spawns at calls (the rec_pred
 * configuration of Section 4.4). Trains on the retirement stream,
 * so warm-up effects are modelled.
 */
class ReconSpawnSource : public SpawnSource
{
  public:
    explicit ReconSpawnSource(const ReconConfig &config = {})
        : _predictor(config)
    {}

    std::optional<SpawnHint> query(const LinkedInstr &li) override;
    void onCommit(const LinkedInstr &li, bool taken) override;

    const ReconPredictor &predictor() const { return _predictor; }

  private:
    ReconPredictor _predictor;
};

/**
 * DMT-style dynamic heuristics (Akkary & Driscoll, MICRO-31; the
 * paper's Section 5): spawn at the static address directly
 * following each backward branch (an approximate loop
 * fall-through) and at procedure fall-throughs after calls. No
 * compiler information, no reconvergence prediction — the baseline
 * the paper's dynamic mechanism improves on.
 */
class DmtSpawnSource : public SpawnSource
{
  public:
    std::optional<SpawnHint> query(const LinkedInstr &li) override;
    void onCommit(const LinkedInstr &, bool) override {}
};

} // namespace polyflow

#endif // POLYFLOW_SIM_SPAWN_SOURCE_HH
