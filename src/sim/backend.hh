/**
 * @file
 * Backend stage: divert-queue release, scheduler wakeup/select,
 * functional units and the data-side memory hierarchy. Detects
 * cross-task dependence violations at issue and queues them for the
 * recovery stage.
 *
 * Two entry points per sub-stage:
 *  - the per-machine reference form, which re-sorts the scheduler
 *    oldest-first every cycle and erases entries in place, and
 *  - a span form used by the batch engine (batch.hh), which runs
 *    the same selection over every machine in one pass per stage.
 *    Its scheduler scan keeps the age-key array in structure-of-
 *    arrays form (machine_state.hh), repairs order with an adaptive
 *    insertion pass instead of sorting, drops issued/squashed
 *    entries by single-pass compaction instead of mid-vector
 *    erases, and resolves the owning task by walking the task table
 *    in lockstep with the ascending keys instead of binary-searching
 *    per entry. Results are cycle-identical to the reference form;
 *    tests/test_stages.cc proves it bit-for-bit.
 */

#ifndef POLYFLOW_SIM_BACKEND_HH
#define POLYFLOW_SIM_BACKEND_HH

#include <span>
#include <vector>

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Backend
{
  public:
    /**
     * Re-dispatch diverted instructions whose wake-up condition
     * holds (producer renamed/issued), modelling the FIFO
     * re-dispatch latency, into the scheduler.
     */
    void releaseDiverted(MachineState &m);

    /**
     * Issue ready scheduler entries to the FUs, oldest first.
     * Unsynchronized cross-task consumers may issue with a stale
     * value — those, and stores that execute after dependent
     * cross-task loads already issued, queue dependence violations
     * for the recovery stage.
     */
    void issue(MachineState &m);

    /** @name Batched (span) forms
     * Amortized over a span of independent machines: one pass of
     * hot stage code per cycle instead of one per machine, reusing
     * the scratch buffers below across machines and cycles (no
     * per-cycle allocation, sort, or mid-vector erase).
     * @{ */
    void releaseDiverted(std::span<MachineState *const> machines);
    void issue(std::span<MachineState *const> machines);
    /** @} */

  private:
    void releaseDivertedCompact(MachineState &m);
    void issueCompact(MachineState &m);

    /** Survivor buffers for the compaction passes, reused across
     *  machines and cycles. */
    std::vector<TraceIdx> _schedKeep;
    std::vector<DivertEntry> _divertKeep;
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_BACKEND_HH
