/**
 * @file
 * Backend stage: divert-queue release, scheduler wakeup/select,
 * functional units and the data-side memory hierarchy. Detects
 * cross-task dependence violations at issue and queues them for the
 * recovery stage.
 */

#ifndef POLYFLOW_SIM_BACKEND_HH
#define POLYFLOW_SIM_BACKEND_HH

#include "sim/machine_state.hh"

namespace polyflow::sim {

class Backend
{
  public:
    /**
     * Re-dispatch diverted instructions whose wake-up condition
     * holds (producer renamed/issued), modelling the FIFO
     * re-dispatch latency, into the scheduler.
     */
    void releaseDiverted(MachineState &m);

    /**
     * Issue ready scheduler entries to the FUs, oldest first.
     * Unsynchronized cross-task consumers may issue with a stale
     * value — those, and stores that execute after dependent
     * cross-task loads already issued, queue dependence violations
     * for the recovery stage.
     */
    void issue(MachineState &m);
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_BACKEND_HH
