/**
 * @file
 * MachineState: the explicit, documented microarchitectural state of
 * the PolyFlow machine (Figure 7), shared by every pipeline-stage
 * module.
 *
 * The timing simulator used to be one class whose stages communicated
 * through private fields; the stage modules (frontend.hh, rename.hh,
 * backend.hh, commit.hh, recovery.hh, accounting.hh) now all operate
 * on this one struct instead, so each stage can be driven — and
 * tested — in isolation on a hand-built state (tests/test_stages.cc).
 *
 * Ownership rules:
 *  - MachineState owns every piece of per-run mutable state: the
 *    per-instruction pipeline positions, the task table, scheduler
 *    and divert-queue occupancy, predictors, caches, spawn feedback
 *    and the accumulating TimingResult.
 *  - The committed trace, the spawn source and the shared TraceIndex
 *    are borrowed read-only (the sweep engine shares them across
 *    concurrent simulations).
 *
 * Methods on MachineState are *queries* used by more than one stage
 * (task lookup, synchronization predicates, resource admission);
 * anything that advances the pipeline lives in a stage module.
 */

#ifndef POLYFLOW_SIM_MACHINE_STATE_HH
#define POLYFLOW_SIM_MACHINE_STATE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "isa/trace.hh"
#include "sim/branch_pred.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/dep_predictors.hh"
#include "sim/result.hh"
#include "sim/spawn_source.hh"
#include "sim/trace_index.hh"

namespace polyflow::sim {

/** Pipeline position of one dynamic (trace) instruction. */
enum class InstrStage : std::uint8_t {
    None = 0,
    Fetched = 1,
    Diverted = 2,
    InSched = 3,
    Issued = 4,
    Committed = 5,
};

/** Per-instruction pipeline bookkeeping, indexed by trace position. */
struct InstrState
{
    InstrStage stage = InstrStage::None;
    std::uint64_t fetchCycle = 0;
    std::uint64_t completeCycle = 0;
};

/** Why a task's fetch last stalled; refines the cycle-accounting
 *  blame while the stall (and the frontend refill behind it)
 *  drains. */
enum class FetchStall : std::uint8_t {
    None,          //!< no stall recorded yet (cold start)
    Mispredict,    //!< branch mispredict redirect
    ICache,        //!< instruction-cache miss
    Squash,        //!< restart after a violation squash
    SpawnStartup,  //!< context-allocation delay of a new task
};

/**
 * One task context. Tasks carve disjoint, contiguous ranges
 * [begin, end) out of the committed trace and stay sorted by begin
 * in MachineState::tasks (spawns only split a task's own tail).
 */
struct Task
{
    TraceIdx begin = 0, end = 0;
    TraceIdx fetchIdx = 0, dispIdx = 0;
    std::uint64_t fetchReady = 0;
    FetchStall lastFetchStall = FetchStall::None;
    TraceIdx blockedOnBranch = invalidTrace;
    std::uint32_t ghr = 0;
    ReturnAddressStack ras;
    Addr curFetchLine = invalidAddr;
    std::uint64_t inflight = 0;  //!< fetched, not committed
    int robHeld = 0;
    Addr triggerPc = invalidAddr;  //!< spawn PC that created us
    /** Static (image) index of the trigger; valid iff triggerPc is.
     *  Keys the flat spawn-feedback table. */
    ImageIdx triggerImg = 0;
    std::uint32_t divertedCount = 0;
    /** Compiler hint: spawner-written live-in registers. */
    std::uint32_t depMask = 0;
};

/** A dependence violation detected at issue, squashed end-of-cycle. */
struct Violation
{
    TraceIdx consumer;
    /** Conflicting store for memory violations; invalidTrace for
     *  stale register reads. */
    TraceIdx store;
};

/** One divert-queue entry. */
struct DivertEntry
{
    TraceIdx idx;
    /** Cycle the entry may re-enter rename once its wake-up
     *  condition holds (0 = condition not yet observed). */
    std::uint64_t readyAt = 0;
};

/** A spawn decided mid-fetch, applied at end of cycle so task
 *  positions stay stable while the frontend iterates. */
struct PendingSpawn
{
    bool valid = false;
    TraceIdx parentBegin = 0;
    TraceIdx start = 0;
    TraceIdx end = 0;
    SpawnHint hint{};
    Addr triggerPc = invalidAddr;
    ImageIdx triggerImg = 0;
    std::uint32_t ghr = 0;
    ReturnAddressStack ras;
};

/**
 * Spawn-profitability feedback per trigger (paper: "dynamic feedback
 * about which tasks are profitable"), kept in a flat table indexed
 * by the trigger's image index — the commit and recovery stages
 * update it on every retire/squash, so it must not hash.
 */
struct TriggerFeedback
{
    int spawns = 0;
    int squashes = 0;
    int unprofitable = 0;
    int profitable = 0;
    bool disabled = false;
};

struct MachineState
{
    /**
     * @param config machine parameters
     * @param trace committed dynamic trace from the functional sim
     * @param source spawn source, or nullptr for the superscalar
     *               baseline (no spawning)
     * @param sharedIndex precomputed indexes over @p trace, shared
     *               read-only across simulations; nullptr builds
     *               private ones when spawning is enabled
     * @throws std::runtime_error on an empty trace
     */
    MachineState(const MachineConfig &config, const Trace &trace,
                 SpawnSource *source,
                 const TraceIndex *sharedIndex = nullptr);

    /** @name Configuration and borrowed inputs @{ */
    MachineConfig cfg;
    const Trace *trace;
    SpawnSource *source;
    /** Per-trace indexes (spawn targets, store->consumer loads);
     *  either shared by the caller or privately owned. */
    const TraceIndex *index = nullptr;
    std::unique_ptr<TraceIndex> ownedIndex;
    /** @} */

    /** @name Pipeline state @{ */
    std::vector<InstrState> istate;  //!< indexed by trace position
    std::vector<Task> tasks;         //!< active tasks, oldest first
    /** Scheduler occupancy: age keys (trace indexes) in dispatch
     *  order. The scalar backend sorts oldest-first each cycle; the
     *  batched backend repairs order incrementally instead
     *  (backend.hh), so both select with the same oldest-first
     *  scan. */
    std::vector<TraceIdx> sched;
    /** Divert-queue occupancy, FIFO. A flat vector: entries only
     *  append at the tail and leave by compaction/erase, never by
     *  front-pop. */
    std::vector<DivertEntry> divert;
    std::vector<Violation> pendingViolations;
    int robUsed = 0;
    TraceIdx commitIdx = 0;
    std::uint64_t now = 0;
    /** Instructions committed this cycle (set by the commit stage,
     *  consumed by accounting). */
    int cycleCommits = 0;
    /** Expiry cycles of contexts held by wrong-path (ghost)
     *  tasks. */
    std::vector<std::uint64_t> ghosts;
    PendingSpawn pending;
    /** @} */

    /** @name Predictors and memories @{ */
    MemHierarchy hier;
    GsharePredictor gshare;
    IndirectPredictor indirect;
    /** Rename-stage register/memory dependence predictors (flat,
     *  image-indexed; see dep_predictors.hh). */
    DepPredictors depPred;
    /** @} */

    /** Spawn-profitability feedback, image-indexed (empty for the
     *  spawning-free baseline). */
    std::vector<TriggerFeedback> feedback;

    /** @name Outputs @{ */
    TimingResult res;
    std::vector<TaskEvent> *events = nullptr;
    /** @} */

    /** @name Queries shared by several stages
     * Defined inline below: they run per instruction per cycle in
     * several stage modules, and must inline into each of them.
     * @{ */

    /** The task owning trace index @p i, or nullptr. */
    Task *taskOf(TraceIdx i);
    /** Position in tasks of the task owning @p i; throws if none. */
    size_t taskPosOf(TraceIdx i) const;

    /** May the task at @p taskPos allocate another ROB entry?
     *  Younger tasks leave headroom so the head task always makes
     *  progress toward in-order commit (deadlock freedom;
     *  DESIGN.md). */
    bool robAllowed(size_t taskPos) const;

    /** Execution latency class of a static instruction. */
    int execLatency(const LinkedInstr &li) const;

    /** True if instruction @p i must (still) wait in the divert
     *  queue: a synchronized producer has not been renamed yet. */
    bool divertHolds(TraceIdx i, const DynInstr &d,
                     const Task &t) const;
    /** True if load @p i must synchronize on its producing store. */
    bool loadSyncNeeded(TraceIdx i, const DynInstr &d,
                        const Task &t) const;

    /** Producer @p p has its result available at @p cycle. */
    bool
    doneAt(TraceIdx p, std::uint64_t cycle) const
    {
        const InstrState &s = istate[p];
        return s.stage == InstrStage::Committed ||
            (s.stage == InstrStage::Issued &&
             s.completeCycle <= cycle);
    }

    const LinkedInstr &
    staticOf(TraceIdx i) const
    {
        return trace->staticOf(i);
    }

    /** Feedback slot of a retired/squashed task's trigger. */
    TriggerFeedback &
    feedbackOf(const Task &t)
    {
        return feedback[t.triggerImg];
    }

    /** @} */
};

inline Task *
MachineState::taskOf(TraceIdx i)
{
    // Tasks carve disjoint ranges out of the trace and stay sorted
    // by begin (spawns only split a task's own tail), so the owner
    // is the last task starting at or before i.
    auto it = std::upper_bound(
        tasks.begin(), tasks.end(), i,
        [](TraceIdx v, const Task &t) { return v < t.begin; });
    if (it == tasks.begin())
        return nullptr;
    --it;
    return i < it->end ? &*it : nullptr;
}

inline size_t
MachineState::taskPosOf(TraceIdx i) const
{
    auto it = std::upper_bound(
        tasks.begin(), tasks.end(), i,
        [](TraceIdx v, const Task &t) { return v < t.begin; });
    if (it != tasks.begin()) {
        --it;
        if (i < it->end)
            return static_cast<size_t>(it - tasks.begin());
    }
    throw std::runtime_error("taskPosOf: index not in any task");
}

inline bool
MachineState::robAllowed(size_t taskPos) const
{
    int reserve =
        cfg.robReservePerOlderTask * static_cast<int>(taskPos);
    return robUsed < cfg.robEntries - reserve;
}

inline int
MachineState::execLatency(const LinkedInstr &li) const
{
    switch (li.instr.op) {
      case Opcode::MUL:
        return cfg.mulLatency;
      case Opcode::DIVU:
      case Opcode::REMU:
        return cfg.divLatency;
      default:
        return cfg.intLatency;
    }
}

inline bool
MachineState::loadSyncNeeded(TraceIdx i, const DynInstr &d,
                             const Task &t) const
{
    if (!staticOf(i).instr.isLoad() || d.memProd == invalidTrace)
        return false;
    if (istate[d.memProd].stage == InstrStage::Committed)
        return false;
    bool same_task = d.memProd >= t.begin;
    return same_task || depPred.predictsMemDep(d.img);
}

inline bool
MachineState::divertHolds(TraceIdx i, const DynInstr &d,
                          const Task &t) const
{
    // An instruction synchronizes (stays diverted) while a producer
    // it is predicted to depend on has not been renamed yet.
    // Same-task producers are always synchronized: in-order rename
    // has seen them, and following them into the divert queue keeps
    // the scheduler free of entries that could never wake up
    // (deadlock freedom; see DESIGN.md). Cross-task register
    // producers are synchronized only when the rename-stage
    // dependence predictor says so; otherwise the consumer
    // speculates and may trigger a violation at issue.
    const LinkedInstr &li = staticOf(i);
    RegId srcs[2];
    int nsrc = li.instr.srcRegs(srcs);
    for (int k = 0; k < nsrc; ++k) {
        TraceIdx p = d.prod[k];
        if (p == invalidTrace)
            continue;
        bool same_task = p >= t.begin;
        if (same_task) {
            // Same-task values flow through the scheduler normally;
            // divert only while the producer is not yet renamed
            // (it may itself sit in the divert queue).
            if (istate[p].stage < InstrStage::InSched)
                return true;
            continue;
        }
        bool hinted = cfg.compilerDepHints &&
            ((t.depMask >> srcs[k]) & 1);
        if ((hinted || depPred.predictsRegDep(d.img)) &&
            istate[p].stage < InstrStage::Issued) {
            // Synchronized consumers re-enter rename once the
            // producer has issued ("some time after its producer
            // has been dispatched", paper Section 3.1); the
            // scheduler's normal wakeup covers the rest.
            return true;
        }
    }
    if (loadSyncNeeded(i, d, t) && !doneAt(d.memProd, now))
        return true;
    return false;
}

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_MACHINE_STATE_HH
