#include "sim/addr_index.hh"

#include <algorithm>

namespace polyflow {

AddrIndex::AddrIndex(const Trace &trace)
{
    for (TraceIdx i = 0; i < trace.size(); ++i)
        _occ[trace.staticOf(i).addr].push_back(i);
}

TraceIdx
AddrIndex::nextOccurrence(Addr pc, TraceIdx after) const
{
    auto it = _occ.find(pc);
    if (it == _occ.end())
        return invalidTrace;
    const auto &v = it->second;
    auto pos = std::upper_bound(v.begin(), v.end(), after);
    return pos == v.end() ? invalidTrace : *pos;
}

size_t
AddrIndex::count(Addr pc) const
{
    auto it = _occ.find(pc);
    return it == _occ.end() ? 0 : it->second.size();
}

} // namespace polyflow
