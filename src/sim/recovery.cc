#include "sim/recovery.hh"

#include <algorithm>

namespace polyflow::sim {

void
Recovery::step(MachineState &m)
{
    if (m.pendingViolations.empty())
        return;
    // Handle the oldest violating load; everything younger gets
    // squashed anyway.
    auto v = *std::min_element(
        m.pendingViolations.begin(), m.pendingViolations.end(),
        [](const Violation &a, const Violation &b) {
            return a.consumer < b.consumer;
        });
    m.pendingViolations.clear();

    // The consumer may already have been squashed meanwhile.
    if (m.istate[v.consumer].stage == InstrStage::None)
        return;

    ++m.res.violations;
    if (v.store == invalidTrace) {
        m.depPred.recordRegViolation(
            m.trace->instrs[v.consumer].img);
    } else {
        m.depPred.recordMemViolation(
            m.trace->instrs[v.consumer].img);
    }
    squashFromTask(m, m.taskPosOf(v.consumer));
}

void
Recovery::squashFromTask(MachineState &m, size_t taskPos)
{
    for (size_t pos = taskPos; pos < m.tasks.size(); ++pos) {
        Task &t = m.tasks[pos];
        for (TraceIdx i = t.begin; i < t.end; ++i) {
            if (m.istate[i].stage != InstrStage::None)
                m.istate[i] = InstrState{};
        }
        m.robUsed -= t.robHeld;
        t.robHeld = 0;
        t.inflight = 0;
        t.fetchIdx = t.dispIdx = t.begin;
        if (m.events) {
            m.events->push_back({TaskEvent::Kind::Squash, m.now,
                                 t.begin, t.end, t.triggerPc,
                                 m.commitIdx, t.divertedCount});
        }
        t.divertedCount = 0;
        t.fetchReady = m.now + m.cfg.squashRestartPenalty;
        t.lastFetchStall = FetchStall::Squash;
        t.blockedOnBranch = invalidTrace;
        t.curFetchLine = invalidAddr;
        ++m.res.tasksSquashed;
        if (m.cfg.spawnFeedback && t.triggerPc != invalidAddr) {
            TriggerFeedback &fb = m.feedbackOf(t);
            ++fb.squashes;
            if (fb.squashes >= m.cfg.feedbackMinSquashes &&
                fb.squashes * 4 >= fb.spawns && !fb.disabled) {
                fb.disabled = true;
                ++m.res.triggersDisabled;
            }
        }
    }
    // Purge squashed entries from the structures lazily; the stage
    // check in each phase discards them. Clean the scheduler now so
    // capacity frees immediately.
    std::erase_if(m.sched, [&](TraceIdx i) {
        return m.istate[i].stage != InstrStage::InSched;
    });
    std::erase_if(m.divert, [&](const DivertEntry &e) {
        return m.istate[e.idx].stage != InstrStage::Diverted;
    });
}

} // namespace polyflow::sim
