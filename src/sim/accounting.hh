/**
 * @file
 * Per-cycle issue-slot accounting (the PR-2 observability layer),
 * attached to the pipeline through MachineState rather than the
 * simulator's internals: every bucket decision is a pure function of
 * the machine state right after the commit stage ran.
 *
 * The taxonomy and the blame decision tree are documented in
 * docs/OBSERVABILITY.md; the permanently enforced identity is
 *
 *     sum(MachineState::res.slots) == cycles * issueWidth
 */

#ifndef POLYFLOW_SIM_ACCOUNTING_HH
#define POLYFLOW_SIM_ACCOUNTING_HH

#include "sim/machine_state.hh"

namespace polyflow::sim {

/**
 * Attribute this cycle's pipelineWidth issue slots: commits fill
 * Committed, the rest go to blameBucket(). Call once per counted
 * cycle, right after the commit stage.
 */
void accountCycle(MachineState &m);

/** Why the oldest uncommitted instruction did not commit. */
SlotBucket blameBucket(const MachineState &m);

/** Map a task's recorded fetch stall to its bucket. */
SlotBucket stallBucket(const Task &t);

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_ACCOUNTING_HH
