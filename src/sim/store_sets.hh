/**
 * @file
 * A store-set style memory dependence predictor. Loads that have
 * violated against a store in the past are predicted dependent and
 * synchronized (diverted) instead of speculating again, in the
 * spirit of the Synchronizing Store Sets used by PolyFlow.
 */

#ifndef POLYFLOW_SIM_STORE_SETS_HH
#define POLYFLOW_SIM_STORE_SETS_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "ir/types.hh"

namespace polyflow {

/** PC-indexed memory dependence predictor. */
class StoreSetPredictor
{
  public:
    /** True if the load at @p loadPc should synchronize. */
    bool
    predictsDependence(Addr loadPc) const
    {
        return _dependentLoads.count(loadPc) != 0;
    }

    /** Learn from a violation between a load and a store PC. */
    void
    recordViolation(Addr loadPc, Addr storePc)
    {
        _dependentLoads.insert(loadPc);
        _pairs[loadPc] = storePc;
        ++_violationsRecorded;
    }

    Addr
    storeFor(Addr loadPc) const
    {
        auto it = _pairs.find(loadPc);
        return it == _pairs.end() ? invalidAddr : it->second;
    }

    std::uint64_t violationsRecorded() const
    {
        return _violationsRecorded;
    }
    size_t numDependentLoads() const { return _dependentLoads.size(); }

  private:
    std::unordered_set<Addr> _dependentLoads;
    std::unordered_map<Addr, Addr> _pairs;
    std::uint64_t _violationsRecorded = 0;
};

/**
 * PC-indexed register dependence predictor (the "data dependence
 * predictors" in the rename stage of the PolyFlow pipeline,
 * Figure 7). A consumer instruction that once read a stale register
 * value produced by an older in-flight task is predicted dependent
 * from then on and synchronized through the divert queue instead of
 * re-speculating.
 */
class RegDepPredictor
{
  public:
    bool
    predictsDependence(Addr consumerPc) const
    {
        return _dependentConsumers.count(consumerPc) != 0;
    }

    void
    recordViolation(Addr consumerPc)
    {
        _dependentConsumers.insert(consumerPc);
        ++_violationsRecorded;
    }

    std::uint64_t violationsRecorded() const
    {
        return _violationsRecorded;
    }
    size_t numDependentConsumers() const
    {
        return _dependentConsumers.size();
    }

  private:
    std::unordered_set<Addr> _dependentConsumers;
    std::uint64_t _violationsRecorded = 0;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_STORE_SETS_HH
