/**
 * @file
 * MachineBatch: the batched multi-machine simulation engine.
 *
 * A batch owns N MachineStates built from one MachineConfig and N
 * independent traces and steps them in a *stage-major* loop: per
 * cycle, the commit stage runs over every live machine, then
 * accounting over every machine, then the backend, rename, frontend
 * and recovery — instead of one machine running all its stages
 * before the next machine gets a turn (the per-run loop in
 * TimingSim::run). One pass of each stage's code per cycle keeps
 * that stage's instructions and lookup tables hot across machines,
 * and lets the backend use its amortized span forms (backend.hh):
 * incremental oldest-first order repair instead of a per-cycle
 * sort, single-pass compaction instead of mid-vector erases, and
 * reusable scratch buffers instead of per-cycle allocation.
 *
 * Machines are fully independent — no state is shared between them
 * except the borrowed read-only trace/index inputs — so every
 * machine's result is cycle-identical to a scalar TimingSim::run
 * over the same inputs (tests/test_stages.cc pins this bit-for-bit,
 * and the fig09 sha256 golden runs through both paths). A machine
 * that commits its last instruction drops out of the live set at
 * the top of the cycle without disturbing the others.
 *
 * Most callers want the higher-level entry points instead:
 * TimingSim::runBatch (core.hh) over prepared inputs, or
 * SweepRunner, which routes sweep cells sharing a (workload, scale,
 * config) triple through a batch per worker thread (jobs x batch
 * width), keeping each batch on one shared read-only trace.
 */

#ifndef POLYFLOW_SIM_BATCH_HH
#define POLYFLOW_SIM_BATCH_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/backend.hh"
#include "sim/commit.hh"
#include "sim/core.hh"
#include "sim/frontend.hh"
#include "sim/machine_state.hh"
#include "sim/recovery.hh"
#include "sim/rename.hh"

namespace polyflow::sim {

/**
 * N independent machines under one config, stepped stage-major.
 * Construct, add() every machine, then call run() exactly once.
 * Not thread-safe; use one MachineBatch per worker thread.
 */
class MachineBatch
{
  public:
    explicit MachineBatch(const MachineConfig &config);
    ~MachineBatch();

    /**
     * Add one machine. @p trace and @p index are borrowed read-only
     * and must outlive the batch; @p source trains and must be
     * private to this machine. Returns the machine's index (results
     * come back in add order).
     */
    size_t add(const Trace &trace, SpawnSource *source,
               const TraceIndex *index, std::string label,
               std::vector<TaskEvent> *events = nullptr);

    size_t size() const { return _machines.size(); }

    /** Accumulate per-stage wall time across the whole batch into
     *  @p sink (optional; call before run()). */
    void profileStages(StageProfile *sink) { _profile = sink; }

    /**
     * Step every machine to completion and return the statistics in
     * add order, cycle-identical per machine to TimingSim::run.
     */
    std::vector<TimingResult> run();

  private:
    MachineConfig _cfg;
    /** unique_ptr for address stability across add() calls (the
     *  live set and the stage spans point at the states). */
    std::vector<std::unique_ptr<MachineState>> _machines;
    std::vector<std::string> _labels;

    Frontend _frontend;
    Rename _rename;
    Backend _backend;
    Commit _commit;
    Recovery _recovery;

    StageProfile *_profile = nullptr;
    bool _ran = false;
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_BATCH_HH
