#include "sim/trace_index.hh"

namespace polyflow {

TraceIndex::TraceIndex(const Trace &trace) : _addr(trace)
{
    const TraceIdx n = static_cast<TraceIdx>(trace.size());
    _consumerOffsets.assign(size_t(n) + 1, 0);

    // Counting sort by producing store: count, prefix-sum, fill.
    // Filling in ascending load order keeps each store's consumer
    // list sorted by trace index.
    for (TraceIdx i = 0; i < n; ++i) {
        const DynInstr &d = trace.instrs[i];
        if (d.memProd != invalidTrace &&
            trace.staticOf(i).instr.isLoad()) {
            ++_consumerOffsets[d.memProd + 1];
        }
    }
    for (TraceIdx i = 0; i < n; ++i)
        _consumerOffsets[i + 1] += _consumerOffsets[i];
    _consumers.resize(_consumerOffsets[n]);
    std::vector<std::uint32_t> fill(_consumerOffsets.begin(),
                                    _consumerOffsets.end() - 1);
    for (TraceIdx i = 0; i < n; ++i) {
        const DynInstr &d = trace.instrs[i];
        if (d.memProd != invalidTrace &&
            trace.staticOf(i).instr.isLoad()) {
            _consumers[fill[d.memProd]++] = i;
        }
    }
}

} // namespace polyflow
