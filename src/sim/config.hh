/**
 * @file
 * Machine configuration (Figure 8 of the paper, plus the model knobs
 * this reproduction exposes for ablation).
 */

#ifndef POLYFLOW_SIM_CONFIG_HH
#define POLYFLOW_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace polyflow {

/** Geometry and miss latency of one cache level. */
struct CacheConfig
{
    int sizeBytes;
    int assoc;
    int lineBytes;
    /** Extra cycles paid when this level misses. */
    int missLatency;

    bool operator==(const CacheConfig &) const = default;
};

/** The PolyFlow machine configuration (defaults = Figure 8). */
struct MachineConfig
{
    /** @name Figure 8 parameters @{ */
    int pipelineWidth = 8;       //!< instrs/cycle, every stage
    int numTasks = 8;            //!< task contexts
    int robEntries = 512;        //!< dynamically shared
    int schedEntries = 64;       //!< dynamically shared
    int divertEntries = 128;     //!< dynamically shared
    int numFUs = 8;              //!< identical general-purpose units
    int minMispredictPenalty = 8;
    int gshareCounters = 8192;   //!< 16 Kbit = 8192 2-bit counters
    int historyBits = 8;
    CacheConfig l1i{8 * 1024, 2, 128, 10};
    CacheConfig l1d{16 * 1024, 4, 64, 10};
    CacheConfig l2{512 * 1024, 8, 128, 100};
    /** @} */

    /** @name SMT fetch @{ */
    int fetchTasksPerCycle = 2;  //!< superscalar baseline uses 1
    int maxTakenPerTaskCycle = 1;
    int fetchQueueEntries = 32;  //!< per task, fetched-not-renamed
    /** Biased-ICount: tie-bias toward older tasks. Kept small so
     *  the tail task still fetches often enough to keep spawning. */
    int icountAgeBias = 1;
    /** @} */

    /** @name Backend latencies @{ */
    int frontendDepth = 3;       //!< fetch -> earliest rename, cycles
    int intLatency = 1;
    int mulLatency = 3;
    int divLatency = 12;
    int loadLatency = 2;         //!< L1-hit load-to-use latency
    int branchLatency = 1;
    /** @} */

    /** @name Task spawn unit @{ */
    /**
     * Max dynamic distance (in committed instructions) between the
     * trigger and the spawned task's start. Because only the tail
     * task may spawn, an accepted far spawn kills every nearer
     * opportunity inside its range; the paper's spawn unit uses its
     * trace to keep tasks from being "spawned too far into the
     * future" for the same reason.
     */
    std::uint32_t maxSpawnDistance = 512;
    /** Hammock joins can be just a couple of instructions past the
     *  branch (the paper's twolf example); keep the floor low. */
    std::uint32_t minSpawnDistance = 2;
    bool spawnFeedback = true;   //!< disable repeatedly-squashing PCs
    /** Feedback disables a trigger only after this many squashes
     *  with a sustained squash/spawn ratio; one-time dependence
     *  violations are handled by the predictors instead. */
    int feedbackMinSquashes = 16;
    /** A retired task counts as unprofitable when at least this
     *  fraction (in percent) of its instructions had to be
     *  synchronized through the divert queue. */
    int feedbackDivertPercent = 60;
    /** Triggers are disabled once unprofitable retirements both
     *  reach this count and outnumber profitable ones 2:1. */
    int feedbackMinUnprofitable = 12;
    int squashRestartPenalty = 8;
    /** Cycles between a spawn decision and the new task's first
     *  fetch (context allocation, rename-map copy). */
    int spawnStartupDelay = 2;
    /** Model wrong-path spawns: while a mispredicted branch is
     *  unresolved, fetch beyond it would have spawned bogus tasks;
     *  each unresolved mispredict holds one task context hostage
     *  ("ghost" context) until the branch resolves. */
    bool wrongPathGhosts = true;
    /** Use the compiler-provided register dependence masks from the
     *  hint cache to synchronize consumers up front (the dynamic
     *  rec_pred configuration has no compiler hints and always
     *  learns by violation). */
    bool compilerDepHints = true;
    /** Extra cycles a diverted instruction spends between its
     *  wake-up condition holding and re-entering rename (FIFO
     *  re-dispatch cost of the divert queue). */
    int divertReleaseDelay = 2;
    /** ROB headroom reserved per older active task so that young
     *  tasks cannot deadlock the in-order commit (see DESIGN.md). */
    int robReservePerOlderTask = 16;
    /**
     * Paper future work (Section 6): let every task spawn, not just
     * the tail. Each non-tail spawn splits that task's remaining
     * range, so nested hammocks can spawn past their inner branch.
     * One spawn per cycle (a single spawn-unit port).
     */
    bool spawnFromAnyTask = false;
    /** @} */

    int returnStackEntries = 16;

    /** Superscalar baseline: same resources, a single task. */
    static MachineConfig
    superscalar()
    {
        MachineConfig c;
        c.numTasks = 1;
        c.fetchTasksPerCycle = 1;
        return c;
    }

    /** Memberwise equality; the sweep engine batches cells that
     *  share a configuration (driver/sweep.hh). */
    bool operator==(const MachineConfig &) const = default;

    std::string describe() const;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_CONFIG_HH
