/**
 * @file
 * Set-associative LRU cache model and the two-level hierarchy used
 * for instruction and data accesses.
 */

#ifndef POLYFLOW_SIM_CACHE_HH
#define POLYFLOW_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "ir/types.hh"
#include "sim/config.hh"

namespace polyflow {

/** One set-associative cache level with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing @p addr, filling on miss.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Non-allocating lookup (for tests). */
    bool probe(Addr addr) const;

    void reset();

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    int numSets() const { return _numSets; }
    const CacheConfig &config() const { return _cfg; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    CacheConfig _cfg;
    int _numSets;
    std::vector<Way> _ways;  // numSets * assoc
    std::uint64_t _clock = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

/**
 * The L1I / L1D / shared-L2 hierarchy. Access methods return the
 * total latency in cycles: 1 for an L1 hit, plus the configured miss
 * latencies on the way down. No MSHR or bandwidth modelling (the
 * paper's hint cache is similarly idealized).
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MachineConfig &config);

    int accessInstr(Addr addr);
    int accessData(Addr addr);

    void reset();

    const Cache &l1i() const { return _l1i; }
    const Cache &l1d() const { return _l1d; }
    const Cache &l2() const { return _l2; }

  private:
    Cache _l1i, _l1d, _l2;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_CACHE_HH
