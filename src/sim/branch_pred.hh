/**
 * @file
 * Front-end predictors: the gshare direction predictor, a last-target
 * indirect-jump predictor, and a per-task return address stack.
 */

#ifndef POLYFLOW_SIM_BRANCH_PRED_HH
#define POLYFLOW_SIM_BRANCH_PRED_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/types.hh"
#include "sim/config.hh"

namespace polyflow {

/**
 * Gshare direction predictor: 2-bit saturating counters indexed by
 * PC xor global history. History is kept per task (tasks are
 * independent fetch streams); the counter table is shared.
 */
class GsharePredictor
{
  public:
    explicit GsharePredictor(const MachineConfig &config);

    bool predict(Addr pc, std::uint32_t history) const;
    void update(Addr pc, std::uint32_t history, bool taken);

    /** Fold @p taken into a task's history register. */
    std::uint32_t
    shiftHistory(std::uint32_t history, bool taken) const
    {
        return ((history << 1) | (taken ? 1 : 0)) & _historyMask;
    }

    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t mispredicts() const { return _mispredicts; }

  private:
    std::uint32_t index(Addr pc, std::uint32_t history) const;

    std::vector<std::uint8_t> _counters;
    std::uint32_t _indexMask;
    std::uint32_t _historyMask;
    mutable std::uint64_t _lookups = 0;
    std::uint64_t _mispredicts = 0;
};

/** Last-target predictor for indirect jumps and indirect calls. */
class IndirectPredictor
{
  public:
    /** Predicted target for the jump at @p pc (invalidAddr if cold). */
    Addr predict(Addr pc) const;
    void update(Addr pc, Addr target);

  private:
    std::unordered_map<Addr, Addr> _lastTarget;
};

/** A bounded return-address stack; copied into newly spawned tasks. */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(int capacity = 16)
        : _capacity(capacity)
    {}

    void push(Addr returnAddr);
    /** Pop the predicted return target (invalidAddr when empty). */
    Addr pop();
    void clear() { _stack.clear(); }
    size_t depth() const { return _stack.size(); }

  private:
    int _capacity;
    std::vector<Addr> _stack;
};

} // namespace polyflow

#endif // POLYFLOW_SIM_BRANCH_PRED_HH
