#include "sim/branch_pred.hh"

#include <stdexcept>

namespace polyflow {

GsharePredictor::GsharePredictor(const MachineConfig &config)
{
    int n = config.gshareCounters;
    if (n <= 0 || (n & (n - 1)) != 0)
        throw std::runtime_error("gshare counters must be power of 2");
    _counters.assign(n, 2);  // weakly taken
    _indexMask = std::uint32_t(n - 1);
    _historyMask = (1u << config.historyBits) - 1;
}

std::uint32_t
GsharePredictor::index(Addr pc, std::uint32_t history) const
{
    return (std::uint32_t(pc >> 2) ^ (history & _historyMask)) &
        _indexMask;
}

bool
GsharePredictor::predict(Addr pc, std::uint32_t history) const
{
    ++_lookups;
    return _counters[index(pc, history)] >= 2;
}

void
GsharePredictor::update(Addr pc, std::uint32_t history, bool taken)
{
    std::uint8_t &c = _counters[index(pc, history)];
    bool predicted = c >= 2;
    if (predicted != taken)
        ++_mispredicts;
    if (taken && c < 3)
        ++c;
    else if (!taken && c > 0)
        --c;
}

Addr
IndirectPredictor::predict(Addr pc) const
{
    auto it = _lastTarget.find(pc);
    return it == _lastTarget.end() ? invalidAddr : it->second;
}

void
IndirectPredictor::update(Addr pc, Addr target)
{
    _lastTarget[pc] = target;
}

void
ReturnAddressStack::push(Addr returnAddr)
{
    if (static_cast<int>(_stack.size()) >= _capacity)
        _stack.erase(_stack.begin());  // overflow drops the oldest
    _stack.push_back(returnAddr);
}

Addr
ReturnAddressStack::pop()
{
    if (_stack.empty())
        return invalidAddr;
    Addr a = _stack.back();
    _stack.pop_back();
    return a;
}

} // namespace polyflow
