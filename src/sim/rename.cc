#include "sim/rename.hh"

namespace polyflow::sim {

void
Rename::step(MachineState &m)
{
    int budget = m.cfg.pipelineWidth;
    for (size_t pos = 0; pos < m.tasks.size() && budget > 0;
         ++pos) {
        Task &t = m.tasks[pos];
        while (budget > 0 && t.dispIdx < t.fetchIdx) {
            TraceIdx i = t.dispIdx;
            InstrState &s = m.istate[i];
            if (s.fetchCycle + m.cfg.frontendDepth > m.now)
                break;
            const DynInstr &d = m.trace->instrs[i];

            if (m.divertHolds(i, d, t)) {
                if (static_cast<int>(m.divert.size()) >=
                        m.cfg.divertEntries ||
                    !m.robAllowed(pos)) {
                    if (static_cast<int>(m.divert.size()) >=
                        m.cfg.divertEntries) {
                        ++m.res.divertQueueFullStalls;
                    }
                    break;
                }
                s.stage = InstrStage::Diverted;
                m.divert.push_back({i, 0});
                ++m.robUsed;
                ++t.robHeld;
                ++t.dispIdx;
                ++t.divertedCount;
                --budget;
                ++m.res.instrsDiverted;
            } else {
                if (static_cast<int>(m.sched.size()) >=
                        m.cfg.schedEntries ||
                    !m.robAllowed(pos)) {
                    break;
                }
                s.stage = InstrStage::InSched;
                m.sched.push_back(i);
                ++m.robUsed;
                ++t.robHeld;
                ++t.dispIdx;
                --budget;
            }
        }
    }
}

} // namespace polyflow::sim
