/**
 * @file
 * ScopedNs: wall-clock accumulation for opt-in stage profiling,
 * shared by the scalar run loop (core.cc) and the batch engine
 * (batch.cc). Internal to src/sim.
 */

#ifndef POLYFLOW_SIM_STAGE_TIMER_HH
#define POLYFLOW_SIM_STAGE_TIMER_HH

#include <chrono>
#include <cstdint>

namespace polyflow::sim {

/** Accumulates the scope's wall time into *slot when non-null. */
class ScopedNs
{
  public:
    explicit ScopedNs(std::uint64_t *slot) : _slot(slot)
    {
        if (_slot)
            _t0 = std::chrono::steady_clock::now();
    }
    ~ScopedNs()
    {
        if (_slot) {
            *_slot += std::uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - _t0)
                    .count());
        }
    }
    ScopedNs(const ScopedNs &) = delete;
    ScopedNs &operator=(const ScopedNs &) = delete;

  private:
    std::uint64_t *_slot;
    std::chrono::steady_clock::time_point _t0;
};

} // namespace polyflow::sim

#endif // POLYFLOW_SIM_STAGE_TIMER_HH
