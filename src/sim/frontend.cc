#include "sim/frontend.hh"

#include <algorithm>

namespace polyflow::sim {

void
Frontend::maybeSpawn(MachineState &m, Task &t, TraceIdx i,
                     const LinkedInstr &li)
{
    if (!m.source)
        return;
    bool isTail = &t == &m.tasks.back();
    if (!m.cfg.spawnFromAnyTask && !isTail)
        return;  // only the tail task may spawn (paper baseline)
    if (m.pending.valid)
        return;  // one spawn-unit port per cycle
    std::erase_if(m.ghosts,
                  [&](std::uint64_t e) { return e <= m.now; });
    if (static_cast<int>(m.tasks.size() + m.ghosts.size()) >=
        m.cfg.numTasks) {
        ++m.res.spawnsSkippedNoContext;
        return;
    }
    auto hint = m.source->query(li);
    if (!hint)
        return;
    const DynInstr &d = m.trace->instrs[i];
    if (m.cfg.spawnFeedback && m.feedback[d.img].disabled) {
        ++m.res.spawnsSkippedFeedback;
        return;
    }
    TraceIdx j =
        m.index->addrIndex().nextOccurrence(hint->targetPc, i);
    if (j == invalidTrace || j >= t.end)
        return;
    std::uint32_t dist = j - i;
    if (dist < m.cfg.minSpawnDistance ||
        dist > m.cfg.maxSpawnDistance) {
        ++m.res.spawnsSkippedDistance;
        return;
    }

    // Truncate the parent immediately (its fetch must stop at the
    // new boundary this cycle); the context allocation is applied
    // after fetch finishes so task positions stay stable during
    // the fetch loop.
    m.pending.valid = true;
    m.pending.parentBegin = t.begin;
    m.pending.start = j;
    m.pending.end = t.end;
    m.pending.hint = *hint;
    m.pending.triggerPc = li.addr;
    m.pending.triggerImg = d.img;
    m.pending.ghr = t.ghr;
    m.pending.ras = t.ras;
    t.end = j;
}

void
Frontend::applySpawn(MachineState &m)
{
    if (!m.pending.valid)
        return;
    m.pending.valid = false;
    // Re-find the parent (it cannot have retired mid-cycle: its
    // fetch was active this cycle, so it still has uncommitted
    // instructions).
    for (size_t pos = 0; pos < m.tasks.size(); ++pos) {
        Task &t = m.tasks[pos];
        if (t.begin != m.pending.parentBegin ||
            t.end != m.pending.start) {
            continue;
        }
        Task nt;
        nt.begin = m.pending.start;
        nt.end = m.pending.end;
        nt.fetchIdx = nt.dispIdx = nt.begin;
        nt.fetchReady = m.now + m.cfg.spawnStartupDelay;
        nt.lastFetchStall = FetchStall::SpawnStartup;
        nt.ghr = m.pending.ghr;
        nt.ras = m.pending.ras;
        nt.triggerPc = m.pending.triggerPc;
        nt.triggerImg = m.pending.triggerImg;
        nt.depMask = m.pending.hint.depMask;
        if (m.events) {
            m.events->push_back({TaskEvent::Kind::Spawn, m.now,
                                 nt.begin, nt.end, nt.triggerPc,
                                 m.commitIdx, 0});
        }
        m.tasks.insert(m.tasks.begin() + pos + 1, std::move(nt));
        ++m.res.spawns;
        ++m.res.spawnsByKind[static_cast<int>(m.pending.hint.kind)];
        ++m.feedback[m.pending.triggerImg].spawns;
        return;
    }
}

void
Frontend::fetch(MachineState &m)
{
    std::vector<size_t> eligible;
    fetchImpl(m, eligible);
}

void
Frontend::fetch(std::span<MachineState *const> machines)
{
    for (MachineState *m : machines) {
        fetchImpl(*m, _eligible);
        applySpawn(*m);
    }
}

void
Frontend::fetchImpl(MachineState &m, std::vector<size_t> &eligible)
{
    // Eligible tasks, scheduled by biased ICount: fewest in-flight
    // instructions first, biased toward older tasks.
    eligible.clear();
    for (size_t pos = 0; pos < m.tasks.size(); ++pos) {
        Task &t = m.tasks[pos];
        if (t.fetchIdx >= t.end || t.fetchReady > m.now ||
            t.blockedOnBranch != invalidTrace)
            continue;
        if (static_cast<int>(t.fetchIdx - t.dispIdx) >=
            m.cfg.fetchQueueEntries)
            continue;
        eligible.push_back(pos);
    }
    std::sort(eligible.begin(), eligible.end(),
              [&](size_t a, size_t b) {
                  // ICount over front-end occupancy (fetched but
                  // not yet renamed), biased toward older tasks.
                  auto key = [&](size_t p) {
                      const Task &tk = m.tasks[p];
                      return static_cast<long long>(tk.fetchIdx -
                                                    tk.dispIdx) +
                          static_cast<long long>(
                              m.cfg.icountAgeBias) *
                          static_cast<long long>(p);
                  };
                  long long ka = key(a), kb = key(b);
                  return ka != kb ? ka < kb : a < b;
              });

    int totalBudget = m.cfg.pipelineWidth;
    int tasksFetched = 0;
    for (size_t pos : eligible) {
        if (tasksFetched >= m.cfg.fetchTasksPerCycle ||
            totalBudget <= 0)
            break;
        ++tasksFetched;
        Task &t = m.tasks[pos];
        int taken = 0;
        while (totalBudget > 0 && t.fetchIdx < t.end &&
               t.fetchReady <= m.now &&
               t.blockedOnBranch == invalidTrace &&
               static_cast<int>(t.fetchIdx - t.dispIdx) <
                   m.cfg.fetchQueueEntries) {
            TraceIdx i = t.fetchIdx;
            const LinkedInstr &li = m.staticOf(i);
            const DynInstr &d = m.trace->instrs[i];

            // Instruction cache.
            Addr line = li.addr / Addr(m.cfg.l1i.lineBytes);
            if (line != t.curFetchLine) {
                int lat = m.hier.accessInstr(li.addr);
                t.curFetchLine = line;
                if (lat > 1) {
                    t.fetchReady = m.now + lat;
                    t.lastFetchStall = FetchStall::ICache;
                    break;
                }
            }

            m.istate[i].stage = InstrStage::Fetched;
            m.istate[i].fetchCycle = m.now;
            ++t.fetchIdx;
            ++t.inflight;
            --totalBudget;

            const Instruction &in = li.instr;
            bool mispredict = false;
            if (in.isCondBranch()) {
                ++m.res.condBranches;
                bool pred = m.gshare.predict(li.addr, t.ghr);
                m.gshare.update(li.addr, t.ghr, d.taken);
                t.ghr = m.gshare.shiftHistory(t.ghr, d.taken);
                if (pred != d.taken) {
                    ++m.res.branchMispredicts;
                    mispredict = true;
                }
            } else if (in.isCall()) {
                t.ras.push(li.addr + instrBytes);
                if (in.op == Opcode::JALR) {
                    Addr p = m.indirect.predict(li.addr);
                    m.indirect.update(li.addr, d.effAddr);
                    if (p != d.effAddr) {
                        ++m.res.indirectMispredicts;
                        mispredict = true;
                    }
                }
            } else if (in.isReturn()) {
                Addr p = t.ras.pop();
                if (p != d.effAddr) {
                    ++m.res.returnMispredicts;
                    mispredict = true;
                }
            } else if (in.isIndirectJump()) {
                Addr p = m.indirect.predict(li.addr);
                m.indirect.update(li.addr, d.effAddr);
                if (p != d.effAddr) {
                    ++m.res.indirectMispredicts;
                    mispredict = true;
                }
            }

            maybeSpawn(m, t, i, li);

            if (mispredict) {
                t.blockedOnBranch = i;
                // Wrong-path fetch past this branch would have
                // spawned bogus tasks; hold a context hostage until
                // the branch resolves (squash of the ghost task).
                if (m.source && m.cfg.wrongPathGhosts &&
                    static_cast<int>(m.tasks.size() +
                                     m.ghosts.size()) <
                        m.cfg.numTasks) {
                    m.ghosts.push_back(
                        m.now + m.cfg.minMispredictPenalty);
                }
                break;
            }
            if (d.taken) {
                t.curFetchLine = invalidAddr;  // fetch redirect
                if (++taken >= m.cfg.maxTakenPerTaskCycle)
                    break;
            }
        }
    }
}

} // namespace polyflow::sim
