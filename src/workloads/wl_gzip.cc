/**
 * @file
 * gzip: LZ77 flavour — a match-length scan with a data-dependent
 * but mostly short inner loop, and a bit-packing pass with highly
 * predictable branches. High baseline IPC, modest spawn gains, like
 * the real benchmark.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/**
 * Emit longest_match(a0 = window, a1 = positions, a2 = count,
 * a3 = out): for each position pair, scan forward while bytes match
 * (geometric lengths), remembering the best length.
 */
void
emitLongestMatch(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId outer = b.newBlock("outer");
    BlockId scan = b.newBlock("scan");
    BlockId scanCont = b.newBlock("scan_cont");
    BlockId scanEnd = b.newBlock("scan_end");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    // a0 = window, a1 = window limit (bytes to encode), a3 = out.
    // The cursor advances by the match length found at each step,
    // exactly like deflate: iteration handoff is loop-carried.
    b.li(s0, 64);           // cursor i
    b.li(s6, 0);            // rolling checksum
    b.jump(outer);

    b.setBlock(outer);
    // Candidate j: a cheap hash of the cursor (dictionary probe).
    b.slli(t5, s0, 3);
    b.xor_(t5, t5, s0);
    b.andi(t5, t5, 1023);
    b.add(t2, s0, a0);      // &window[i]
    b.add(t3, t5, a0);      // &window[j]
    b.li(t4, 0);            // match length
    b.jump(scan);

    b.setBlock(scan);
    b.lbu(t5, t2, 0);
    b.lbu(t6, t3, 0);
    b.bne(t5, t6, scanEnd);

    b.setBlock(scanCont);
    b.addi(t2, t2, 1);
    b.addi(t3, t3, 1);
    b.addi(t4, t4, 1);
    b.slti(t7, t4, 32);
    b.bne(t7, zero, scan);

    b.setBlock(scanEnd);
    b.slli(t7, t4, 2);
    b.xor_(s6, s6, t7);
    b.add(s6, s6, t4);

    b.setBlock(latch);
    b.addi(s0, s0, 1);
    b.add(s0, s0, t4);      // advance by the match length
    b.blt(s0, a1, outer);
    b.setBlock(exit);
    b.sd(s6, a3, 0);
    b.ret();
}

/**
 * Emit pack_bits(a0 = lengths, a1 = count, a2 = out): fold values
 * into a bit buffer with fully predictable control flow.
 */
void
emitPackBits(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId flush = b.newBlock("flush");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.mov(t0, a0);
    b.mov(t1, a1);
    b.li(t2, 0);            // bit buffer
    b.li(t3, 0);            // bit count
    b.mov(t4, a2);          // out cursor
    b.jump(loop);

    b.setBlock(loop);
    b.ld(t5, t0, 0);
    b.andi(t5, t5, 0x1f);
    b.sll(t5, t5, t3);
    b.or_(t2, t2, t5);
    b.addi(t3, t3, 5);
    b.slti(t6, t3, 56);
    b.bne(t6, zero, latch); // predictable: flush every ~11th
    b.setBlock(flush);
    b.sd(t2, t4, 0);
    b.addi(t4, t4, 8);
    b.li(t2, 0);
    b.li(t3, 0);

    b.setBlock(latch);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.ret();
}

} // namespace

Workload
buildGzip(double scale)
{
    auto mod = std::make_unique<Module>("gzip");
    WlRng rng(0x621f);

    int windowBytes = 4096;
    int numPositions = 64;
    int iters = std::max(1, int(16 * scale));

    // Window with long runs so matches are a few bytes on average.
    Addr window = mod->allocData("window", windowBytes);
    {
        std::vector<std::uint8_t> bytes(windowBytes);
        std::uint8_t cur = 0;
        for (int i = 0; i < windowBytes; ++i) {
            if (rng.chance(8))
                cur = std::uint8_t(rng.next());
            bytes[i] = cur;
        }
        mod->setData(window, std::move(bytes));
    }
    // Position pairs within the window (leave scan headroom).
    Addr positions = mod->allocData("positions", numPositions * 16);
    {
        std::vector<std::uint8_t> bytes(numPositions * 16, 0);
        auto put64 = [&](size_t off, std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                bytes[off + i] = (v >> (8 * i)) & 0xff;
        };
        for (int p = 0; p < numPositions; ++p) {
            put64(size_t(p) * 16, rng.range(windowBytes - 64));
            put64(size_t(p) * 16 + 8, rng.range(windowBytes - 64));
        }
        mod->setData(positions, std::move(bytes));
    }
    Addr lengths = allocRandomWords(*mod, "lengths", 64, rng, 0x1f);
    Addr out = mod->allocData("out", 1024);

    Function &match = mod->createFunction("longest_match");
    emitLongestMatch(match);
    Function &pack = mod->createFunction("pack_bits");
    emitPackBits(pack);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(window));
        b.li(a1, 1400);
        b.li(a3, std::int64_t(out));
        b.call(match.id());
        b.li(a0, std::int64_t(lengths));
        b.li(a1, 64);
        b.li(a2, std::int64_t(out) + 8);
        b.call(pack.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "gzip";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
