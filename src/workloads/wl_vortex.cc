/**
 * @file
 * vortex: OO-database flavour — lookups, validations and updates
 * layered across many small functions whose combined footprint far
 * exceeds the 8 KB L1 I-cache. Procedure fall-through spawns start
 * fetching the caller's continuation (and its I-cache misses) early,
 * which is where the real vortex gets its headroom.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

// Record layout: key, f0, f1, f2 (8 bytes each).
constexpr size_t recBytes = 32;

/** Emit hash(a0 = key) -> a0: a short mixing function. */
void
emitHash(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    b.li(t0, 0x9e3779b97f4a7c15);
    b.mul(a0, a0, t0);
    b.srli(t1, a0, 29);
    b.xor_(a0, a0, t1);
    b.andi(a0, a0, 63);
    b.ret();
}

/**
 * Emit a field validator: check_field<i>(a0 = record) -> a0 flag,
 * with filler arithmetic to give the function real I-footprint.
 */
void
emitCheckField(Function &fn, int field, WlRng &rng)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId fixup = b.newBlock("fixup");
    BlockId out = b.newBlock("out");
    b.ld(t0, a0, 8 + 8 * field);
    // Field-check mixing: four parallel accumulator lanes give the
    // function real instruction footprint without a serial chain.
    b.addi(t1, t0, 0x111);
    b.xori(t2, t0, 0x9e3);
    for (int i = 0; i < 100; ++i) {
        RegId lane = RegId(reg::t0 + i % 3);
        b.xori(t5, lane, std::int64_t(rng.range(4096)));
        b.slli(t6, t5, (i % 5) + 1);
        b.add(lane, lane, t6);
    }
    b.xor_(t0, t0, t1);
    b.xor_(t0, t0, t2);
    b.andi(t4, t0, 7);
    b.bne(t4, zero, out);    // usually fine (~87%)
    b.setBlock(fixup);
    b.addi(t0, t0, 5);
    b.sd(t0, a0, 8 + 8 * field);
    b.setBlock(out);
    b.mov(a0, t0);
    b.ret();
}

/** Emit validate(a0 = record): calls every field validator. */
void
emitValidate(Function &fn, const std::vector<FuncId> &checkers)
{
    FunctionBuilder b(fn);
    using namespace reg;
    b.addi(sp, sp, -32);
    b.sd(ra, sp, 0);
    b.sd(s0, sp, 8);
    b.sd(s1, sp, 16);
    b.mov(s0, a0);
    b.li(s1, 0);
    for (FuncId c : checkers) {
        b.mov(a0, s0);
        b.call(c);
        b.add(s1, s1, a0);
    }
    b.sd(s1, s0, 8);
    b.ld(ra, sp, 0);
    b.ld(s0, sp, 8);
    b.ld(s1, sp, 16);
    b.addi(sp, sp, 32);
    b.ret();
}

/**
 * Emit lookup(a0 = key, a1 = buckets, a2 = records) -> a0 record
 * ptr. Hashes the key (touching the bucket directory), then probes
 * the 4-record group containing the key; the probe loop runs 1-4
 * iterations.
 */
void
emitLookup(Function &fn, FuncId hashId)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId walk = b.newBlock("walk");
    BlockId next = b.newBlock("next");
    BlockId miss = b.newBlock("miss");
    BlockId found = b.newBlock("found");
    b.addi(sp, sp, -16);
    b.sd(ra, sp, 0);
    b.mov(t8, a0);          // key survives the call
    b.call(hashId);
    b.slli(t0, a0, 3);
    b.add(t0, t0, a1);
    b.ld(t5, t0, 0);        // touch the bucket directory
    b.andi(t1, t8, 124);    // probe start: key's 4-record group
    b.add(t1, t1, t5);
    b.sub(t1, t1, t5);      // (keep the directory value live)
    b.li(t6, 4);            // probes left
    b.jump(walk);

    b.setBlock(walk);
    b.slli(t2, t1, 5);      // * recBytes
    b.add(t2, t2, a2);
    b.ld(t3, t2, 0);        // record key
    b.beq(t3, t8, found);
    b.setBlock(next);
    b.addi(t1, t1, 1);
    b.addi(t6, t6, -1);
    b.bne(t6, zero, walk);
    b.setBlock(miss);
    b.li(t2, 0);
    b.setBlock(found);
    b.mov(a0, t2);
    b.ld(ra, sp, 0);
    b.addi(sp, sp, 16);
    b.ret();
}

/** Emit update(a0 = record): rewrite two fields with filler math. */
void
emitUpdate(Function &fn, WlRng &rng)
{
    FunctionBuilder b(fn);
    using namespace reg;
    b.ld(t0, a0, 16);
    b.addi(t1, t0, 0x2f);
    b.xori(t2, t0, 0x51);
    for (int i = 0; i < 60; ++i) {
        RegId lane = RegId(reg::t0 + i % 3);
        b.addi(t5, lane, std::int64_t(rng.range(999)));
        b.slli(t5, t5, (i % 3) + 1);
        b.xor_(lane, lane, t5);
    }
    b.xor_(t0, t0, t1);
    b.xor_(t0, t0, t2);
    b.sd(t0, a0, 16);
    b.ld(t3, a0, 24);
    b.add(t3, t3, t0);
    b.sd(t3, a0, 24);
    b.ret();
}

} // namespace

Workload
buildVortex(double scale)
{
    auto mod = std::make_unique<Module>("vortex");
    WlRng rng(0xd07e);

    int numRecords = 128;
    int numKeys = 48;
    int iters = std::max(1, int(3 * scale));

    // Records keyed 0..numRecords-1 (hash walk finds them quickly).
    Addr records = mod->allocData("records", numRecords * recBytes);
    {
        std::vector<std::uint8_t> bytes(numRecords * recBytes, 0);
        auto put64 = [&](size_t off, std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                bytes[off + i] = (v >> (8 * i)) & 0xff;
        };
        for (int r = 0; r < numRecords; ++r) {
            size_t off = size_t(r) * recBytes;
            put64(off, r);
            put64(off + 8, rng.next());
            put64(off + 16, rng.next());
            put64(off + 24, rng.next());
        }
        mod->setData(records, std::move(bytes));
    }
    // Buckets: hash value -> starting record index.
    Addr buckets = mod->allocData("buckets", 64 * 8);
    {
        std::vector<std::uint8_t> bytes(64 * 8, 0);
        for (int h = 0; h < 64; ++h) {
            std::uint64_t idx = rng.range(numRecords);
            for (int i = 0; i < 8; ++i)
                bytes[size_t(h) * 8 + i] = (idx >> (8 * i)) & 0xff;
        }
        mod->setData(buckets, std::move(bytes));
    }
    Addr keyList = allocRandomWords(*mod, "keys", numKeys, rng, 127);

    Function &hash = mod->createFunction("hash");
    emitHash(hash);
    std::vector<FuncId> checkers;
    for (int c = 0; c < 6; ++c) {
        Function &cf = mod->createFunction(
            "check_field" + std::to_string(c));
        emitCheckField(cf, c % 3, rng);
        checkers.push_back(cf.id());
    }
    Function &validate = mod->createFunction("validate");
    emitValidate(validate, checkers);
    Function &lookup = mod->createFunction("lookup");
    emitLookup(lookup, hash.id());
    Function &update = mod->createFunction("update");
    emitUpdate(update, rng);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId outer = b.newBlock("outer");
        BlockId inner = b.newBlock("inner");
        BlockId haveRec = b.newBlock("have_rec");
        BlockId innerLatch = b.newBlock("inner_latch");
        BlockId outerLatch = b.newBlock("outer_latch");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(outer);

        b.setBlock(outer);
        b.li(s0, std::int64_t(keyList));
        b.li(s1, numKeys);
        b.jump(inner);

        b.setBlock(inner);
        b.ld(a0, s0, 0);
        b.li(a1, std::int64_t(buckets));
        b.li(a2, std::int64_t(records));
        b.call(lookup.id());
        b.beq(a0, zero, innerLatch);  // rare miss
        b.setBlock(haveRec);
        b.mov(s2, a0);
        b.call(validate.id());
        b.mov(a0, s2);
        b.call(update.id());
        b.setBlock(innerLatch);
        b.addi(s0, s0, 8);
        b.addi(s1, s1, -1);
        b.bne(s1, zero, inner);

        b.setBlock(outerLatch);
        b.addi(s7, s7, -1);
        b.bne(s7, zero, outer);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "vortex";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
