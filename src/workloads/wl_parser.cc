/**
 * @file
 * parser: recursive-descent flavour — a real expression grammar
 * (expr = term ('+' term)*, term = factor ('*' factor)*, factor =
 * NUM | '(' expr ')') parsed over a pre-generated token stream, with
 * genuine recursion through the call stack. The cursor travels in
 * a0 through calls and returns (as a register-allocating compiler
 * would produce), and every token carries an independent "semantic
 * action" computation, so the token-to-token serial chain is thin —
 * like the dictionary work in the real parser.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

enum TokType : std::uint8_t {
    tokNum = 0,
    tokPlus = 1,
    tokTimes = 2,
    tokLparen = 3,
    tokRparen = 4,
    tokEnd = 5,
};

/** Host-side random expression generator (bounded depth). */
void
genExpr(std::vector<std::uint8_t> &out, WlRng &rng, int depth);

void
genFactor(std::vector<std::uint8_t> &out, WlRng &rng, int depth)
{
    if (depth >= 3 || rng.chance(92)) {
        out.push_back(tokNum);
        out.push_back(std::uint8_t(rng.range(200)));
    } else {
        out.push_back(tokLparen);
        out.push_back(0);
        genExpr(out, rng, depth + 1);
        out.push_back(tokRparen);
        out.push_back(0);
    }
}

void
genTerm(std::vector<std::uint8_t> &out, WlRng &rng, int depth)
{
    genFactor(out, rng, depth);
    while (rng.chance(52)) {
        out.push_back(tokTimes);
        out.push_back(0);
        genFactor(out, rng, depth);
    }
}

void
genExpr(std::vector<std::uint8_t> &out, WlRng &rng, int depth)
{
    genTerm(out, rng, depth);
    while (rng.chance(55)) {
        out.push_back(tokPlus);
        out.push_back(0);
        genTerm(out, rng, depth);
    }
}

// Calling convention: gp = token array base (set once by main);
// a0 = cursor in/out (token index); a1 = value out.

/** Emit parse_factor. */
void
emitParseFactor(Function &fn, FuncId parseExpr)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId num = b.newBlock("num");
    BlockId paren = b.newBlock("paren");
    BlockId out = b.newBlock("out");

    b.addi(sp, sp, -16);
    b.sd(ra, sp, 0);
    b.slli(t2, a0, 1);
    b.add(t2, t2, gp);
    b.lbu(t3, t2, 0);       // token type
    b.bne(t3, zero, paren); // != NUM (~35%)

    // NUM: consume, then run the independent semantic action on
    // the operand byte.
    b.setBlock(num);
    b.lbu(t4, t2, 1);
    b.addi(a0, a0, 1);
    b.slli(t5, t4, 7);
    b.xor_(t5, t5, t4);
    b.addi(t6, t4, 0x55);
    b.mul(t6, t6, t5);
    b.srli(t7, t6, 9);
    b.xor_(t6, t6, t7);
    b.slli(t7, t6, 3);
    b.add(t6, t6, t7);
    b.xori(t5, t6, 0x3c9);
    b.srai(t7, t5, 2);
    b.add(t5, t5, t7);
    b.slli(t7, t5, 5);
    b.xor_(t5, t5, t7);
    b.srli(t7, t5, 11);
    b.add(t6, t5, t7);
    b.andi(a1, t6, 0xffff);
    b.jump(out);

    b.setBlock(paren);
    b.addi(a0, a0, 1);      // consume '('
    b.call(parseExpr);
    b.addi(a0, a0, 1);      // consume ')'

    b.setBlock(out);
    b.ld(ra, sp, 0);
    b.addi(sp, sp, 16);
    b.ret();
}

/**
 * Emit a binary-operator level: parse_term / parse_expr. Calls
 * @p child, then folds further operands while the next token is
 * @p opToken.
 */
void
emitParseLevel(Function &fn, FuncId child, int opToken, bool isMul)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId more = b.newBlock("more");
    BlockId done = b.newBlock("done");

    b.addi(sp, sp, -16);
    b.sd(ra, sp, 0);
    b.sd(s0, sp, 8);
    b.call(child);
    b.mov(s0, a1);          // accumulator
    b.jump(loop);

    b.setBlock(loop);
    b.slli(t2, a0, 1);
    b.add(t2, t2, gp);
    b.lbu(t3, t2, 0);
    b.addi(t4, zero, opToken);
    b.bne(t3, t4, done);

    b.setBlock(more);
    b.addi(a0, a0, 1);      // consume the operator
    b.call(child);
    // Fold: independent shuffle of the operand, thin serial hop.
    b.slli(t5, a1, 2);
    b.xor_(t5, t5, a1);
    if (isMul) {
        b.mul(s0, s0, a1);
        b.andi(s0, s0, 0xffff);
        b.add(s0, s0, t5);
    } else {
        b.add(s0, s0, a1);
        b.xor_(s0, s0, t5);
    }
    b.jump(loop);

    b.setBlock(done);
    b.mov(a1, s0);
    b.ld(ra, sp, 0);
    b.ld(s0, sp, 8);
    b.addi(sp, sp, 16);
    b.ret();
}

} // namespace

Workload
buildParser(double scale)
{
    auto mod = std::make_unique<Module>("parser");
    WlRng rng(0x9a45e5);

    int iters = std::max(1, int(40 * scale));

    // One long random expression, terminated by tokEnd.
    std::vector<std::uint8_t> tokens;
    while (tokens.size() < 320 * 2) {
        genExpr(tokens, rng, 0);
        tokens.push_back(tokPlus);  // chain expressions together
        tokens.push_back(0);
    }
    tokens.pop_back();
    tokens.pop_back();
    tokens.push_back(tokEnd);
    tokens.push_back(0);
    Addr toks = mod->allocData("tokens", tokens.size());
    mod->setData(toks, tokens);
    Addr result = mod->allocData("result", 8);

    // Create all three first: factor forward-references expr.
    Function &factor = mod->createFunction("parse_factor");
    Function &term = mod->createFunction("parse_term");
    Function &expr = mod->createFunction("parse_expr");
    emitParseFactor(factor, expr.id());
    emitParseLevel(term, factor.id(), tokTimes, true);
    emitParseLevel(expr, term.id(), tokPlus, false);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.li(gp, std::int64_t(toks));
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, 0);        // cursor = 0
        b.call(expr.id());
        b.li(t0, std::int64_t(result));
        b.sd(a1, t0, 0);
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "parser";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
