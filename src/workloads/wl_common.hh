/**
 * @file
 * Shared helpers for the synthetic workload builders: a
 * deterministic host-side PRNG for initializing data segments, and
 * generators for common data shapes (random arrays, linked lists).
 */

#ifndef POLYFLOW_WORKLOADS_WL_COMMON_HH
#define POLYFLOW_WORKLOADS_WL_COMMON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/builder.hh"
#include "ir/module.hh"

namespace polyflow {

/** Deterministic xorshift64* PRNG for data-segment initialization. */
class WlRng
{
  public:
    explicit WlRng(std::uint64_t seed) : _s(seed ? seed : 0x1234567)
    {}

    std::uint64_t
    next()
    {
        _s ^= _s >> 12;
        _s ^= _s << 25;
        _s ^= _s >> 27;
        return _s * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, n). */
    std::uint64_t range(std::uint64_t n) { return next() % n; }

    /** True with probability @p percent / 100. */
    bool chance(int percent)
    {
        return static_cast<int>(range(100)) < percent;
    }

  private:
    std::uint64_t _s;
};

/** Allocate and fill an array of 64-bit pseudo-random words. */
Addr allocRandomWords(Module &mod, const std::string &name,
                      size_t count, WlRng &rng,
                      std::uint64_t mask = ~0ull);

/**
 * Allocate and fill an array of 64-bit words that are 0 or 1, with
 * the given probability (in percent) of being 1. The workloads use
 * these as data-dependent branch inputs with controlled
 * predictability.
 */
Addr allocBitWords(Module &mod, const std::string &name, size_t count,
                   int percentOnes, WlRng &rng);

/**
 * Build a singly linked list in the data segment. Each node has
 * @p fieldsPerNode 8-byte payload fields followed by the next
 * pointer; the i-th payload field of each node is pseudo-random.
 * Nodes are laid out in a shuffled order so address streams are not
 * trivially sequential. Returns the head node address.
 */
Addr allocLinkedList(Module &mod, const std::string &name,
                     size_t nodes, int fieldsPerNode, WlRng &rng);

/** Byte offset of payload field @p i in an allocLinkedList node. */
constexpr std::int64_t
listField(int i)
{
    return 8 * i;
}

/** Byte offset of the next pointer with @p fieldsPerNode fields. */
constexpr std::int64_t
listNext(int fieldsPerNode)
{
    return 8 * fieldsPerNode;
}

/**
 * Emit a counted loop skeleton. Creates header/body/latch/exit
 * blocks; the caller supplies the body via @p bodyFn, which must
 * leave the current block falling through to @p latch. The counter
 * lives in @p counterReg, counting down from @p iterations to zero.
 *
 * Shape (iterations >= 1):
 *   pre:    li counter, iterations
 *   header: body...
 *   latch:  addi counter, counter, -1; bne counter, r0, header
 *   exit:
 */
struct LoopBlocks
{
    BlockId header;
    BlockId latch;
    BlockId exit;
};

/**
 * Pad @p fn so the next function starts @p stride bytes past this
 * function's start. Aligning hot functions to the L1I set-index
 * stride (4 KiB for the Figure 8 L1I) makes their lines contend for
 * the same sets, reproducing the capacity/conflict pressure of a
 * benchmark whose real code footprint exceeds the cache.
 */
void padToStride(Function &fn, Addr stride = 4096, Addr stagger = 0);

} // namespace polyflow

#endif // POLYFLOW_WORKLOADS_WL_COMMON_HH
