/**
 * @file
 * vpr.place and vpr.route.
 *
 * vpr.place: simulated-annealing flavour — a move loop that
 * computes a swap cost over a small neighbor set and accepts or
 * rejects on a data-dependent ~50% branch, swapping on accept.
 * Loop-iteration and hammock spawns both matter.
 *
 * vpr.route: maze-routing flavour — an outer loop over independent
 * nets, each expanding a short path through a shared cost grid and
 * writing to a private output slot. Outer iterations are data
 * independent, so loop fall-through spawns expose the outer-loop
 * parallelism that made vpr.route the paper's loopFT showcase.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/**
 * Emit try_moves(a0 = cells, a1 = move list, a2 = count,
 * a3 = accept-noise words): per move, compute the cost of swapping
 * two cells against four neighbors and accept on a hard branch.
 */
void
emitTryMoves(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("move_loop");
    BlockId nbr = b.newBlock("nbr_loop");
    BlockId nbrAbs = b.newBlock("nbr_abs");
    BlockId nbrNext = b.newBlock("nbr_next");
    BlockId decide = b.newBlock("decide");
    BlockId accept = b.newBlock("accept");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.mov(s1, a2);          // remaining moves
    b.ld(s3, a3, 0);        // RNG state (annealing walk)
    b.jump(loop);

    // Move selection draws from the RNG state, which the accept
    // test below advances — move k+1's cells are unknown until
    // move k's decision, as in a real annealer.
    b.setBlock(loop);
    b.srli(t0, s3, 5);
    b.andi(t0, t0, 127);    // cell index x
    b.srli(t1, s3, 13);
    b.andi(t1, t1, 127);    // cell index y
    b.slli(t0, t0, 3);
    b.slli(t1, t1, 3);
    b.add(t0, t0, a0);
    b.add(t1, t1, a0);
    b.ld(t2, t0, 0);        // pos x
    b.ld(t3, t1, 0);        // pos y
    b.li(t4, 0);            // delta
    b.li(t5, 4);            // neighbors left
    b.jump(nbr);

    // Neighbor cost: |posx - posy + k| folded into delta.
    b.setBlock(nbr);
    b.sub(t6, t2, t3);
    b.add(t6, t6, t5);
    b.bgez(t6, nbrNext);
    b.setBlock(nbrAbs);
    b.sub(t6, zero, t6);
    b.setBlock(nbrNext);
    b.add(t4, t4, t6);
    b.srli(t7, t4, 1);
    b.xor_(t4, t4, t7);
    b.addi(t5, t5, -1);
    b.bne(t5, zero, nbr);

    // Accept test: delta bit mixed with the in-body LCG state
    // (~50% taken); the LCG update is the loop-carried chain that
    // real annealing acceptance implies.
    b.setBlock(decide);
    b.li(t6, 6364136223846793005);
    b.mul(s3, s3, t6);
    b.addi(s3, s3, 1442695040888963407);
    b.srli(t6, s3, 33);
    b.xor_(t7, t4, t6);
    b.andi(t7, t7, 1);
    b.beq(t7, zero, latch); // reject

    b.setBlock(accept);
    b.sd(t3, t0, 0);        // swap positions
    b.sd(t2, t1, 0);

    b.setBlock(latch);
    b.addi(s1, s1, -1);
    b.bne(s1, zero, loop);
    b.setBlock(exit);
    b.sd(s3, a3, 0);
    b.ret();
}

/**
 * Emit route_net(a0 = net path array, a1 = path length,
 * a2 = cost grid, a3 = out slot): accumulate grid costs along the
 * path and store the total to the net's private slot.
 */
void
emitRouteNet(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("hop_loop");
    BlockId bend = b.newBlock("bend");
    BlockId cont = b.newBlock("cont");
    BlockId exit = b.newBlock("exit");

    b.mov(t0, a0);
    b.mov(t1, a1);
    b.li(t2, 0);            // accumulated cost
    b.jump(loop);

    b.setBlock(loop);
    b.ld(t3, t0, 0);        // grid index
    b.slli(t4, t3, 3);
    b.add(t4, t4, a2);
    b.ld(t5, t4, 0);        // grid cost
    b.add(t2, t2, t5);
    b.andi(t6, t3, 3);      // bend penalty ~25% taken
    b.bne(t6, zero, cont);
    b.setBlock(bend);
    b.addi(t2, t2, 9);
    // Routing through a bend raises this cell's congestion cost,
    // which later nets observe (shared-grid coupling, as in the
    // real router's pathfinder loop).
    b.addi(t5, t5, 1);
    b.sd(t5, t4, 0);
    b.setBlock(cont);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.sd(t2, a3, 0);
    b.ret();
}

} // namespace

Workload
buildVprPlace(double scale)
{
    auto mod = std::make_unique<Module>("vpr.place");
    WlRng rng(0x9face);

    int numCells = 128;
    int numMoves = 48;
    int iters = std::max(1, int(95 * scale));

    Addr cells = allocRandomWords(*mod, "cells", numCells, rng, 0xfff);
    Addr seed = allocRandomWords(*mod, "seed", 1, rng);
    Addr moves = mod->allocData("moves", numMoves * 16);
    {
        std::vector<std::uint8_t> bytes(numMoves * 16, 0);
        auto put64 = [&](size_t off, std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                bytes[off + i] = (v >> (8 * i)) & 0xff;
        };
        for (int m = 0; m < numMoves; ++m) {
            put64(size_t(m) * 16, rng.range(numCells));
            put64(size_t(m) * 16 + 8, rng.range(numCells));
        }
        mod->setData(moves, std::move(bytes));
    }

    Function &tryMoves = mod->createFunction("try_moves");
    emitTryMoves(tryMoves);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(cells));
        b.li(a1, std::int64_t(moves));
        b.li(a2, numMoves);
        b.li(a3, std::int64_t(seed));
        b.call(tryMoves.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "vpr.place";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

Workload
buildVprRoute(double scale)
{
    auto mod = std::make_unique<Module>("vpr.route");
    WlRng rng(0x907e);

    int gridWords = 256;
    int numNets = 48;
    int pathLen = 12;
    int iters = std::max(1, int(42 * scale));

    Addr grid = allocRandomWords(*mod, "grid", gridWords, rng, 0xff);
    Addr paths = mod->allocData("paths", numNets * pathLen * 8);
    {
        std::vector<std::uint8_t> bytes(numNets * pathLen * 8, 0);
        for (int i = 0; i < numNets * pathLen; ++i) {
            std::uint64_t v = rng.range(gridWords);
            for (int b2 = 0; b2 < 8; ++b2)
                bytes[size_t(i) * 8 + b2] = (v >> (8 * b2)) & 0xff;
        }
        mod->setData(paths, std::move(bytes));
    }
    Addr outs = mod->allocData("net_costs", numNets * 8);

    Function &route = mod->createFunction("route_net");
    emitRouteNet(route);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId outer = b.newBlock("outer");
        BlockId nets = b.newBlock("net_loop");
        BlockId netLatch = b.newBlock("net_latch");
        BlockId outerLatch = b.newBlock("outer_latch");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(outer);

        b.setBlock(outer);
        b.li(s0, 0);            // net index
        b.jump(nets);

        // Per-net work is fully independent of other nets: outer
        // loop fall-through spawns overlap whole nets.
        b.setBlock(nets);
        b.li(t8, pathLen * 8);
        b.mul(a0, s0, t8);
        b.li(t8, std::int64_t(paths));
        b.add(a0, a0, t8);
        b.li(a1, pathLen);
        b.li(a2, std::int64_t(grid));
        b.slli(a3, s0, 3);
        b.li(t8, std::int64_t(outs));
        b.add(a3, a3, t8);
        b.call(route.id());
        b.setBlock(netLatch);
        b.addi(s0, s0, 1);
        b.slti(t8, s0, numNets);
        b.bne(t8, zero, nets);

        b.setBlock(outerLatch);
        b.addi(s7, s7, -1);
        b.bne(s7, zero, outer);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "vpr.route";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
