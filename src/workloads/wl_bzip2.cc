/**
 * @file
 * bzip2: block-sort flavour — counting passes and an
 * insertion-style pass over nearly sorted data. Branches are highly
 * predictable, giving the suite's highest baseline IPC and small
 * spawn gains, like the real benchmark.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/** Emit count_freqs(a0 = bytes, a1 = count, a2 = freq table). */
void
emitCountFreqs(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId exit = b.newBlock("exit");
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.jump(loop);
    b.setBlock(loop);
    b.lbu(t2, t0, 0);
    b.andi(t2, t2, 63);
    b.slli(t2, t2, 3);
    b.add(t2, t2, a2);
    b.ld(t3, t2, 0);
    b.addi(t3, t3, 1);
    b.sd(t3, t2, 0);
    b.addi(t0, t0, 1);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.ret();
}

/**
 * Emit bubble_pass(a0 = words, a1 = count): one pass of
 * compare-and-swap over nearly sorted 64-bit keys; the swap branch
 * is rarely taken (~8%), so prediction is easy.
 */
void
emitBubblePass(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId swap = b.newBlock("swap");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.addi(t1, t1, -1);
    b.jump(loop);
    b.setBlock(loop);
    b.ld(t2, t0, 0);
    b.ld(t3, t0, 8);
    b.bge(t3, t2, latch);   // usually in order
    b.setBlock(swap);
    b.sd(t3, t0, 0);
    b.sd(t2, t0, 8);
    b.setBlock(latch);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.ret();
}

/** Emit mtf_pass(a0 = bytes, a1 = count, a2 = out): fold a rolling
 *  transform with straight-line arithmetic (no hard branches). */
void
emitMtfPass(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId exit = b.newBlock("exit");
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.li(t4, 0x9e3779b9);
    b.li(t5, 0);
    b.jump(loop);
    b.setBlock(loop);
    b.lbu(t2, t0, 0);
    b.xor_(t5, t5, t2);
    b.mul(t5, t5, t4);
    b.srli(t6, t5, 17);
    b.xor_(t5, t5, t6);
    b.addi(t0, t0, 1);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.sd(t5, a2, 0);
    b.ret();
}

} // namespace

Workload
buildBzip2(double scale)
{
    auto mod = std::make_unique<Module>("bzip2");
    WlRng rng(0xb21b);

    int blockBytes = 768;
    int sortWords = 96;
    int iters = std::max(1, int(55 * scale));

    Addr block = mod->allocData("block", blockBytes);
    {
        std::vector<std::uint8_t> bytes(blockBytes);
        for (int i = 0; i < blockBytes; ++i)
            bytes[i] = std::uint8_t(rng.next());
        mod->setData(block, std::move(bytes));
    }
    // Nearly sorted keys: ascending with occasional inversions.
    Addr keys = mod->allocData("keys", sortWords * 8);
    {
        std::vector<std::uint8_t> bytes(sortWords * 8, 0);
        std::uint64_t v = 0;
        for (int i = 0; i < sortWords; ++i) {
            v += rng.range(64);
            std::uint64_t k = rng.chance(8) && v > 40 ? v - 40 : v;
            for (int b2 = 0; b2 < 8; ++b2)
                bytes[size_t(i) * 8 + b2] = (k >> (8 * b2)) & 0xff;
        }
        mod->setData(keys, std::move(bytes));
    }
    Addr freqs = mod->allocData("freqs", 64 * 8);
    Addr out = mod->allocData("out", 64);

    Function &count = mod->createFunction("count_freqs");
    emitCountFreqs(count);
    Function &bubble = mod->createFunction("bubble_pass");
    emitBubblePass(bubble);
    Function &mtf = mod->createFunction("mtf_pass");
    emitMtfPass(mtf);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(block));
        b.li(a1, 256);
        b.li(a2, std::int64_t(freqs));
        b.call(count.id());
        b.li(a0, std::int64_t(keys));
        b.li(a1, sortWords);
        b.call(bubble.id());
        b.li(a0, std::int64_t(block));
        b.li(a1, 192);
        b.li(a2, std::int64_t(out));
        b.call(mtf.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "bzip2";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
