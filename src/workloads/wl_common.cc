#include "workloads/wl_common.hh"

#include <algorithm>
#include <numeric>

namespace polyflow {

void
padToStride(Function &fn, Addr stride, Addr stagger)
{
    Addr bytes = fn.numInstrs() * instrBytes;
    fn.padding(stride - bytes % stride + stagger);
}

Addr
allocRandomWords(Module &mod, const std::string &name, size_t count,
                 WlRng &rng, std::uint64_t mask)
{
    Addr base = mod.allocData(name, count * 8);
    std::vector<std::uint8_t> bytes(count * 8);
    for (size_t i = 0; i < count; ++i) {
        std::uint64_t v = rng.next() & mask;
        for (int b = 0; b < 8; ++b)
            bytes[i * 8 + b] = (v >> (8 * b)) & 0xff;
    }
    mod.setData(base, std::move(bytes));
    return base;
}

Addr
allocBitWords(Module &mod, const std::string &name, size_t count,
              int percentOnes, WlRng &rng)
{
    Addr base = mod.allocData(name, count * 8);
    std::vector<std::uint8_t> bytes(count * 8, 0);
    for (size_t i = 0; i < count; ++i) {
        if (rng.chance(percentOnes))
            bytes[i * 8] = 1;
    }
    mod.setData(base, std::move(bytes));
    return base;
}

Addr
allocLinkedList(Module &mod, const std::string &name, size_t nodes,
                int fieldsPerNode, WlRng &rng)
{
    size_t nodeBytes = size_t(fieldsPerNode + 1) * 8;
    Addr base = mod.allocData(name, nodes * nodeBytes);

    // Shuffle the traversal order so node addresses are not a
    // simple sequential stream.
    std::vector<size_t> order(nodes);
    std::iota(order.begin(), order.end(), 0);
    for (size_t i = nodes; i > 1; --i)
        std::swap(order[i - 1], order[rng.range(i)]);

    std::vector<std::uint8_t> bytes(nodes * nodeBytes, 0);
    auto put64 = [&](size_t offset, std::uint64_t v) {
        for (int b = 0; b < 8; ++b)
            bytes[offset + b] = (v >> (8 * b)) & 0xff;
    };
    for (size_t i = 0; i < nodes; ++i) {
        size_t slot = order[i];
        size_t off = slot * nodeBytes;
        for (int f = 0; f < fieldsPerNode; ++f)
            put64(off + 8 * f, rng.next());
        std::uint64_t nextAddr = 0;
        if (i + 1 < nodes)
            nextAddr = base + order[i + 1] * nodeBytes;
        put64(off + 8 * fieldsPerNode, nextAddr);
    }
    mod.setData(base, std::move(bytes));
    return base + order[0] * nodeBytes;
}

} // namespace polyflow
