/**
 * @file
 * The synthetic workload suite: one program per SPEC2000 integer
 * benchmark used in the paper, each engineered to reproduce the
 * control-flow character that makes its namesake respond to a given
 * spawn class (see DESIGN.md, "Substitutions").
 */

#ifndef POLYFLOW_WORKLOADS_WORKLOADS_HH
#define POLYFLOW_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/module.hh"

namespace polyflow {

/** A ready-to-run benchmark program. */
struct Workload
{
    std::string name;
    std::unique_ptr<Module> module;
    LinkedProgram prog;
};

/**
 * Build one workload by name. @p scale multiplies the outer
 * iteration counts (1.0 gives the default dynamic length of a few
 * hundred thousand committed instructions; tests use smaller
 * scales).
 */
Workload buildWorkload(const std::string &name, double scale = 1.0);

/** The 12 benchmark names, in the paper's x-axis order. */
const std::vector<std::string> &allWorkloadNames();

/** @name Individual builders @{ */
Workload buildBzip2(double scale);
Workload buildCrafty(double scale);
Workload buildGap(double scale);
Workload buildGcc(double scale);
Workload buildGzip(double scale);
Workload buildMcf(double scale);
Workload buildParser(double scale);
Workload buildPerlbmk(double scale);
Workload buildTwolf(double scale);
Workload buildVortex(double scale);
Workload buildVprPlace(double scale);
Workload buildVprRoute(double scale);
/** @} */

} // namespace polyflow

#endif // POLYFLOW_WORKLOADS_WORKLOADS_HH
