/**
 * @file
 * twolf: a structural port of the paper's Figure 6 kernel,
 * new_dbox_a. An outer loop walks a linked list of terms; the inner
 * loop walks each term's net list and contains one if-then-else
 * (taken ~30%) and two ABS-style if-thens (taken ~50%), with the
 * cost accumulated through memory exactly as in the original. The
 * induction updates sit in the latch blocks just before the loop
 * branches, matching the paper's observation about PC 9f2c.
 */

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

// Net node layout: xpos, newx, flag, nterm.
constexpr std::int64_t netXpos = 0;
constexpr std::int64_t netNewx = 8;
constexpr std::int64_t netFlag = 16;
constexpr std::int64_t netNterm = 24;
constexpr size_t netBytes = 32;

// Term node layout: dimptr, nextterm.
constexpr std::int64_t termDim = 0;
constexpr std::int64_t termNext = 8;
constexpr size_t termBytes = 16;

constexpr std::int64_t newMean = 5000;
constexpr std::int64_t oldMean = 4800;

struct TermListInfo
{
    Addr termsHead;
    Addr netsBase;
    Addr flagPattern;
    int totalNets;
};

/** Build the term/dim/net object graph in the data segment. */
TermListInfo
buildTermList(Module &mod, int numTerms, WlRng &rng)
{
    // Count the nets first: 1..5 per term, average ~3 (the paper
    // reports three inner iterations on average).
    std::vector<int> netsPerTerm(numTerms);
    int totalNets = 0;
    for (int t = 0; t < numTerms; ++t) {
        netsPerTerm[t] = 1 + int(rng.range(5));
        totalNets += netsPerTerm[t];
    }

    Addr nets = mod.allocData("nets", totalNets * netBytes);
    Addr dims = mod.allocData("dims", numTerms * 8);
    Addr terms = mod.allocData("terms", numTerms * termBytes);

    std::vector<std::uint8_t> netB(totalNets * netBytes, 0);
    std::vector<std::uint8_t> dimB(numTerms * 8, 0);
    std::vector<std::uint8_t> termB(numTerms * termBytes, 0);
    auto put64 = [](std::vector<std::uint8_t> &v, size_t off,
                    std::uint64_t x) {
        for (int b = 0; b < 8; ++b)
            v[off + b] = (x >> (8 * b)) & 0xff;
    };

    int netIdx = 0;
    for (int t = 0; t < numTerms; ++t) {
        Addr firstNet = nets + Addr(netIdx) * netBytes;
        for (int n = 0; n < netsPerTerm[t]; ++n) {
            size_t off = size_t(netIdx) * netBytes;
            // xpos / newx uniform around the means, so the ABS
            // branches are ~50% taken.
            put64(netB, off + netXpos, oldMean - 500 + rng.range(1000));
            put64(netB, off + netNewx, newMean - 500 + rng.range(1000));
            // flag == 1 with ~70% probability: the if-then-else
            // branch (taken when flag != 1) is taken ~30%.
            put64(netB, off + netFlag, rng.chance(70) ? 1 : 0);
            Addr next = (n + 1 < netsPerTerm[t])
                ? nets + Addr(netIdx + 1) * netBytes : 0;
            put64(netB, off + netNterm, next);
            ++netIdx;
        }
        put64(dimB, size_t(t) * 8, firstNet);
        Addr nextTerm = (t + 1 < numTerms)
            ? terms + Addr(t + 1) * termBytes : 0;
        put64(termB, size_t(t) * termBytes + termDim,
              dims + Addr(t) * 8);
        put64(termB, size_t(t) * termBytes + termNext, nextTerm);
    }
    // Saved flag pattern: new_dbox_a clears flags as it runs, so
    // the driver restores them before every call (real twolf
    // re-marks moved nets elsewhere in the placer).
    Addr pattern = mod.allocData("flag_pattern", totalNets * 8);
    std::vector<std::uint8_t> patB(totalNets * 8, 0);
    for (int i = 0; i < totalNets; ++i)
        patB[size_t(i) * 8] = netB[size_t(i) * netBytes + netFlag];
    mod.setData(pattern, std::move(patB));

    mod.setData(nets, std::move(netB));
    mod.setData(dims, std::move(dimB));
    mod.setData(terms, std::move(termB));
    return {terms, nets, pattern, totalNets};
}

/**
 * Emit reset_flags(a0 = netsBase, a1 = patternBase, a2 = count):
 * restore every net's flag from the saved pattern.
 */
void
emitResetFlags(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId exit = b.newBlock("exit");
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.mov(t2, a2);
    b.jump(loop);
    b.setBlock(loop);
    b.ld(t3, t1, 0);
    b.sd(t3, t0, netFlag);
    b.addi(t0, t0, netBytes);
    b.addi(t1, t1, 8);
    b.addi(t2, t2, -1);
    b.bne(t2, zero, loop);
    b.setBlock(exit);
    b.ret();
}

/** Emit new_dbox_a(a0 = termptr head, a1 = costptr). */
void
emitNewDboxA(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId outerHeader = b.newBlock("outer_header");
    BlockId innerHeader = b.newBlock("inner_header");
    BlockId thenBlk = b.newBlock("then");
    BlockId elseBlk = b.newBlock("else");
    BlockId join1 = b.newBlock("join1");
    BlockId neg1 = b.newBlock("neg1");
    BlockId join2 = b.newBlock("join2");
    BlockId neg2 = b.newBlock("neg2");
    BlockId innerTail = b.newBlock("inner_tail");
    BlockId midwork = b.newBlock("midwork");
    BlockId outerLatch = b.newBlock("outer_latch");
    BlockId exit = b.newBlock("exit");

    // entry: s0 = termptr, s4/s5 = means; guard empty list.
    b.mov(s0, a0);
    b.li(s4, newMean);  // s4
    b.li(s5, oldMean);  // s5
    b.beq(s0, zero, exit);

    // outer_header ("9d60"): dimptr/netptr loads.
    b.setBlock(outerHeader);
    b.ld(s1, s0, termDim);     // dimptr
    b.ld(s2, s1, 0);           // netptr = dimptr->netptr
    b.beq(s2, zero, midwork);

    // inner_header ("9da0"): if (netptr->flag == 1).
    b.setBlock(innerHeader);
    b.ld(t0, s2, netXpos);     // oldx
    b.ld(t1, s2, netFlag);
    b.addi(t2, zero, 1);
    b.bne(t1, t2, elseBlk);
    // then: newx = netptr->newx; netptr->flag = 0.
    b.setBlock(thenBlk);
    b.ld(t3, s2, netNewx);
    b.sd(zero, s2, netFlag);
    b.jump(join1);

    b.setBlock(elseBlk);       // newx = oldx
    b.mov(t3, t0);

    // join1 ("9dbc"): t4 = ABS(newx - new_mean) part 1.
    b.setBlock(join1);
    b.sub(t4, t3, s4);
    b.bgez(t4, join2);
    b.setBlock(neg1);
    b.sub(t4, s4, t3);
    b.jump(join2);

    // join2 ("9dc8"): load *costptr, t6 = ABS(oldx - old_mean).
    b.setBlock(join2);
    b.ld(t5, a1, 0);
    b.sub(t6, t0, s5);
    b.bgez(t6, innerTail);
    b.setBlock(neg2);
    b.sub(t6, s5, t0);
    b.jump(innerTail);

    // inner_tail ("9dd8"): accumulate and advance netptr. The
    // induction load sits just before the loop branch.
    b.setBlock(innerTail);
    b.sub(t7, t4, t6);
    b.add(t5, t5, t7);
    b.sd(t5, a1, 0);
    b.ld(s2, s2, netNterm);
    b.bne(s2, zero, innerHeader);

    // midwork ("9dec.."): post-inner-loop adjustments.
    b.setBlock(midwork);
    b.ld(t0, a1, 0);
    b.srai(t1, t0, 4);
    b.add(t2, t1, s4);
    b.xor_(t3, t2, t0);
    b.andi(t3, t3, 0xffff);
    b.add(t0, t0, zero);
    b.sd(t3, a1, 8);

    // outer_latch ("9f28"): termptr = termptr->nextterm.
    b.setBlock(outerLatch);
    b.ld(s0, s0, termNext);
    b.bne(s0, zero, outerHeader);

    b.setBlock(exit);
    b.ret();
}

} // namespace

Workload
buildTwolf(double scale)
{
    auto mod = std::make_unique<Module>("twolf");
    WlRng rng(0x7701f);

    int numTerms = 60;
    int calls = std::max(1, int(48 * scale));

    TermListInfo info = buildTermList(*mod, numTerms, rng);
    Addr cost = mod->allocData("cost", 16);
    mod->setData64(cost, 0);

    Function &dbox = mod->createFunction("new_dbox_a");
    emitNewDboxA(dbox);
    Function &reset = mod->createFunction("reset_flags");
    emitResetFlags(reset);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("call_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, calls);       // s7 = call counter
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(info.netsBase));
        b.li(a1, std::int64_t(info.flagPattern));
        b.li(a2, info.totalNets);
        b.call(reset.id());
        b.li(a0, std::int64_t(info.termsHead));
        b.li(a1, std::int64_t(cost));
        b.call(dbox.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "twolf";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
