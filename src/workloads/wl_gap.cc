/**
 * @file
 * gap: computer-algebra flavour — a driver loop dispatching (by
 * direct calls) to a set of medium-sized arithmetic kernels, with
 * enough code spread to stress the I-cache. Procedure fall-through
 * spawns overlap the caller's continuation with the callee, as in
 * the real benchmark.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/**
 * Emit one arithmetic kernel: op<i>(a0 = vec, a1 = len, a2 = out).
 * A short loop with distinct per-kernel arithmetic; branches are
 * predictable so the interest is in call/return structure.
 */
void
emitKernel(Function &fn, int variant)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId exit = b.newBlock("exit");
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.li(t2, 0x100 + variant * 7);
    b.jump(loop);
    b.setBlock(loop);
    b.ld(t3, t0, 0);
    switch (variant % 4) {
      case 0:
        b.mul(t4, t3, t2);
        b.srli(t5, t4, 11);
        b.xor_(t2, t4, t5);
        break;
      case 1:
        b.add(t4, t3, t2);
        b.slli(t5, t4, 3);
        b.sub(t2, t5, t4);
        break;
      case 2:
        b.xor_(t4, t3, t2);
        b.srai(t5, t4, 2);
        b.add(t2, t4, t5);
        break;
      default:
        b.sub(t4, t2, t3);
        b.mul(t2, t4, t3);
        break;
    }
    // Three parallel mixing lanes: footprint without a serial
    // bottleneck (the real gap kernels are arithmetic-dense).
    b.addi(t4, t2, 0x7f + variant);
    b.xori(t5, t2, 0x1b3);
    for (int i = 0; i < 40 + 4 * (variant % 3); ++i) {
        RegId lane = RegId(reg::t2 + i % 3);
        b.slli(t6, lane, 1 + i % 9);
        b.xor_(lane, lane, t6);
    }
    b.xor_(t2, t2, t4);
    b.xor_(t2, t2, t5);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.sd(t2, a2, 0);
    b.ret();
}

} // namespace

Workload
buildGap(double scale)
{
    auto mod = std::make_unique<Module>("gap");
    WlRng rng(0x6a9);

    constexpr int numKernels = 12;
    int vecLen = 4;
    int iters = std::max(1, int(55 * scale));

    Addr vec = allocRandomWords(*mod, "vec", 64, rng);
    Addr outs = mod->allocData("outs", numKernels * 8);

    std::vector<FuncId> kernels;
    for (int k = 0; k < numKernels; ++k) {
        Function &fn =
            mod->createFunction("op" + std::to_string(k));
        emitKernel(fn, k);
        padToStride(fn, 1024, Addr(k % 4) * 256);
        kernels.push_back(fn.id());
    }

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        for (int k = 0; k < numKernels; ++k) {
            b.li(a0, std::int64_t(vec) + 8 * (k % 6));
            b.li(a1, vecLen);
            b.li(a2, std::int64_t(outs) + 8 * k);
            b.call(kernels[k]);
        }
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "gap";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
