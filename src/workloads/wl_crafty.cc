/**
 * @file
 * crafty: chess-evaluation flavour — a square-scan loop of nested,
 * data-dependent if-thens over board bit words (hard hammocks), a
 * piece-type switch through a jump table (an "other" spawn source),
 * and register-heavy bit manipulation.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/**
 * Emit evaluate(a0 = board words, a1 = count, a2 = jump table,
 * a3 = score ptr). Per square: two nested 50% if-thens with bit
 * work, then a 6-way switch on the piece type via an indirect jump.
 */
void
emitEvaluate(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("sq_loop");
    BlockId if1 = b.newBlock("if1_then");
    BlockId if2chk = b.newBlock("if2_check");
    BlockId if2 = b.newBlock("if2_then");
    BlockId sw = b.newBlock("switch");
    std::vector<BlockId> cases;
    for (int c = 0; c < 6; ++c)
        cases.push_back(b.newBlock("case" + std::to_string(c)));
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.mov(t1, a1);          // remaining squares
    b.li(s6, 0);            // score
    b.ld(s4, a0, 0);        // bit cursor: board scan state
    b.jump(loop);

    // Square selection depends on the scan state, which the end of
    // the previous iteration updates from the score — the
    // loop-carried pattern of real bitboard scan loops.
    b.setBlock(loop);
    b.andi(t0, s4, 63);     // square index
    b.slli(t0, t0, 3);
    b.add(t0, t0, a0);
    b.ld(t2, t0, 0);        // board word (random bits)
    b.andi(t3, t2, 1);
    b.beq(t3, zero, if2chk);    // ~50% hard
    b.setBlock(if1);
    b.srli(t4, t2, 13);
    b.xor_(s6, s6, t4);
    b.addi(s6, s6, 3);

    b.setBlock(if2chk);
    b.andi(t3, t2, 2);
    b.beq(t3, zero, sw);        // ~50% hard
    b.setBlock(if2);
    b.slli(t4, t2, 3);
    b.add(s6, s6, t4);
    b.srai(t5, s6, 5);
    b.xor_(s6, s6, t5);

    // switch (piece type = bits 8..10, 0..5 valid) via jump table.
    b.setBlock(sw);
    b.srli(t4, t2, 8);
    b.andi(t4, t4, 7);
    b.slti(t5, t4, 6);
    b.beq(t5, zero, latch);  // types 6..7: empty square, skip
    // Fall through to the dispatch block: index the table and jump.
    b.setBlock(cases[0]);
    b.slli(t5, t4, 3);
    b.add(t5, t5, a2);
    b.ld(t5, t5, 0);
    std::vector<BlockId> targets(cases.begin() + 1, cases.end());
    targets.push_back(latch);
    b.jr(t5, targets);

    // case bodies 1..5 do distinct score work; case 0's body is
    // reached when the table points back at it (type 0 maps to a
    // pawn-less quick exit through the latch), handled below.
    for (int c = 1; c < 6; ++c) {
        b.setBlock(cases[c]);
        b.addi(s6, s6, 7 * c);
        b.slli(t6, t2, c);
        b.xor_(s6, s6, t6);
        if (c % 2 == 0) {
            b.srai(t6, s6, 3);
            b.add(s6, s6, t6);
        }
        b.jump(latch);
    }

    b.setBlock(latch);
    // Advance the scan state from this square's board word (the
    // bitboard "clear lowest bit" pattern): the next square is
    // unknown until this square's word arrives.
    b.li(t7, 0x9e3779b97f4a7c15);
    b.mul(t7, t7, t2);
    b.xor_(s4, s4, t7);
    b.srli(t7, s4, 7);
    b.add(s4, s4, t7);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.sd(s6, a3, 0);
    b.ret();
}

} // namespace

Workload
buildCrafty(double scale)
{
    auto mod = std::make_unique<Module>("crafty");
    WlRng rng(0xc4af7);

    int numSquares = 64;
    int iters = std::max(1, int(130 * scale));

    Addr board = allocRandomWords(*mod, "board", numSquares, rng);
    Addr score = mod->allocData("score", 8);

    Function &eval = mod->createFunction("evaluate");
    emitEvaluate(eval);

    // Jump table: piece types 0..5 -> case blocks 1..5 and latch.
    // Type 0 goes straight to the latch (empty square).
    FuncId evalId = eval.id();
    // Block ids inside evaluate: see emitEvaluate's creation order:
    // 0 entry, 1 loop, 2 if1, 3 if2chk, 4 if2, 5 switch,
    // 6..11 cases, 12 latch, 13 exit.
    Addr jt = mod->allocJumpTable(
        "piece_jt",
        {{evalId, 12}, {evalId, 7}, {evalId, 8},
         {evalId, 9}, {evalId, 10}, {evalId, 11}});

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(board));
        b.li(a1, numSquares);
        b.li(a2, std::int64_t(jt));
        b.li(a3, std::int64_t(score));
        b.call(eval.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "crafty";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
