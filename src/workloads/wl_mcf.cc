/**
 * @file
 * mcf: network-simplex flavour — an arc-scan loop full of
 * data-dependent, ~50%-taken branches over pointer-linked node data,
 * plus a pointer-chasing tree walk. Hard hammocks inside loops are
 * the dominant opportunity, as in the real benchmark.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

// Arc layout (linked list): ident, tail index, head index, cost,
// next pointer. The list walk serializes iteration handoff just
// like the real mcf's arc/node pointer structures.
constexpr std::int64_t arcIdent = 0;
constexpr std::int64_t arcTail = 8;
constexpr std::int64_t arcHead = 16;
constexpr std::int64_t arcCost = 24;
constexpr std::int64_t arcNext = 32;
constexpr size_t arcBytes = 40;

// Node layout: potential, flow.
constexpr std::int64_t nodePot = 0;
constexpr std::int64_t nodeFlow = 8;
constexpr size_t nodeBytes = 16;

/**
 * Emit scan_arcs(a0 = arc list head, a2 = nodes): walk the arc
 * list; for each arc with positive ident, push reduced cost into
 * the head node's flow. The ident test and the ABS hammock are
 * ~50% taken; the next-arc pointer load in the latch makes
 * iteration handoff a real dependence.
 */
void
emitScanArcs(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("arc_loop");
    BlockId work = b.newBlock("work");
    BlockId abs = b.newBlock("abs");
    BlockId accum = b.newBlock("accum");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.mov(t0, a0);          // arc cursor
    b.jump(loop);

    b.setBlock(loop);
    b.ld(t2, t0, arcIdent);
    b.bltz(t2, latch);      // ~50%: arc not in basis

    b.setBlock(work);
    b.ld(t3, t0, arcTail);
    b.ld(t4, t0, arcHead);
    b.slli(t3, t3, 4);      // * nodeBytes
    b.slli(t4, t4, 4);
    b.add(t3, t3, a2);
    b.add(t4, t4, a2);
    b.ld(t5, t3, nodePot);  // dependent loads
    b.ld(t6, t4, nodePot);
    b.ld(t7, t0, arcCost);
    b.add(t5, t5, t7);
    b.sub(t5, t5, t6);      // reduced cost
    b.bgez(t5, accum);      // ~50% ABS hammock
    b.setBlock(abs);
    b.sub(t5, zero, t5);
    b.jump(accum);

    b.setBlock(accum);
    b.ld(t6, t4, nodeFlow);
    b.add(t6, t6, t5);
    b.sd(t6, t4, nodeFlow);

    b.setBlock(latch);
    b.ld(t0, t0, arcNext);
    b.bne(t0, zero, loop);
    b.setBlock(exit);
    b.ret();
}

/**
 * Emit chase(a0 = head, a1 = acc ptr): walk a linked list; on nodes
 * whose key has bit 0 set (~50%) fold the key into the accumulator
 * register, finally store it. Dependent load chain throttles IPC.
 */
void
emitChase(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("chase_loop");
    BlockId fold = b.newBlock("fold");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.mov(t0, a0);
    b.li(t1, 0);            // acc
    b.beq(t0, zero, exit);

    b.setBlock(loop);
    b.ld(t2, t0, listField(0));
    b.andi(t3, t2, 1);
    b.beq(t3, zero, latch); // ~50%

    b.setBlock(fold);
    b.srli(t4, t2, 7);
    b.xor_(t1, t1, t4);
    b.add(t1, t1, t2);

    b.setBlock(latch);
    b.ld(t0, t0, listNext(2));
    b.bne(t0, zero, loop);

    b.setBlock(exit);
    b.sd(t1, a1, 0);
    b.ret();
}

} // namespace

Workload
buildMcf(double scale)
{
    auto mod = std::make_unique<Module>("mcf");
    WlRng rng(0x3cf);

    // MinneSPEC-sized working set (cache resident, like the
    // paper's lgred input where mcf still achieves IPC 1.91).
    int numArcs = 96;
    int numNodes = 64;
    int listNodes = 48;
    int iters = std::max(1, int(160 * scale));

    // Arcs linked in a shuffled order, ident with a random sign.
    Addr arcs = mod->allocData("arcs", numArcs * arcBytes);
    Addr arcHeadAddr;
    {
        std::vector<std::uint8_t> bytes(numArcs * arcBytes, 0);
        auto put64 = [&](size_t off, std::uint64_t v) {
            for (int i = 0; i < 8; ++i)
                bytes[off + i] = (v >> (8 * i)) & 0xff;
        };
        std::vector<int> order(numArcs);
        for (int a = 0; a < numArcs; ++a)
            order[a] = a;
        for (int a = numArcs; a > 1; --a)
            std::swap(order[a - 1], order[rng.range(a)]);
        for (int a = 0; a < numArcs; ++a) {
            size_t off = size_t(order[a]) * arcBytes;
            put64(off + arcIdent,
                  rng.chance(50) ? 1 : std::uint64_t(-1));
            put64(off + arcTail, rng.range(numNodes));
            put64(off + arcHead, rng.range(numNodes));
            put64(off + arcCost, rng.range(1000));
            Addr next = (a + 1 < numArcs)
                ? arcs + Addr(order[a + 1]) * arcBytes : 0;
            put64(off + arcNext, next);
        }
        arcHeadAddr = arcs + Addr(order[0]) * arcBytes;
        mod->setData(arcs, std::move(bytes));
    }
    Addr nodes = mod->allocData("nodes", numNodes * nodeBytes);
    {
        std::vector<std::uint8_t> bytes(numNodes * nodeBytes, 0);
        for (int n = 0; n < numNodes; ++n) {
            std::uint64_t pot = rng.range(2000);
            for (int i = 0; i < 8; ++i)
                bytes[size_t(n) * nodeBytes + i] = (pot >> (8 * i)) &
                    0xff;
        }
        mod->setData(nodes, std::move(bytes));
    }
    Addr listHead = allocLinkedList(*mod, "tree", listNodes, 2, rng);
    Addr acc = mod->allocData("acc", 8);

    Function &scan = mod->createFunction("scan_arcs");
    emitScanArcs(scan);
    Function &chase = mod->createFunction("chase");
    emitChase(chase);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(arcHeadAddr));
        b.li(a2, std::int64_t(nodes));
        b.call(scan.id());
        b.li(a0, std::int64_t(listHead));
        b.li(a1, std::int64_t(acc));
        b.call(chase.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "mcf";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
