/**
 * @file
 * perlbmk: interpreter flavour — a bytecode dispatch loop jumping
 * through a table of handlers with a pseudo-random opcode stream.
 * The indirect jump mispredicts constantly; its immediate
 * postdominator (the dispatch latch) is an "other" spawn point that
 * hides the misprediction, which is where perlbmk's unique gains
 * came from in the paper.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

constexpr int numOps = 8;

/**
 * Emit interp(a0 = bytecode, a1 = count, a2 = jump table,
 * a3 = operand stack base). Classic while-switch interpreter with a
 * memory operand stack.
 */
void
emitInterp(Function &fn, FuncId helper)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("dispatch");
    BlockId dispatch2 = b.newBlock("dispatch2");
    std::vector<BlockId> handlers;
    for (int h = 0; h < numOps; ++h)
        handlers.push_back(b.newBlock("op" + std::to_string(h)));
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    b.addi(sp, sp, -16);
    b.sd(ra, sp, 0);
    b.mov(s0, a0);          // bytecode pc
    b.mov(s1, a1);          // remaining
    b.mov(s2, a3);          // stack top
    b.li(s3, 1);            // stack depth (one sentinel)
    b.sd(zero, s2, 0);
    b.jump(loop);

    // dispatch: load the opcode, index the table, jump.
    b.setBlock(loop);
    b.lbu(t0, s0, 0);
    b.andi(t0, t0, numOps - 1);
    b.jump(dispatch2);
    b.setBlock(dispatch2);
    b.slli(t1, t0, 3);
    b.add(t1, t1, a2);
    b.ld(t1, t1, 0);
    b.jr(t1, handlers);

    // op0: push immediate-ish value.
    b.setBlock(handlers[0]);
    b.lbu(t2, s0, 1);
    b.addi(s2, s2, 8);
    b.sd(t2, s2, 0);
    b.addi(s3, s3, 1);
    b.jump(latch);
    // op1: add top two (keeps one), guarded against underflow.
    {
        BlockId doAdd = b.newBlock("op1_add");
        b.setBlock(handlers[1]);
        b.slti(t4, s3, 2);
        b.bne(t4, zero, latch);
        b.setBlock(doAdd);
        b.ld(t2, s2, 0);
        b.ld(t3, s2, -8);
        b.add(t2, t2, t3);
        b.sd(t2, s2, -8);
        b.addi(s2, s2, -8);
        b.addi(s3, s3, -1);
        b.jump(latch);
    }
    // op2: xor-shift the top.
    b.setBlock(handlers[2]);
    b.ld(t2, s2, 0);
    b.slli(t3, t2, 5);
    b.xor_(t2, t2, t3);
    b.sd(t2, s2, 0);
    b.jump(latch);
    // op3: dup-and-mix.
    b.setBlock(handlers[3]);
    b.ld(t2, s2, 0);
    b.srai(t3, t2, 3);
    b.add(t2, t2, t3);
    b.addi(s2, s2, 8);
    b.sd(t2, s2, 0);
    b.addi(s3, s3, 1);
    b.jump(latch);
    // op4: conditional negate (data-dependent hammock).
    {
        BlockId neg = b.newBlock("op4_neg");
        BlockId out = b.newBlock("op4_out");
        b.setBlock(handlers[4]);
        b.ld(t2, s2, 0);
        b.bgez(t2, out);
        b.setBlock(neg);
        b.sub(t2, zero, t2);
        b.sd(t2, s2, 0);
        b.setBlock(out);
        b.jump(latch);
    }
    // op5: multiply top by a constant.
    b.setBlock(handlers[5]);
    b.ld(t2, s2, 0);
    b.li(t3, 2654435761);
    b.mul(t2, t2, t3);
    b.sd(t2, s2, 0);
    b.jump(latch);
    // op6: pop (guarded by depth).
    {
        BlockId pop = b.newBlock("op6_pop");
        b.setBlock(handlers[6]);
        b.slti(t2, s3, 2);
        b.bne(t2, zero, latch);
        b.setBlock(pop);
        b.addi(s2, s2, -8);
        b.addi(s3, s3, -1);
        b.jump(latch);
    }
    // op7: call a helper on the top of stack.
    b.setBlock(handlers[7]);
    b.ld(a0, s2, 0);
    b.call(helper);
    b.sd(a0, s2, 0);
    b.jump(latch);

    b.setBlock(latch);
    b.addi(s0, s0, 2);
    b.addi(s1, s1, -1);
    b.bne(s1, zero, loop);
    b.setBlock(exit);
    b.ld(ra, sp, 0);
    b.addi(sp, sp, 16);
    b.ret();
}

/** Emit helper(a0) -> a0: a small pure function for op7. */
void
emitHelper(Function &fn)
{
    FunctionBuilder b(fn);
    using namespace reg;
    b.li(t0, 0xff51afd7ed558ccd);
    b.mul(a0, a0, t0);
    b.srli(t1, a0, 33);
    b.xor_(a0, a0, t1);
    b.ret();
}

} // namespace

Workload
buildPerlbmk(double scale)
{
    auto mod = std::make_unique<Module>("perlbmk");
    WlRng rng(0x9e71);

    int programLen = 384;
    int iters = std::max(1, int(60 * scale));

    // Pseudo-random bytecode: opcode byte + operand byte.
    Addr code = mod->allocData("bytecode", programLen * 2);
    {
        std::vector<std::uint8_t> bytes(programLen * 2);
        for (int i = 0; i < programLen; ++i) {
            bytes[size_t(i) * 2] = std::uint8_t(rng.range(numOps));
            bytes[size_t(i) * 2 + 1] = std::uint8_t(rng.next());
        }
        mod->setData(code, std::move(bytes));
    }
    Addr stack = mod->allocData("opstack", 8192);

    Function &helper = mod->createFunction("helper");
    emitHelper(helper);
    Function &interp = mod->createFunction("interp");
    emitInterp(interp, helper.id());

    // Handler blocks are ids 2..9 (entry=0, dispatch=1, dispatch2=?).
    // Build the jump table from the actual block ids: entry 0,
    // loop 1, dispatch2 2, handlers 3..10.
    std::vector<std::pair<FuncId, BlockId>> jt;
    for (int h = 0; h < numOps; ++h)
        jt.emplace_back(interp.id(), 3 + h);
    Addr table = mod->allocJumpTable("op_table", jt);

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        b.li(a0, std::int64_t(code));
        b.li(a1, programLen);
        b.li(a2, std::int64_t(table));
        b.li(a3, std::int64_t(stack) + 64);
        b.call(interp.id());
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "perlbmk";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
