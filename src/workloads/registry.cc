#include "workloads/workloads.hh"

#include <stdexcept>

namespace polyflow {

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "crafty", "gap", "gcc", "gzip", "mcf",
        "parser", "perlbmk", "twolf", "vortex", "vpr.place",
        "vpr.route",
    };
    return names;
}

Workload
buildWorkload(const std::string &name, double scale)
{
    if (name == "bzip2")
        return buildBzip2(scale);
    if (name == "crafty")
        return buildCrafty(scale);
    if (name == "gap")
        return buildGap(scale);
    if (name == "gcc")
        return buildGcc(scale);
    if (name == "gzip")
        return buildGzip(scale);
    if (name == "mcf")
        return buildMcf(scale);
    if (name == "parser")
        return buildParser(scale);
    if (name == "perlbmk")
        return buildPerlbmk(scale);
    if (name == "twolf")
        return buildTwolf(scale);
    if (name == "vortex")
        return buildVortex(scale);
    if (name == "vpr.place")
        return buildVprPlace(scale);
    if (name == "vpr.route")
        return buildVprRoute(scale);
    throw std::runtime_error("unknown workload: " + name);
}

} // namespace polyflow
