/**
 * @file
 * gcc: compiler flavour — many distinct medium-sized passes with
 * mixed control flow (hammocks of varying predictability, small
 * loops, an if-chain dispatcher and direct calls), spread across a
 * large static footprint. No single spawn class dominates, as in
 * the real benchmark.
 */

#include <algorithm>

#include "workloads/workloads.hh"
#include "workloads/wl_common.hh"

namespace polyflow {

namespace {

/**
 * Emit one leaf pass: pass<i>(a0 = words, a1 = count, a2 = out).
 * Structure varies with the variant: branch predictability ranges
 * from ~50% to ~95%, and some variants carry a nested hammock.
 */
void
emitLeafPass(Function &fn, int variant, WlRng &rng)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId loop = b.newBlock("loop");
    BlockId thenB = b.newBlock("then");
    BlockId inner = b.newBlock("inner_then");
    BlockId join = b.newBlock("join");
    BlockId latch = b.newBlock("latch");
    BlockId exit = b.newBlock("exit");

    // Branch selectivity: variant picks which data bits drive the
    // branch; low bits are uniform (~50%), the byte-compare form is
    // skewed (~94%).
    int bit = variant % 3;
    b.mov(t0, a0);
    b.mov(t1, a1);
    b.li(s6, 0x1000 + variant);
    b.jump(loop);

    b.setBlock(loop);
    b.ld(t2, t0, 0);
    if (variant % 4 == 3) {
        // Skewed branch: taken ~6% of the time.
        b.andi(t3, t2, 0xff);
        b.slti(t3, t3, 16);
        b.beq(t3, zero, join);
    } else {
        b.srli(t3, t2, bit);
        b.andi(t3, t3, 1);
        b.beq(t3, zero, join);
    }
    b.setBlock(thenB);
    b.xor_(s6, s6, t2);
    b.slli(t4, t2, 2);
    b.add(s6, s6, t4);
    if (variant % 2 == 0) {
        // Nested hammock on another bit (~50%).
        b.srli(t5, t2, 9);
        b.andi(t5, t5, 1);
        b.beq(t5, zero, join);
        b.setBlock(inner);
        b.srai(t6, s6, 4);
        b.xor_(s6, s6, t6);
    } else {
        b.jump(join);
        b.setBlock(inner);
        b.nop();  // unreachable filler keeps shapes distinct
    }

    b.setBlock(join);
    b.addi(s6, s6, 1);

    b.setBlock(latch);
    b.addi(t0, t0, 8);
    b.addi(t1, t1, -1);
    b.bne(t1, zero, loop);
    b.setBlock(exit);
    b.sd(s6, a2, 0);
    b.ret();
    (void)rng;
}

/**
 * Emit a mid-level pass that dispatches to three leaves through an
 * if-chain keyed on a mode word (predictable per call site).
 */
void
emitMidPass(Function &fn, FuncId l0, FuncId l1, FuncId l2)
{
    FunctionBuilder b(fn);
    using namespace reg;
    BlockId m1 = b.newBlock("mode1");
    BlockId m2 = b.newBlock("mode2");
    BlockId call0 = b.newBlock("call0");
    BlockId call1 = b.newBlock("call1");
    BlockId call2 = b.newBlock("call2");
    BlockId out = b.newBlock("out");

    b.addi(sp, sp, -16);
    b.sd(ra, sp, 0);
    // a3 = mode (0..2).
    b.addi(t0, zero, 1);
    b.blt(a3, t0, call0);
    b.setBlock(m1);
    b.beq(a3, t0, call1);
    b.setBlock(m2);
    b.jump(call2);

    b.setBlock(call0);
    b.call(l0);
    b.jump(out);
    b.setBlock(call1);
    b.call(l1);
    b.jump(out);
    b.setBlock(call2);
    b.call(l2);

    b.setBlock(out);
    b.ld(ra, sp, 0);
    b.addi(sp, sp, 16);
    b.ret();
}

} // namespace

Workload
buildGcc(double scale)
{
    auto mod = std::make_unique<Module>("gcc");
    WlRng rng(0x6cc);

    constexpr int numLeaves = 9;
    constexpr int numMids = 3;
    int words = 20;
    int iters = std::max(1, int(90 * scale));

    Addr data = allocRandomWords(*mod, "rtl", 64, rng);
    Addr outs = mod->allocData("outs", (numLeaves + numMids) * 8);

    std::vector<FuncId> leaves;
    for (int i = 0; i < numLeaves; ++i) {
        Function &fn = mod->createFunction("leaf" + std::to_string(i));
        emitLeafPass(fn, i, rng);
        padToStride(fn, 2048, Addr(i % 4) * 384);
        leaves.push_back(fn.id());
    }
    std::vector<FuncId> mids;
    for (int i = 0; i < numMids; ++i) {
        Function &fn = mod->createFunction("mid" + std::to_string(i));
        emitMidPass(fn, leaves[3 * i], leaves[3 * i + 1],
                    leaves[3 * i + 2]);
        padToStride(fn, 2048, Addr(i % 3) * 640);
        mids.push_back(fn.id());
    }

    Function &main = mod->createFunction("main");
    {
        FunctionBuilder b(main);
        using namespace reg;
        BlockId loop = b.newBlock("main_loop");
        BlockId done = b.newBlock("done");
        b.li(s7, iters);
        b.jump(loop);
        b.setBlock(loop);
        for (int i = 0; i < numMids; ++i) {
            for (int mode = 0; mode < 3; ++mode) {
                // Each pass starts from data selected by the
                // previous pass's result (passes form a pipeline,
                // as in a real compiler).
                int prev = (3 * i + mode + 7) % 9;
                b.li(t0, std::int64_t(outs) + 8 * prev);
                b.ld(t0, t0, 0);
                b.andi(t0, t0, 56);
                b.li(a0, std::int64_t(data));
                b.add(a0, a0, t0);
                b.li(a1, words);
                b.li(a2, std::int64_t(outs) + 8 * (3 * i + mode));
                b.li(a3, mode);
                b.call(mids[i]);
            }
        }
        b.addi(s7, s7, -1);
        b.bne(s7, zero, loop);
        b.setBlock(done);
        b.halt();
    }
    mod->entryFunction(main.id());

    Workload w;
    w.name = "gcc";
    w.prog = mod->link();
    w.module = std::move(mod);
    return w;
}

} // namespace polyflow
