/**
 * @file
 * task_timeline: trace the Task Spawn Unit's decisions on one
 * workload and render an ASCII timeline of task lifetimes — which
 * spawn created each task, how long it lived, and where squashes
 * hit. A compact way to *see* control-equivalent spawning at work.
 *
 * Usage: task_timeline [workload] [scale] [maxTasks]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "polyflow.hh"

using namespace polyflow;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "twolf";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
    size_t maxTasks = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 40;

    Session s = Session::open(name, scale);

    std::vector<TaskEvent> events;
    RunOptions opts;
    opts.events = &events;
    TimingResult res =
        s.simulate(MachineConfig{}, SpawnPolicy::postdoms(), opts);

    std::cout << name << " under postdoms: " << res.cycles
              << " cycles, " << res.spawns << " spawns, "
              << res.tasksSquashed << " squashes\n\n";

    // Pair spawns with their retirement by trace range.
    struct Life
    {
        std::uint64_t spawned = 0, retired = 0;
        std::uint32_t begin = 0, end = 0;
        Addr trigger = invalidAddr;
        int squashes = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint64_t>, Life> lives;
    std::map<std::uint32_t, std::uint64_t> openAt;  // begin -> spawn
    std::vector<Life> done;
    for (const TaskEvent &e : events) {
        switch (e.kind) {
          case TaskEvent::Kind::Spawn:
            openAt[e.begin] = e.cycle;
            lives[{e.begin, e.cycle}] =
                Life{e.cycle, 0, e.begin, e.end, e.triggerPc, 0};
            break;
          case TaskEvent::Kind::Squash: {
            auto it = openAt.find(e.begin);
            if (it != openAt.end())
                ++lives[{e.begin, it->second}].squashes;
            break;
          }
          case TaskEvent::Kind::Retire: {
            auto it = openAt.find(e.begin);
            if (it != openAt.end()) {
                Life &l = lives[{e.begin, it->second}];
                l.retired = e.cycle;
                l.end = e.end;
                done.push_back(l);
                openAt.erase(it);
            }
            break;
          }
        }
    }

    std::uint64_t horizon = 0;
    size_t n = std::min(maxTasks, done.size());
    for (size_t i = 0; i < n; ++i)
        horizon = std::max(horizon, done[i].retired);
    if (horizon == 0) {
        std::cout << "(no spawned tasks retired)\n";
        return 0;
    }

    constexpr int cols = 64;
    std::cout << "task lifetimes (" << n << " earliest tasks, '#' = "
              << "alive, 'x' = squash in range, horizon " << horizon
              << " cycles)\n";
    for (size_t i = 0; i < n; ++i) {
        const Life &l = done[i];
        int from = int(l.spawned * cols / horizon);
        int to = std::max(from + 1, int(l.retired * cols / horizon));
        std::string bar(cols, '.');
        for (int c = from; c < to && c < cols; ++c)
            bar[c] = l.squashes ? 'x' : '#';
        char trig[24];
        snprintf(trig, sizeof(trig), "%#llx",
                 (unsigned long long)l.trigger);
        printf("%-10s [%s] %5u instrs\n", trig, bar.c_str(),
               l.end - l.begin);
    }
    return 0;
}
