/**
 * @file
 * pfasm: assemble and run a PRISC assembly file.
 *
 * Usage: pfasm FILE.pasm [options]
 *   --cleanup       run the CFG cleanup transforms before linking
 *   --disasm        print the linked disassembly
 *   --trace-stats   print dynamic instruction statistics
 *   --sim           also run the timing simulator (superscalar and
 *                   PolyFlow postdoms) and report speedup
 *   --dump-regs     print non-zero registers after the run
 *
 * Sample programs live in examples/programs/.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/assembler.hh"
#include "ir/transforms.hh"
#include "ir/printer.hh"
#include "polyflow.hh"

using namespace polyflow;

int
main(int argc, char **argv)
{
    std::string path;
    bool disasm = false, traceStats = false, sim = false,
         dumpRegs = false, cleanup = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--disasm")
            disasm = true;
        else if (a == "--cleanup")
            cleanup = true;
        else if (a == "--trace-stats")
            traceStats = true;
        else if (a == "--sim")
            sim = true;
        else if (a == "--dump-regs")
            dumpRegs = true;
        else if (!a.empty() && a[0] == '-') {
            std::cerr << "unknown option " << a << "\n";
            return 2;
        } else {
            path = a;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: pfasm FILE.pasm [--disasm] "
                     "[--trace-stats] [--sim] [--dump-regs]\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream src;
    src << in.rdbuf();

    std::unique_ptr<Module> mod;
    try {
        mod = assemble(src.str(), path);
    } catch (const AsmError &e) {
        std::cerr << path << ":" << e.what() << "\n";
        return 1;
    }
    if (cleanup) {
        int changes = cleanupModule(*mod);
        std::cout << "cleanup: " << changes << " changes\n";
    }
    LinkedProgram prog = mod->link();
    if (disasm)
        disassemble(std::cout, prog);

    FunctionalOptions opt;
    opt.recordTrace = sim || traceStats;
    auto r = runFunctional(prog, opt);
    std::cout << (r.halted ? "halted" : "instruction cap hit")
              << " after " << r.instrCount << " instructions\n";

    if (dumpRegs) {
        for (int reg_i = 1; reg_i < numArchRegs; ++reg_i) {
            std::int64_t v = r.finalState->readReg(RegId(reg_i));
            if (v != 0)
                std::cout << "  r" << reg_i << " = " << v << "\n";
        }
    }
    if (traceStats) {
        std::uint64_t br = 0, taken = 0, mem = 0;
        for (TraceIdx i = 0; i < r.trace.size(); ++i) {
            const Instruction &insn = r.trace.staticOf(i).instr;
            br += insn.isCondBranch();
            taken += insn.isCondBranch() && r.trace.instrs[i].taken;
            mem += insn.isMem();
        }
        std::cout << "  branches: " << br << " (" << taken
                  << " taken), memory ops: " << mem << "\n";
    }
    if (sim && r.trace.size() > 0) {
        TimingResult ss = runTiming(MachineConfig::superscalar(),
                                r.trace, nullptr, "superscalar");
        SpawnAnalysis sa(*mod, prog);
        StaticSpawnSource srcTab{
            HintTable(sa, SpawnPolicy::postdoms())};
        TimingResult pf =
            runTiming(MachineConfig{}, r.trace, &srcTab, "postdoms");
        std::cout << "  superscalar: " << ss.cycles << " cycles (IPC "
                  << ss.ipc() << ")\n"
                  << "  PolyFlow:    " << pf.cycles << " cycles (IPC "
                  << pf.ipc() << ", " << pf.spawns << " spawns, "
                  << pf.speedupOver(ss) << "% speedup)\n";
    }
    return 0;
}
