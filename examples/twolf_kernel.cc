/**
 * @file
 * twolf_kernel: the paper's Section 2.3 case study on our port of
 * new_dbox_a. Shows how control-equivalent spawning recovers the
 * important loop spawns from a combination of hammock and loop
 * fall-through spawns, and reports the most frequent dynamic spawns
 * under each policy — mirroring the paper's discussion of PCs
 * 9da0/9dbc/9dc8/9dd8/9dec.
 */

#include <iostream>

#include "polyflow.hh"

using namespace polyflow;



int
main()
{
    std::cout << "twolf new_dbox_a case study (paper Section 2.3)\n\n";

    Workload w = buildWorkload("twolf", 0.25);
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(w.prog, opt);

    SpawnAnalysis sa(*w.module, w.prog);
    std::cout << "static spawn points in new_dbox_a:\n";
    FuncId dbox = w.module->findFunction("new_dbox_a");
    for (const SpawnPoint &p : sa.points()) {
        if (p.func == dbox)
            std::cout << "  " << p.toString() << "\n";
    }
    std::cout << "\nThe paper's insight: the inner-loop iteration "
                 "spawn is recovered by chaining the\nthree hammock "
                 "spawns, and the outer-loop iteration spawn by the "
                 "inner loop's\nfall-through spawn.\n\n";

    TimingResult base = runTiming(MachineConfig::superscalar(), fr.trace,
                              nullptr, "superscalar");
    std::cout << "superscalar: IPC " << base.ipc() << "\n\n";

    for (const SpawnPolicy &pol :
         {SpawnPolicy::loop(), SpawnPolicy::loopFT(),
          SpawnPolicy::hammock(), SpawnPolicy::postdoms()}) {
        StaticSpawnSource src{HintTable(sa, pol)};
        TimingResult r = runTiming(MachineConfig{}, fr.trace, &src,
                               pol.name);
        std::cout << pol.name << ": speedup "
                  << r.speedupOver(base) << "%, spawns " << r.spawns
                  << " (";
        for (int k = 0; k < numSpawnKinds; ++k) {
            if (r.spawnsByKind[k]) {
                std::cout << spawnKindName(SpawnKind(k)) << "="
                          << r.spawnsByKind[k] << " ";
            }
        }
        std::cout << ")\n";
    }
    std::cout << "\nExpected shape (paper Figure 9, twolf): loop "
                 "fall-through and loop spawns\nperform well; "
                 "hammocks alone are weaker but combine with "
                 "loopFT under postdoms.\n";
    return 0;
}
