/**
 * @file
 * policy_explorer: run one workload under every spawn policy and
 * print the full machine statistics side by side.
 *
 * Usage: policy_explorer [workload] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "polyflow.hh"
#include "stats/table.hh"

using namespace polyflow;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "twolf";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    std::cout << "workload: " << name << " (scale " << scale
              << ")\n";
    Session s = Session::open(name, scale);
    std::cout << "committed instructions: " << s.trace().size()
              << "\n\n";

    const SpawnAnalysis &sa = s.analysis();
    std::cout << "static spawn points (" << sa.points().size()
              << "):\n";
    for (const SpawnPoint &p : sa.points())
        std::cout << "  " << p.toString() << "\n";
    std::cout << "\n";

    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::none(),     SpawnPolicy::loop(),
        SpawnPolicy::loopFT(),   SpawnPolicy::procFT(),
        SpawnPolicy::hammock(),  SpawnPolicy::other(),
        SpawnPolicy::loopPlusLoopFT(),
        SpawnPolicy::loopFTPlusProcFT(),
        SpawnPolicy::loopProcFTLoopFT(),
        SpawnPolicy::postdoms(),
    };

    Table t({"policy", "cycles", "IPC", "speedup%", "spawns",
             "skipCtx", "skipDist", "skipFb", "viol", "squash",
             "divert", "mispred", "I$miss", "disTrig"});
    TimingResult base;
    for (const SpawnPolicy &pol : policies) {
        MachineConfig cfg = pol.kindMask == 0
            ? MachineConfig::superscalar()
            : MachineConfig{};
        TimingResult r = s.simulate(cfg, pol);
        if (pol.kindMask == 0)
            base = r;
        t.startRow();
        t.cell(pol.name);
        t.cell((long long)r.cycles);
        t.cell(r.ipc());
        t.cell(r.speedupOver(base), 1);
        t.cell((long long)r.spawns);
        t.cell((long long)r.spawnsSkippedNoContext);
        t.cell((long long)r.spawnsSkippedDistance);
        t.cell((long long)r.spawnsSkippedFeedback);
        t.cell((long long)r.violations);
        t.cell((long long)r.tasksSquashed);
        t.cell((long long)r.instrsDiverted);
        t.cell((long long)r.branchMispredicts);
        t.cell((long long)r.icacheMisses);
        t.cell((long long)r.triggersDisabled);
    }
    t.print(std::cout);
    return 0;
}
