; Recursive Fibonacci: fib(18) -> a0.
; Demonstrates calls, the stack and recursion in PRISC assembly.
; Run with:  pfasm examples/programs/fib.pasm --sim --dump-regs

.func fib
    ; a0 = n; returns a0 = fib(n)
    li   t0, 2
    blt  a0, t0, base
recurse:
    addi sp, sp, -24
    sd   ra, 0(sp)
    sd   s0, 8(sp)
    sd   s1, 16(sp)
    addi s0, a0, 0          ; save n
    addi a0, a0, -1
    call fib                ; fib(n-1)
    addi s1, a0, 0
    addi a0, s0, -2
    call fib                ; fib(n-2)
    add  a0, a0, s1
    ld   ra, 0(sp)
    ld   s0, 8(sp)
    ld   s1, 16(sp)
    addi sp, sp, 24
    ret
base:
    ; fib(0)=0, fib(1)=1: n < 2 returns n itself
    ret
.endfunc

.func main
.entry
    li   a0, 18
    call fib
    halt
.endfunc
