; Dot product of two 128-word vectors with a data-dependent
; saturation hammock inside the loop — a compact example whose
; postdominator spawn points the PolyFlow machine can exploit.
; Run with:  pfasm examples/programs/dotprod.pasm --sim

.data vecA 1024
.data vecB 1024

.func init
    ; a0 = base, a1 = seed: fill 128 words
    li   t1, 128
loop:
    slli t2, a1, 13
    xor  a1, a1, t2
    srli t2, a1, 7
    xor  a1, a1, t2
    andi t3, a1, 0x3ff
    sd   t3, 0(a0)
    addi a0, a0, 8
    addi t1, t1, -1
    bne  t1, zero, loop
    ret
.endfunc

.func main
.entry
    li   a0, vecA
    li   a1, 12345
    call init
    li   a0, vecB
    li   a1, 67890
    call init

    li   t0, vecA
    li   t1, vecB
    li   t2, 128
    li   s0, 0              ; accumulator
dot:
    ld   t3, 0(t0)
    ld   t4, 0(t1)
    mul  t5, t3, t4
    ; saturation hammock: clamp large products (~50% taken)
    li   t6, 0x40000
    blt  t5, t6, accum
    addi t5, t6, -1
accum:
    add  s0, s0, t5
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, -1
    bne  t2, zero, dot
done:
    addi a0, s0, 0
    halt
.endfunc
