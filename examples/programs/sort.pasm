; Insertion sort over a 64-word array initialized with a xorshift
; PRNG written in PRISC itself, followed by a verification pass that
; leaves 1 in a0 iff the array is sorted.
; Run with:  pfasm examples/programs/sort.pasm --sim --dump-regs

.data arr 512

.func main
.entry
    ; ---- fill arr with pseudo-random words ----
    li   t0, arr
    li   t1, 64
    li   t2, 0x9e3779b97f4a7c15
fill:
    slli t3, t2, 13
    xor  t2, t2, t3
    srli t3, t2, 7
    xor  t2, t2, t3
    slli t3, t2, 17
    xor  t2, t2, t3
    andi t4, t2, 0xffff
    sd   t4, 0(t0)
    addi t0, t0, 8
    addi t1, t1, -1
    bne  t1, zero, fill

    ; ---- insertion sort ----
    li   s0, 1              ; i = 1
outer:
    li   t5, 64
    bge  s0, t5, verify
    ; key = arr[i]
    slli t0, s0, 3
    li   t6, arr
    add  t0, t0, t6
    ld   s1, 0(t0)          ; key
    addi s2, s0, -1         ; j = i - 1
inner:
    bltz s2, place
    slli t0, s2, 3
    li   t6, arr
    add  t0, t0, t6
    ld   t1, 0(t0)          ; arr[j]
    bge  s1, t1, place      ; key >= arr[j]: stop shifting
    sd   t1, 8(t0)          ; arr[j+1] = arr[j]
    addi s2, s2, -1
    j    inner
place:
    addi t2, s2, 1
    slli t0, t2, 3
    li   t6, arr
    add  t0, t0, t6
    sd   s1, 0(t0)          ; arr[j+1] = key
    addi s0, s0, 1
    j    outer

    ; ---- verify ----
verify:
    li   a0, 1
    li   t0, arr
    li   t1, 63
check:
    ld   t2, 0(t0)
    ld   t3, 8(t0)
    bge  t3, t2, ok
    li   a0, 0              ; out of order
ok:
    addi t0, t0, 8
    addi t1, t1, -1
    bne  t1, zero, check
    halt
.endfunc
