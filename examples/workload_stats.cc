/**
 * @file
 * workload_stats: characterize the synthetic benchmark suite the
 * way an architecture paper would — dynamic instruction mix, branch
 * behaviour, static code size and spawn-point census — so readers
 * can compare the suite's character against the SPEC2000 programs
 * it stands in for.
 */

#include <cstdlib>
#include <iostream>

#include "polyflow.hh"
#include "stats/table.hh"

using namespace polyflow;

int
main(int argc, char **argv)
{
    double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

    Table t({"benchmark", "dynInstrs", "loads%", "stores%",
             "branches%", "calls%", "brMisp%", "ssIPC",
             "staticInstrs", "spawnPts"});

    for (const std::string &name : allWorkloadNames()) {
        Session s = Session::open(name, scale);
        const Trace &trace = s.trace();

        std::uint64_t loads = 0, stores = 0, branches = 0, calls = 0;
        for (TraceIdx i = 0; i < trace.size(); ++i) {
            const Instruction &in = trace.staticOf(i).instr;
            loads += in.isLoad();
            stores += in.isStore();
            branches += in.isCondBranch();
            calls += in.isCall();
        }
        TimingResult ss = s.simulate(MachineConfig::superscalar(),
                                     SpawnPolicy::none());

        double n = double(trace.size());
        t.startRow();
        t.cell(name);
        t.cell((long long)trace.size());
        t.cell(100.0 * loads / n, 1);
        t.cell(100.0 * stores / n, 1);
        t.cell(100.0 * branches / n, 1);
        t.cell(100.0 * calls / n, 1);
        t.cell(branches ? 100.0 * ss.branchMispredicts / branches
                        : 0.0,
               1);
        t.cell(ss.ipc());
        t.cell((long long)s.program().size());
        t.cell((long long)s.analysis().points().size());
    }
    t.print(std::cout);
    return 0;
}
