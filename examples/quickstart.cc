/**
 * @file
 * quickstart: the smallest end-to-end tour of the library.
 *
 * 1. Assemble a program (the paper's Figure 1 loop) from text.
 * 2. Compute its postdominator tree and control dependence graph.
 * 3. Identify and classify spawn points.
 * 4. Run it functionally with the low-level golden model, then hand
 *    it to polyflow::Session for the timing comparison: superscalar
 *    baseline vs. PolyFlow with control-equivalent spawning.
 */

#include <iostream>

#include "analysis/cfg_view.hh"
#include "analysis/control_dep.hh"
#include "analysis/dominators.hh"
#include "asm/assembler.hh"
#include "polyflow.hh"

using namespace polyflow;

// The paper's Figure 1: a loop A,B,{C|D},E,F with an if-then-else
// inside. The data word stream drives the inner branch.
static const char *program = R"(
.data words 4096
.func main
.entry
    li   t0, 512         ; loop trips
    li   t1, words       ; data cursor
    li   t3, 0           ; accumulator
A:  ld   t2, 0(t1)       ; block A
B:  beq  t2, zero, D     ; block B: the if-then-else branch
C:  addi t3, t3, 1       ; block C (then)
    j    E
D:  addi t3, t3, 2       ; block D (else)
E:  add  t3, t3, t2      ; block E: the join
F:  addi t1, t1, 8
    addi t0, t0, -1
    bne  t0, zero, A     ; block F: the loop branch
X:  halt
.endfunc
)";

int
main()
{
    auto mod = assemble(program, "figure1");
    // Pseudo-random branch data so B is hard to predict.
    std::uint64_t x = 0x1234;
    for (int i = 0; i < 512; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        mod->setData64(mod->dataAddr("words") + 8 * i, x & 1);
    }
    LinkedProgram prog = mod->link();

    // --- Static analysis, built by hand to show the pieces.
    const Function &fn = mod->function(0);
    CfgView cfg(fn);
    PostDominatorTree pdt(cfg);
    ControlDepGraph cdg(cfg, pdt);

    std::cout << "immediate postdominators (paper Figure 2):\n";
    for (size_t b = 0; b < fn.numBlocks(); ++b) {
        BlockId ip = pdt.ipdomBlock(BlockId(b));
        std::cout << "  " << fn.block(BlockId(b)).name() << " -> "
                  << (ip == invalidBlock ? "exit"
                                         : fn.block(ip).name())
                  << "\n";
    }

    // --- Functional execution with the low-level golden model
    // (Session would do this for us, but the final architectural
    // state is only visible down here).
    FunctionalOptions opt;
    opt.recordTrace = true;
    auto fr = runFunctional(prog, opt);
    std::cout << "\nfunctional run: " << fr.instrCount
              << " instructions, accumulator = "
              << fr.finalState->readReg(reg::t3) << "\n";

    // --- The same pipeline through the front door: adopt the
    // ad-hoc program into a Session and let it wire trace ->
    // analysis -> hint table -> timing simulation.
    Workload w{"figure1", std::move(mod), std::move(prog)};
    Session s = Session::adopt(std::move(w));

    std::cout << "\nspawn points:\n";
    for (const SpawnPoint &p : s.analysis().points())
        std::cout << "  " << p.toString() << "\n";

    TimingResult ss = s.simulate(MachineConfig::superscalar(),
                                 SpawnPolicy::none());
    TimingResult pf =
        s.simulate(MachineConfig{}, SpawnPolicy::postdoms());

    std::cout << "\nsuperscalar: " << ss.cycles << " cycles (IPC "
              << ss.ipc() << ", " << ss.branchMispredicts
              << " mispredicts)\n";
    std::cout << "PolyFlow:    " << pf.cycles << " cycles (IPC "
              << pf.ipc() << ", " << pf.spawns << " spawns) -> "
              << pf.speedupOver(ss) << "% speedup\n";
    return 0;
}
