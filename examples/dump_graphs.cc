/**
 * @file
 * dump_graphs: write the CFG, dominator tree, postdominator tree
 * and control dependence graph of a function to Graphviz .dot
 * files. Defaults to the paper's Figure 1 example, reproducing
 * Figures 1-3 of the paper as renderable graphs.
 *
 * Usage: dump_graphs [workload function]
 *   dump_graphs                      # the paper's Figure 1 CFG
 *   dump_graphs twolf new_dbox_a     # any workload function
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "analysis/dot.hh"
#include "asm/assembler.hh"
#include "ir/printer.hh"
#include "workloads/workloads.hh"

using namespace polyflow;

static const char *figure1 = R"(
.func fig1
.entry
A:  addi t0, t0, 1
B:  beq  t1, zero, D
C:  addi t2, t2, 1
    j    E
D:  addi t3, t3, 1
E:  addi t4, t4, 1
F:  bne  t0, t5, A
X:  halt
.endfunc
)";

int
main(int argc, char **argv)
{
    std::unique_ptr<Module> owned;
    const Function *fn = nullptr;
    Workload w;

    if (argc >= 3) {
        w = buildWorkload(argv[1], 0.05);
        FuncId f = w.module->findFunction(argv[2]);
        if (f == invalidFunc) {
            std::cerr << "no function " << argv[2] << " in "
                      << argv[1] << "\n";
            return 1;
        }
        fn = &w.module->function(f);
    } else {
        owned = assemble(figure1, "paper");
        owned->link();
        fn = &owned->function(0);
    }

    auto write = [&](const std::string &path,
                     const std::string &content) {
        std::ofstream out(path);
        out << content;
        std::cout << "wrote " << path << "\n";
    };
    write(fn->name() + "_cfg.dot", dotCfg(*fn));
    write(fn->name() + "_domtree.dot", dotDomTree(*fn));
    write(fn->name() + "_postdomtree.dot", dotPostDomTree(*fn));
    write(fn->name() + "_cdg.dot", dotControlDeps(*fn));

    std::cout << "\n";
    printFunction(std::cout, *fn);
    return 0;
}
