/**
 * @file
 * Figure 8: the pipeline parameter table. Printed from the live
 * MachineConfig so the table can never drift from what the other
 * benches actually simulate.
 */

#include <iostream>

#include "sim/config.hh"
#include "stats/table.hh"

using namespace polyflow;

int
main()
{
    MachineConfig c;
    std::cout << "=== Figure 8: pipeline parameters ===\n\n";

    Table t({"Parameter", "Value"});
    auto row = [&](const std::string &k, const std::string &v) {
        t.startRow();
        t.cell(k);
        t.cell(v);
    };
    row("Pipeline Width",
        std::to_string(c.pipelineWidth) + " instrs/cycle");
    row("Branch Predictor",
        std::to_string(c.gshareCounters * 2 / 1024) +
            "Kbit gshare, " + std::to_string(c.historyBits) +
            " bits of global history");
    row("Misprediction Penalty",
        "At least " + std::to_string(c.minMispredictPenalty) +
            " cycles");
    row("Reorder Buffer",
        std::to_string(c.robEntries) +
            " entries, dynamically shared");
    row("Scheduler",
        std::to_string(c.schedEntries) +
            " entries, dynamically shared");
    row("Functional Units",
        std::to_string(c.numFUs) +
            " identical general purpose units");
    auto cache = [](const CacheConfig &cc) {
        return std::to_string(cc.sizeBytes / 1024) + "Kbytes, " +
            std::to_string(cc.assoc) + "-way set assoc., " +
            std::to_string(cc.lineBytes) + " byte lines, " +
            std::to_string(cc.missLatency) + " cycle miss";
    };
    row("L1 I-Cache", cache(c.l1i));
    row("L1 D-Cache", cache(c.l1d));
    row("L2 Cache", cache(c.l2));
    row("Divert Queue",
        std::to_string(c.divertEntries) +
            " entries, dynamically shared");
    row("Tasks", std::to_string(c.numTasks));

    t.print(std::cout);

    std::cout << "\nModel-specific knobs (DESIGN.md Section 7):\n";
    Table k({"Knob", "Value"});
    auto krow = [&](const std::string &a, long long v) {
        k.startRow();
        k.cell(a);
        k.cell(v);
    };
    krow("fetchTasksPerCycle", c.fetchTasksPerCycle);
    krow("maxTakenPerTaskCycle", c.maxTakenPerTaskCycle);
    krow("fetchQueueEntries", c.fetchQueueEntries);
    krow("frontendDepth", c.frontendDepth);
    krow("mulLatency", c.mulLatency);
    krow("divLatency", c.divLatency);
    krow("loadLatency", c.loadLatency);
    krow("maxSpawnDistance", c.maxSpawnDistance);
    krow("minSpawnDistance", c.minSpawnDistance);
    krow("spawnStartupDelay", c.spawnStartupDelay);
    krow("divertReleaseDelay", c.divertReleaseDelay);
    krow("squashRestartPenalty", c.squashRestartPenalty);
    krow("robReservePerOlderTask", c.robReservePerOlderTask);
    krow("returnStackEntries", c.returnStackEntries);
    krow("spawnFeedback", c.spawnFeedback);
    krow("wrongPathGhosts", c.wrongPathGhosts);
    krow("compilerDepHints", c.compilerDepHints);
    krow("spawnFromAnyTask", c.spawnFromAnyTask);
    k.print(std::cout);
    return 0;
}
