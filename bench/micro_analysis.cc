/**
 * @file
 * Google-benchmark microbenchmarks for the compiler-side analyses:
 * CHK postdominators vs the iterative-dataflow reference, control
 * dependence construction, loop detection, and whole-module spawn
 * analysis.
 */

#include <benchmark/benchmark.h>

#include "analysis/cfg_view.hh"
#include "analysis/control_dep.hh"
#include "analysis/dominators.hh"
#include "analysis/iterative_dom.hh"
#include "analysis/loops.hh"
#include "spawn/spawn_analysis.hh"
#include "workloads/workloads.hh"

using namespace polyflow;

namespace {

/** The biggest single-function CFG in the suite (twolf's kernel). */
const Workload &
workload()
{
    static Workload w = buildWorkload("gcc", 0.02);
    return w;
}

void
BM_PostdominatorsChk(benchmark::State &state)
{
    const Function &fn = workload().module->function(0);
    CfgView cfg(fn);
    for (auto _ : state) {
        PostDominatorTree pdt(cfg);
        benchmark::DoNotOptimize(pdt.root());
    }
}
BENCHMARK(BM_PostdominatorsChk);

void
BM_PostdominatorsIterative(benchmark::State &state)
{
    const Function &fn = workload().module->function(0);
    CfgView cfg(fn);
    for (auto _ : state) {
        auto sets = iterativePostDoms(cfg);
        benchmark::DoNotOptimize(sets.size());
    }
}
BENCHMARK(BM_PostdominatorsIterative);

void
BM_ControlDependence(benchmark::State &state)
{
    const Function &fn = workload().module->function(0);
    CfgView cfg(fn);
    PostDominatorTree pdt(cfg);
    for (auto _ : state) {
        ControlDepGraph cdg(cfg, pdt);
        benchmark::DoNotOptimize(cdg.numNodes());
    }
}
BENCHMARK(BM_ControlDependence);

void
BM_LoopForest(benchmark::State &state)
{
    const Function &fn = workload().module->function(0);
    CfgView cfg(fn);
    DominatorTree dt(cfg);
    for (auto _ : state) {
        LoopForest loops(cfg, dt);
        benchmark::DoNotOptimize(loops.numLoops());
    }
}
BENCHMARK(BM_LoopForest);

void
BM_WholeModuleSpawnAnalysis(benchmark::State &state)
{
    const Workload &w = workload();
    for (auto _ : state) {
        SpawnAnalysis sa(*w.module, w.prog);
        benchmark::DoNotOptimize(sa.points().size());
    }
}
BENCHMARK(BM_WholeModuleSpawnAnalysis);

} // namespace

BENCHMARK_MAIN();
