/**
 * @file
 * Shared plumbing for the figure-regeneration benches: scale and
 * job-count knobs plus the standard banner. The simulation grids
 * themselves run through the sweep engine (driver/sweep.hh) — no
 * bench loops over simulate() serially anymore.
 */

#ifndef POLYFLOW_BENCH_BENCH_UTIL_HH
#define POLYFLOW_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "driver/sweep.hh"
#include "sim/config.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

namespace polyflow::bench {

/**
 * Workload scale for benches; override with PF_BENCH_SCALE. A value
 * that does not parse as a finite positive number is a hard error
 * (atof's silent 0 used to turn every workload into a few
 * instructions).
 */
inline double
benchScale()
{
    const char *s = std::getenv("PF_BENCH_SCALE");
    if (!s)
        return 1.0;
    if (auto v = driver::parsePositiveDouble(s))
        return *v;
    std::fprintf(stderr,
                 "PF_BENCH_SCALE: expected a finite positive "
                 "number, got \"%s\"\n",
                 s);
    std::exit(2);
}

/** Standard bench banner with the machine configuration. */
inline void
banner(const std::string &title)
{
    MachineConfig cfg;
    std::cout << "=== " << title << " ===\n"
              << "machine (Figure 8): " << cfg.describe() << "\n"
              << "workload scale: " << benchScale() << "\n\n";
}

} // namespace polyflow::bench

#endif // POLYFLOW_BENCH_BENCH_UTIL_HH
