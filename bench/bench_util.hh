/**
 * @file
 * Shared plumbing for the figure-regeneration benches: build a
 * workload, trace it, run a policy lineup, and print paper-style
 * tables.
 */

#ifndef POLYFLOW_BENCH_BENCH_UTIL_HH
#define POLYFLOW_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "isa/functional_sim.hh"
#include "sim/core.hh"
#include "spawn/policy.hh"
#include "spawn/spawn_analysis.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

namespace polyflow::bench {

/** Workload scale for benches; override with PF_BENCH_SCALE. */
inline double
benchScale()
{
    if (const char *s = std::getenv("PF_BENCH_SCALE"))
        return std::atof(s);
    return 1.0;
}

/** A traced workload ready for timing runs. */
struct TracedWorkload
{
    Workload workload;
    Trace trace;
    std::unique_ptr<FuncSimResult> funcResult;  // owns the trace data
};

inline TracedWorkload
traceWorkload(const std::string &name, double scale)
{
    TracedWorkload tw;
    tw.workload = buildWorkload(name, scale);
    FuncSimOptions opt;
    opt.recordTrace = true;
    tw.funcResult = std::make_unique<FuncSimResult>(
        runFunctional(tw.workload.prog, opt));
    if (!tw.funcResult->halted)
        throw std::runtime_error(name + ": did not halt");
    tw.trace = std::move(tw.funcResult->trace);
    return tw;
}

/** Superscalar baseline run. */
inline SimResult
runBaseline(const TracedWorkload &tw)
{
    return simulate(MachineConfig::superscalar(), tw.trace, nullptr,
                    "superscalar");
}

/** One PolyFlow run under a static policy. */
inline SimResult
runPolicy(const TracedWorkload &tw, const SpawnPolicy &policy,
          const MachineConfig &cfg = MachineConfig{})
{
    SpawnAnalysis sa(*tw.workload.module, tw.workload.prog);
    StaticSpawnSource src(HintTable(sa, policy));
    return simulate(cfg, tw.trace, &src, policy.name);
}

/** Standard bench banner with the machine configuration. */
inline void
banner(const std::string &title)
{
    MachineConfig cfg;
    std::cout << "=== " << title << " ===\n"
              << "machine (Figure 8): " << cfg.describe() << "\n"
              << "workload scale: " << benchScale() << "\n\n";
}

} // namespace polyflow::bench

#endif // POLYFLOW_BENCH_BENCH_UTIL_HH
