/**
 * @file
 * Shared plumbing for the figure-regeneration benches: scale and
 * job-count knobs plus the standard banner. The simulation grids
 * themselves run through the sweep engine (driver/sweep.hh) — no
 * bench loops over runTiming() serially anymore.
 */

#ifndef POLYFLOW_BENCH_BENCH_UTIL_HH
#define POLYFLOW_BENCH_BENCH_UTIL_HH

#include <array>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/sweep.hh"
#include "sim/config.hh"
#include "stats/export.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

namespace polyflow::bench {

/**
 * Workload scale for benches; override with PF_BENCH_SCALE. A value
 * that does not parse as a finite positive number is a hard error
 * (atof's silent 0 used to turn every workload into a few
 * instructions).
 */
inline double
benchScale()
{
    const char *s = std::getenv("PF_BENCH_SCALE");
    if (!s)
        return 1.0;
    if (auto v = driver::parsePositiveDouble(s))
        return *v;
    std::fprintf(stderr,
                 "PF_BENCH_SCALE: expected a finite positive "
                 "number, got \"%s\"\n",
                 s);
    std::exit(2);
}

/** Standard bench banner with the machine configuration. */
inline void
banner(const std::string &title)
{
    MachineConfig cfg;
    std::cout << "=== " << title << " ===\n"
              << "machine (Figure 8): " << cfg.describe() << "\n"
              << "workload scale: " << benchScale() << "\n\n";
}

/**
 * Mechanism attribution for a figure: the cycle-accounting buckets
 * averaged over every cell sharing a run label, one row per label
 * in first-appearance order. Printed under each figure's table so a
 * speedup (or its absence) comes with *where the slots went*; see
 * docs/OBSERVABILITY.md for the taxonomy. Also re-checks the
 * accounting identity on every cell — a bench run doubles as an
 * invariant sweep.
 */
inline void
printCycleAttribution(const std::vector<driver::SweepCell> &cells,
                      const std::vector<driver::CellResult> &results)
{
    struct Agg
    {
        std::string label;
        std::array<double, numSlotBuckets> pct{};
        int n = 0;
    };
    std::vector<Agg> aggs;
    for (size_t i = 0; i < cells.size(); ++i) {
        const TimingResult &s = results[i].sim;
        if (s.slotTotal() != s.cycles * s.issueWidth) {
            std::cerr << "cycle-accounting identity violated for "
                      << cells[i].workload << "/" << cells[i].label
                      << "\n";
            std::exit(1);
        }
        Agg *a = nullptr;
        for (Agg &c : aggs) {
            if (c.label == cells[i].label) {
                a = &c;
                break;
            }
        }
        if (!a) {
            aggs.push_back({cells[i].label, {}, 0});
            a = &aggs.back();
        }
        for (int b = 0; b < numSlotBuckets; ++b)
            a->pct[b] += s.slotPercent(static_cast<SlotBucket>(b));
        ++a->n;
    }

    std::cout << "\ncycle accounting (mean % of issue slots per "
              << "run):\n";
    std::vector<std::string> header = {"run"};
    for (int b = 0; b < numSlotBuckets; ++b)
        header.push_back(slotBucketName(static_cast<SlotBucket>(b)));
    Table t(header);
    for (const Agg &a : aggs) {
        t.startRow();
        t.cell(a.label);
        for (int b = 0; b < numSlotBuckets; ++b)
            t.cell(a.pct[b] / a.n, 1);
    }
    t.print(std::cout);
}

/**
 * Full structured stats for a figure's grid (every counter and
 * every cycle-accounting bucket, one record per cell) as JSON next
 * to the figure's CSV. Byte-identical at any job count.
 */
inline void
writeRunStats(const std::string &path,
              const std::vector<driver::SweepCell> &cells,
              const std::vector<driver::CellResult> &results)
{
    std::vector<stats::RunRecord> recs;
    recs.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        recs.push_back({cells[i].workload, cells[i].scale,
                        cells[i].label, results[i].sim});
    }
    stats::writeFile(path, stats::toJson(recs));
}

} // namespace polyflow::bench

#endif // POLYFLOW_BENCH_BENCH_UTIL_HH
