/**
 * @file
 * Figure 12: spawning from the dynamic reconvergence predictor
 * (rec_pred) versus compiler-generated immediate postdominators.
 * The predictor trains on the retirement stream during the run, so
 * warm-up effects are modelled. Also reports how well the trained
 * predictor matches the static immediate postdominators. The grid
 * runs on the sweep engine; the trained predictor of each cell stays
 * inspectable through its CellResult.
 */

#include "analysis/cfg_view.hh"
#include "analysis/dominators.hh"
#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

namespace {

/** Static map: conditional-branch PC -> ipdom block start PC. */
std::unordered_map<Addr, Addr>
staticIpdoms(const Workload &w)
{
    std::unordered_map<Addr, Addr> out;
    for (size_t f = 0; f < w.module->numFunctions(); ++f) {
        const Function &fn = w.module->function(FuncId(f));
        CfgView cfg(fn);
        PostDominatorTree pdt(cfg);
        for (size_t bi = 0; bi < fn.numBlocks(); ++bi) {
            const BasicBlock &bb = fn.block(BlockId(bi));
            if (!bb.hasTerminator() ||
                !bb.terminator().isCondBranch())
                continue;
            BlockId j = pdt.ipdomBlock(BlockId(bi));
            if (j != invalidBlock)
                out[bb.termAddr()] = fn.block(j).startAddr();
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Figure 12: reconvergence-predictor spawning vs "
           "compiler postdominators (speedup %)");

    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = benchScale();

    std::vector<driver::SweepCell> cells;
    for (const std::string &name : names) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        cells.push_back({name, scale, driver::SourceSpec::recon(),
                         MachineConfig{}, "rec_pred"});
        cells.push_back({name, scale,
                         driver::SourceSpec::statics(
                             SpawnPolicy::postdoms()),
                         MachineConfig{},
                         SpawnPolicy::postdoms().name});
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    Table table({"benchmark", "rec_pred", "postdoms", "predMatch%",
                 "predCover%"});
    std::vector<double> recCol, pdCol;

    const size_t stride = 3;
    for (size_t w = 0; w < names.size(); ++w) {
        const TimingResult &base = results[w * stride].sim;
        const driver::CellResult &recCell =
            results[w * stride + 1];
        const TimingResult &pd = results[w * stride + 2].sim;

        // Predictor fidelity vs static analysis, over the branches
        // it saw.
        auto rec = std::dynamic_pointer_cast<ReconSpawnSource>(
            recCell.source);
        auto ipdoms = staticIpdoms(
            *runner.cache().workload(names[w], scale));
        int match = 0, predicted = 0;
        for (auto [pc, target] :
             rec->predictor().confidentPredictions()) {
            auto it = ipdoms.find(pc);
            if (it == ipdoms.end())
                continue;
            ++predicted;
            if (it->second == target)
                ++match;
        }
        double rs = recCell.sim.speedupOver(base);
        double ps = pd.speedupOver(base);
        recCol.push_back(rs);
        pdCol.push_back(ps);

        table.startRow();
        table.cell(names[w]);
        table.cell(rs, 1);
        table.cell(ps, 1);
        table.cell(predicted ? 100.0 * match / predicted : 0.0, 1);
        table.cell(ipdoms.empty()
                       ? 0.0
                       : 100.0 * predicted / double(ipdoms.size()),
                   1);
    }
    table.startRow();
    table.cell(std::string("Average"));
    table.cell(mean(recCol), 1);
    table.cell(mean(pdCol), 1);
    table.cell(std::string(""));
    table.cell(std::string(""));

    table.print(std::cout);
    table.writeCsv("fig12.csv");
    writeRunStats("fig12.stats.json", cells, results);
    printCycleAttribution(cells, results);
    std::cout << "\nrec_pred should approach postdoms but lag where "
                 "warm-up and hard-to-identify\nreconvergences "
                 "matter (paper Section 4.4).\n";
    return 0;
}
