/**
 * @file
 * Ablations over the design choices DESIGN.md calls out: task-count
 * sweep, divert-queue size, ROB size, spawn-distance cap, and the
 * profitability/ghost-context mechanisms, on two representative
 * workloads (twolf: loop-structured; mcf: hard hammocks).
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

namespace {

void
sweep(const std::string &title, const TracedWorkload &tw,
      const SimResult &base,
      const std::vector<std::pair<std::string, MachineConfig>> &cfgs)
{
    Table t({"config", "cycles", "IPC", "speedup%", "spawns",
             "violations"});
    for (const auto &[name, cfg] : cfgs) {
        SimResult r = runPolicy(tw, SpawnPolicy::postdoms(), cfg);
        t.startRow();
        t.cell(name);
        t.cell((long long)r.cycles);
        t.cell(r.ipc());
        t.cell(r.speedupOver(base), 1);
        t.cell((long long)r.spawns);
        t.cell((long long)r.violations);
    }
    std::cout << "--- " << title << " ---\n";
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    banner("Ablations: resource and policy knobs (postdoms policy)");

    for (const std::string &wl : {"twolf", "mcf"}) {
        TracedWorkload tw = traceWorkload(wl, benchScale() * 0.5);
        SimResult base = runBaseline(tw);
        std::cout << "== workload " << wl
                  << " (superscalar IPC " << base.ipc() << ") ==\n\n";

        {
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            for (int n : {1, 2, 4, 8, 16}) {
                MachineConfig c;
                c.numTasks = n;
                cfgs.emplace_back("tasks=" + std::to_string(n), c);
            }
            sweep("task contexts", tw, base, cfgs);
        }
        {
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            for (int n : {16, 32, 64, 128, 256, 512}) {
                MachineConfig c;
                c.divertEntries = n;
                cfgs.emplace_back("divert=" + std::to_string(n), c);
            }
            sweep("divert queue entries", tw, base, cfgs);
        }
        {
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            for (int n : {128, 256, 512, 1024}) {
                MachineConfig c;
                c.robEntries = n;
                cfgs.emplace_back("rob=" + std::to_string(n), c);
            }
            sweep("reorder buffer entries", tw, base, cfgs);
        }
        {
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            for (unsigned d : {64u, 128u, 256u, 512u, 2048u, 8192u}) {
                MachineConfig c;
                c.maxSpawnDistance = d;
                cfgs.emplace_back("maxDist=" + std::to_string(d), c);
            }
            sweep("max spawn distance", tw, base, cfgs);
        }
        {
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            MachineConfig on;
            cfgs.emplace_back("feedback+ghosts", on);
            MachineConfig noFb;
            noFb.spawnFeedback = false;
            cfgs.emplace_back("no feedback", noFb);
            MachineConfig noGhost;
            noGhost.wrongPathGhosts = false;
            cfgs.emplace_back("no wrong-path ghosts", noGhost);
            MachineConfig neither;
            neither.spawnFeedback = false;
            neither.wrongPathGhosts = false;
            cfgs.emplace_back("neither", neither);
            sweep("spawn-unit mechanisms", tw, base, cfgs);
        }
        {
            // Paper Section 6 future work: spawn from any task, not
            // just the tail (nested hammocks can then spawn past
            // their inner branch).
            std::vector<std::pair<std::string, MachineConfig>> cfgs;
            MachineConfig tail;
            cfgs.emplace_back("tail-only (paper)", tail);
            MachineConfig any;
            any.spawnFromAnyTask = true;
            cfgs.emplace_back("spawn-from-any-task", any);
            sweep("spawn source task (Section 6 extension)", tw,
                  base, cfgs);
        }
    }
    return 0;
}
