/**
 * @file
 * Ablations over the design choices DESIGN.md calls out: task-count
 * sweep, divert-queue size, ROB size, spawn-distance cap, and the
 * profitability/ghost-context mechanisms, on two representative
 * workloads (twolf: loop-structured; mcf: hard hammocks). The whole
 * grid is declared up front and runs on the sweep engine; tables
 * print afterwards in declaration order.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

namespace {

struct Section
{
    std::string title;
    std::vector<std::pair<std::string, MachineConfig>> cfgs;
};

std::vector<Section>
sections()
{
    std::vector<Section> out;
    {
        Section s{"task contexts", {}};
        for (int n : {1, 2, 4, 8, 16}) {
            MachineConfig c;
            c.numTasks = n;
            s.cfgs.emplace_back("tasks=" + std::to_string(n), c);
        }
        out.push_back(std::move(s));
    }
    {
        Section s{"divert queue entries", {}};
        for (int n : {16, 32, 64, 128, 256, 512}) {
            MachineConfig c;
            c.divertEntries = n;
            s.cfgs.emplace_back("divert=" + std::to_string(n), c);
        }
        out.push_back(std::move(s));
    }
    {
        Section s{"reorder buffer entries", {}};
        for (int n : {128, 256, 512, 1024}) {
            MachineConfig c;
            c.robEntries = n;
            s.cfgs.emplace_back("rob=" + std::to_string(n), c);
        }
        out.push_back(std::move(s));
    }
    {
        Section s{"max spawn distance", {}};
        for (unsigned d : {64u, 128u, 256u, 512u, 2048u, 8192u}) {
            MachineConfig c;
            c.maxSpawnDistance = d;
            s.cfgs.emplace_back("maxDist=" + std::to_string(d), c);
        }
        out.push_back(std::move(s));
    }
    {
        Section s{"spawn-unit mechanisms", {}};
        MachineConfig on;
        s.cfgs.emplace_back("feedback+ghosts", on);
        MachineConfig noFb;
        noFb.spawnFeedback = false;
        s.cfgs.emplace_back("no feedback", noFb);
        MachineConfig noGhost;
        noGhost.wrongPathGhosts = false;
        s.cfgs.emplace_back("no wrong-path ghosts", noGhost);
        MachineConfig neither;
        neither.spawnFeedback = false;
        neither.wrongPathGhosts = false;
        s.cfgs.emplace_back("neither", neither);
        out.push_back(std::move(s));
    }
    {
        // Paper Section 6 future work: spawn from any task, not
        // just the tail (nested hammocks can then spawn past their
        // inner branch).
        Section s{"spawn source task (Section 6 extension)", {}};
        MachineConfig tail;
        s.cfgs.emplace_back("tail-only (paper)", tail);
        MachineConfig any;
        any.spawnFromAnyTask = true;
        s.cfgs.emplace_back("spawn-from-any-task", any);
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Ablations: resource and policy knobs (postdoms policy)");

    const std::vector<std::string> workloads = {"twolf", "mcf"};
    const double scale = benchScale() * 0.5;
    const std::vector<Section> secs = sections();

    // Per workload: one superscalar baseline, then every section
    // config under postdoms.
    std::vector<driver::SweepCell> cells;
    for (const std::string &wl : workloads) {
        cells.push_back({wl, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const Section &s : secs) {
            for (const auto &[name, cfg] : s.cfgs) {
                cells.push_back({wl, scale,
                                 driver::SourceSpec::statics(
                                     SpawnPolicy::postdoms()),
                                 cfg, name});
            }
        }
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    size_t idx = 0;
    for (const std::string &wl : workloads) {
        const TimingResult &base = results[idx++].sim;
        std::cout << "== workload " << wl
                  << " (superscalar IPC " << base.ipc() << ") ==\n\n";
        for (const Section &s : secs) {
            Table t({"config", "cycles", "IPC", "speedup%", "spawns",
                     "violations"});
            for (size_t k = 0; k < s.cfgs.size(); ++k) {
                const TimingResult &r = results[idx++].sim;
                t.startRow();
                t.cell(s.cfgs[k].first);
                t.cell((long long)r.cycles);
                t.cell(r.ipc());
                t.cell(r.speedupOver(base), 1);
                t.cell((long long)r.spawns);
                t.cell((long long)r.violations);
            }
            std::cout << "--- " << s.title << " ---\n";
            t.print(std::cout);
            std::cout << "\n";
        }
    }
    writeRunStats("ablation_resources.stats.json", cells, results);
    printCycleAttribution(cells, results);
    return 0;
}
