/**
 * @file
 * Timing-simulator throughput microbenchmark: simulated committed
 * instructions per second of wall-clock, for the superscalar
 * baseline and the postdoms PolyFlow configuration, on three
 * workloads of different character. Run it before and after touching
 * TimingSim hot paths (taskOf/taskPosOf, the store-consumer index,
 * AddrIndex); the aggregate number is appended-free-rewritten to
 * results/micro_timing_sim.txt so regressions are visible in review.
 */

#include <filesystem>
#include <fstream>

#include "bench_util.hh"
#include "polyflow.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Micro: timing-simulator throughput "
           "(simulated instrs/sec)");

    const std::vector<std::string> workloads = {"twolf", "mcf",
                                                "gcc"};
    const double scale = benchScale();
    const int reps = 3;  //!< best-of to damp scheduler noise

    // Grid: reps identical runs per (workload, config); the cache
    // guarantees each workload still traces once.
    std::vector<driver::SweepCell> cells;
    for (const std::string &wl : workloads) {
        for (int r = 0; r < reps; ++r) {
            cells.push_back({wl, scale,
                             driver::SourceSpec::baseline(),
                             MachineConfig::superscalar(),
                             "superscalar"});
        }
        for (int r = 0; r < reps; ++r) {
            cells.push_back({wl, scale,
                             driver::SourceSpec::statics(
                                 SpawnPolicy::postdoms()),
                             MachineConfig{},
                             SpawnPolicy::postdoms().name});
        }
    }
    // Throughput numbers are only comparable when cells run alone:
    // force one job regardless of PF_BENCH_JOBS.
    (void)argc;
    (void)argv;
    driver::SweepRunner runner(1);
    const auto results = runner.run(cells);

    Table t({"workload", "config", "instrs", "best s",
             "instrs/sec"});
    double sumRate = 0;
    int rows = 0;
    size_t idx = 0;
    for (const std::string &wl : workloads) {
        for (const char *cfg : {"superscalar", "postdoms"}) {
            double best = results[idx].wallSeconds;
            std::uint64_t instrs = results[idx].sim.instrs;
            for (int r = 0; r < reps; ++r, ++idx)
                best = std::min(best, results[idx].wallSeconds);
            double rate = best > 0 ? double(instrs) / best : 0.0;
            sumRate += rate;
            ++rows;
            t.startRow();
            t.cell(wl);
            t.cell(std::string(cfg));
            t.cell((long long)instrs);
            t.cell(best, 4);
            t.cell(rate, 0);
        }
    }
    t.print(std::cout);

    double meanRate = rows ? sumRate / rows : 0.0;
    std::cout << "\nmean timing-sim throughput: " << meanRate
              << " simulated instrs/sec\n";

    // Per-stage breakdown: one profiled run per (workload, config),
    // reporting each stage module's share of simulator wall time.
    // Profiled runs pay for the timestamping, so they are separate
    // from the throughput grid above.
    std::cout << "\nper-stage share of simulator time (%):\n";
    Table bt({"workload", "config", "commit", "account", "divert",
              "issue", "rename", "fetch", "recover"});
    for (const std::string &wl : workloads) {
        Session s = Session::open(wl, scale);
        for (const char *label : {"superscalar", "postdoms"}) {
            bool pf = std::string(label) == "postdoms";
            std::unique_ptr<StaticSpawnSource> src;
            if (pf) {
                src = std::make_unique<StaticSpawnSource>(
                    *s.hints(SpawnPolicy::postdoms()));
            }
            TimingSim sim(pf ? MachineConfig{}
                             : MachineConfig::superscalar(),
                          s.trace(), src.get());
            StageProfile prof;
            sim.profileStages(&prof);
            sim.run(label);
            const double total = double(
                prof.commitNs + prof.accountingNs + prof.divertNs +
                prof.issueNs + prof.renameNs + prof.fetchNs +
                prof.recoveryNs);
            auto pct = [&](std::uint64_t ns) {
                return total > 0 ? 100.0 * double(ns) / total : 0.0;
            };
            bt.startRow();
            bt.cell(wl);
            bt.cell(std::string(label));
            bt.cell(pct(prof.commitNs), 1);
            bt.cell(pct(prof.accountingNs), 1);
            bt.cell(pct(prof.divertNs), 1);
            bt.cell(pct(prof.issueNs), 1);
            bt.cell(pct(prof.renameNs), 1);
            bt.cell(pct(prof.fetchNs), 1);
            bt.cell(pct(prof.recoveryNs), 1);
        }
    }
    bt.print(std::cout);

    std::filesystem::create_directories("results");
    std::ofstream out("results/micro_timing_sim.txt");
    out << "mean_simulated_instrs_per_sec " << meanRate << "\n";
    return 0;
}
