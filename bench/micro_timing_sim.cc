/**
 * @file
 * Timing-simulator throughput microbenchmark, scalar vs batched.
 *
 * For each (workload, config) it simulates the same W machines (one
 * trace, W fresh spawn sources) twice: one at a time through the
 * scalar TimingSim::run reference path, and as one batch through the
 * stage-major MachineBatch engine. The metric is machine-cycles per
 * second of wall-clock — both paths simulate identical cycles (the
 * bench asserts it), so the ratio isolates what the batch backend
 * amortizes: the per-cycle scheduler sort, mid-vector erases and
 * per-cycle allocation. Run it before and after touching TimingSim
 * hot paths; the comparison table is rewritten to
 * results/micro_timing_sim.txt so regressions are visible in review.
 *
 * Knobs: --batch N (batch width, default PF_BENCH_BATCH or 8),
 * --require-batch-speedup X (exit 1 unless batched/scalar >= X; the
 * release-mode CI smoke job uses it), PF_BENCH_SCALE.
 */

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_util.hh"
#include "polyflow.hh"

using namespace polyflow;
using namespace polyflow::bench;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

/** `--require-batch-speedup X` from the command line, else 0 (no
 *  enforcement). */
double
requiredSpeedup(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *val = nullptr;
        if (std::strcmp(arg, "--require-batch-speedup") == 0 &&
            i + 1 < argc) {
            val = argv[i + 1];
        } else if (std::strncmp(arg, "--require-batch-speedup=",
                                24) == 0) {
            val = arg + 24;
        }
        if (val) {
            if (auto v = driver::parsePositiveDouble(val))
                return *v;
            std::fprintf(stderr,
                         "--require-batch-speedup: expected a "
                         "positive number, got \"%s\"\n",
                         val);
            std::exit(2);
        }
    }
    return 0.0;
}

struct PathTiming
{
    double bestSeconds = 0.0;
    std::uint64_t machineCycles = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    banner("Micro: timing-simulator throughput, scalar vs batched "
           "(machine-cycles/sec)");

    const std::vector<std::string> workloads = {"twolf", "mcf",
                                                "gcc"};
    const double scale = benchScale();
    const int width = driver::batchWidthFromArgs(argc, argv);
    const double require = requiredSpeedup(argc, argv);
    const int reps = 3;  //!< best-of to damp scheduler noise

    std::cout << "batch width: " << width << ", best of " << reps
              << " reps\n\n";

    struct Setup
    {
        const char *label;
        MachineConfig config;
        driver::SourceSpec spec;
    };
    const std::vector<Setup> setups = {
        {"superscalar", MachineConfig::superscalar(),
         driver::SourceSpec::baseline()},
        {"postdoms", MachineConfig{},
         driver::SourceSpec::statics(SpawnPolicy::postdoms())},
    };

    Table t({"workload", "config", "machines", "scalar s",
             "batched s", "scalar Mc/s", "batched Mc/s", "speedup"});
    StageProfile scalarProf, batchProf;
    std::uint64_t scalarCycles = 0, batchCycles = 0;
    double scalarSeconds = 0.0, batchSeconds = 0.0;
    std::ostringstream fileTable;

    for (const std::string &wl : workloads) {
        Session s = Session::open(wl, scale);
        for (const Setup &setup : setups) {
            // Scalar reference: the W machines one at a time.
            // Sources train, so every rep prepares fresh ones.
            PathTiming scalar;
            for (int r = 0; r < reps; ++r) {
                std::vector<PreparedRun> runs;
                for (int m = 0; m < width; ++m)
                    runs.push_back(
                        s.prepare(setup.spec, setup.label));
                std::uint64_t cycles = 0;
                double t0 = now();
                for (PreparedRun &run : runs) {
                    TimingSim sim(setup.config, run.trace(),
                                  run.source.get(),
                                  run.index.get());
                    if (r == 0)
                        sim.profileStages(&scalarProf);
                    cycles += sim.run(run.label).cycles;
                }
                double wall = now() - t0;
                if (r == 0 || wall < scalar.bestSeconds)
                    scalar.bestSeconds = wall;
                scalar.machineCycles = cycles;
            }

            // Batched: the same W machines, one stage-major batch.
            PathTiming batched;
            for (int r = 0; r < reps; ++r) {
                std::vector<PreparedRun> runs;
                for (int m = 0; m < width; ++m)
                    runs.push_back(
                        s.prepare(setup.spec, setup.label));
                std::vector<BatchItem> items;
                for (const PreparedRun &run : runs)
                    items.push_back(run.item());
                double t0 = now();
                const auto out = TimingSim::runBatch(
                    setup.config, items,
                    r == 0 ? &batchProf : nullptr);
                double wall = now() - t0;
                std::uint64_t cycles = 0;
                for (const TimingResult &res : out)
                    cycles += res.cycles;
                if (r == 0 || wall < batched.bestSeconds)
                    batched.bestSeconds = wall;
                batched.machineCycles = cycles;
            }

            if (scalar.machineCycles != batched.machineCycles) {
                std::cerr << "FAIL: batched cycles diverge from "
                          << "scalar for " << wl << "/"
                          << setup.label << ": "
                          << batched.machineCycles << " vs "
                          << scalar.machineCycles << "\n";
                return 1;
            }

            double sRate = scalar.bestSeconds > 0
                ? double(scalar.machineCycles) / scalar.bestSeconds
                : 0.0;
            double bRate = batched.bestSeconds > 0
                ? double(batched.machineCycles) /
                    batched.bestSeconds
                : 0.0;
            double speedup = sRate > 0 ? bRate / sRate : 0.0;
            scalarCycles += scalar.machineCycles;
            batchCycles += batched.machineCycles;
            scalarSeconds += scalar.bestSeconds;
            batchSeconds += batched.bestSeconds;

            t.startRow();
            t.cell(wl);
            t.cell(std::string(setup.label));
            t.cell((long long)width);
            t.cell(scalar.bestSeconds, 4);
            t.cell(batched.bestSeconds, 4);
            t.cell(sRate / 1e6, 2);
            t.cell(bRate / 1e6, 2);
            t.cell(speedup, 2);
            fileTable << wl << " " << setup.label << " width "
                      << width << " scalar_mcps "
                      << sRate / 1e6 << " batched_mcps "
                      << bRate / 1e6 << " speedup " << speedup
                      << "\n";
        }
    }
    t.print(std::cout);

    double aggScalar =
        scalarSeconds > 0 ? double(scalarCycles) / scalarSeconds
                          : 0.0;
    double aggBatch =
        batchSeconds > 0 ? double(batchCycles) / batchSeconds : 0.0;
    double aggSpeedup = aggScalar > 0 ? aggBatch / aggScalar : 0.0;
    std::cout << "\naggregate: scalar " << aggScalar / 1e6
              << " Mcycles/s, batched " << aggBatch / 1e6
              << " Mcycles/s, speedup " << aggSpeedup << "x\n";

    // Per-stage breakdown of both paths, from the first rep of each
    // cell above. A batched profile spans every machine of the
    // batch; ns/kcycle divides by profiled machine-cycles, so the
    // per-machine cost is comparable across paths and widths.
    auto breakdown = [](const char *path,
                        const StageProfile &prof) {
        std::cout << "\n" << path << " per-stage breakdown ("
                  << prof.machines << " machine(s), "
                  << prof.cycles << " machine-cycles):\n";
        Table bt({"stage", "share %", "ns/kcycle"});
        const struct
        {
            const char *name;
            std::uint64_t ns;
        } rows[] = {
            {"commit", prof.commitNs},
            {"account", prof.accountingNs},
            {"divert", prof.divertNs},
            {"issue", prof.issueNs},
            {"rename", prof.renameNs},
            {"fetch", prof.fetchNs},
            {"recover", prof.recoveryNs},
        };
        double total = double(prof.totalNs());
        for (const auto &r : rows) {
            bt.startRow();
            bt.cell(std::string(r.name));
            bt.cell(total > 0 ? 100.0 * double(r.ns) / total : 0.0,
                    1);
            bt.cell(prof.cycles > 0
                        ? 1e3 * double(r.ns) / double(prof.cycles)
                        : 0.0,
                    1);
        }
        bt.print(std::cout);
    };
    breakdown("scalar", scalarProf);
    breakdown("batched", batchProf);

    std::filesystem::create_directories("results");
    std::ofstream out("results/micro_timing_sim.txt");
    out << "batch_width " << width << "\n"
        << fileTable.str()
        << "aggregate_scalar_mcycles_per_sec " << aggScalar / 1e6
        << "\n"
        << "aggregate_batched_mcycles_per_sec " << aggBatch / 1e6
        << "\n"
        << "batched_over_scalar_speedup " << aggSpeedup << "\n";

    if (require > 0 && aggSpeedup < require) {
        std::cerr << "FAIL: batched/scalar speedup " << aggSpeedup
                  << " below required " << require << "\n";
        return 1;
    }
    return 0;
}
