/**
 * @file
 * Figure 11: loss in speedup, relative to spawning from the full
 * postdominator set, for policies that exclude one spawn category.
 * Losses are normalized to the superscalar IPC, as in the paper:
 * loss = speedup(postdoms) - speedup(postdoms - category).
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main()
{
    banner("Figure 11: loss in % speedup when one postdominator "
           "category is excluded");

    const std::vector<SpawnKind> excluded = {
        SpawnKind::LoopFT,
        SpawnKind::ProcFT,
        SpawnKind::Hammock,
        SpawnKind::Other,
    };

    std::vector<std::string> header = {"benchmark"};
    for (SpawnKind k : excluded)
        header.push_back(std::string("-") + spawnKindName(k));
    Table table(header);

    std::vector<std::vector<double>> columns(excluded.size());
    for (const std::string &name : allWorkloadNames()) {
        TracedWorkload tw = traceWorkload(name, benchScale());
        SimResult base = runBaseline(tw);
        SimResult full = runPolicy(tw, SpawnPolicy::postdoms());
        double fullSpeedup = full.speedupOver(base);
        table.startRow();
        table.cell(name);
        for (size_t i = 0; i < excluded.size(); ++i) {
            SimResult r = runPolicy(
                tw, SpawnPolicy::postdomsMinus(excluded[i]));
            double loss = fullSpeedup - r.speedupOver(base);
            columns[i].push_back(loss);
            table.cell(loss, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig11.csv");
    std::cout << "\nPositive numbers mean the excluded category was "
                 "contributing (paper: every category\nmatters on "
                 "specific benchmarks; small negative values can "
                 "appear when a benchmark is\nespecially receptive "
                 "to one spawn type, Section 4.3).\n";
    return 0;
}
