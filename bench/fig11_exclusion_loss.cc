/**
 * @file
 * Figure 11: loss in speedup, relative to spawning from the full
 * postdominator set, for policies that exclude one spawn category.
 * Losses are normalized to the superscalar IPC, as in the paper:
 * loss = speedup(postdoms) - speedup(postdoms - category).
 * The grid runs on the sweep engine.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Figure 11: loss in % speedup when one postdominator "
           "category is excluded");

    const std::vector<SpawnKind> excluded = {
        SpawnKind::LoopFT,
        SpawnKind::ProcFT,
        SpawnKind::Hammock,
        SpawnKind::Other,
    };
    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = benchScale();

    // Per workload: baseline, full postdoms, then one exclusion per
    // category.
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : names) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        cells.push_back({name, scale,
                         driver::SourceSpec::statics(
                             SpawnPolicy::postdoms()),
                         MachineConfig{},
                         SpawnPolicy::postdoms().name});
        for (SpawnKind k : excluded) {
            SpawnPolicy p = SpawnPolicy::postdomsMinus(k);
            cells.push_back({name, scale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    std::vector<std::string> header = {"benchmark"};
    for (SpawnKind k : excluded)
        header.push_back(std::string("-") + spawnKindName(k));
    Table table(header);

    const size_t stride = 2 + excluded.size();
    std::vector<std::vector<double>> columns(excluded.size());
    for (size_t w = 0; w < names.size(); ++w) {
        const TimingResult &base = results[w * stride].sim;
        const TimingResult &full = results[w * stride + 1].sim;
        double fullSpeedup = full.speedupOver(base);
        table.startRow();
        table.cell(names[w]);
        for (size_t i = 0; i < excluded.size(); ++i) {
            const TimingResult &r = results[w * stride + 2 + i].sim;
            double loss = fullSpeedup - r.speedupOver(base);
            columns[i].push_back(loss);
            table.cell(loss, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig11.csv");
    writeRunStats("fig11.stats.json", cells, results);
    printCycleAttribution(cells, results);
    std::cout << "\nPositive numbers mean the excluded category was "
                 "contributing (paper: every category\nmatters on "
                 "specific benchmarks; small negative values can "
                 "appear when a benchmark is\nespecially receptive "
                 "to one spawn type, Section 4.3).\n";
    return 0;
}
