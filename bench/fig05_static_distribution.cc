/**
 * @file
 * Figure 5: static distribution of control-equivalent task types
 * (loop fall-throughs, procedure fall-throughs, hammocks, other)
 * per benchmark, with the total number of static spawns on top of
 * each bar. Loop-iteration spawn points are excluded, exactly as in
 * the paper (the figure classifies postdominator spawns only).
 * Workload builds and spawn analyses run in parallel through the
 * sweep engine's shared cache; the table prints in workload order.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Figure 5: static distribution of control-equivalent "
           "task types");

    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = 0.05;

    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    runner.parallelFor(names.size(), [&](size_t i) {
        runner.cache().analysis(names[i], scale);
    });

    Table table({"benchmark", "loopFT%", "procFT%", "hammock%",
                 "other%", "totalStatic"});

    for (const std::string &name : names) {
        auto sa = runner.cache().analysis(name, scale);
        const SpawnCensus &c = sa->census();
        double total = c.postdomTotal();
        auto pct = [&](SpawnKind k) {
            return total
                ? 100.0 * c.byKind[int(k)] / total : 0.0;
        };
        table.startRow();
        table.cell(name);
        table.cell(pct(SpawnKind::LoopFT), 1);
        table.cell(pct(SpawnKind::ProcFT), 1);
        table.cell(pct(SpawnKind::Hammock), 1);
        table.cell(pct(SpawnKind::Other), 1);
        table.cell((long long)total);
    }
    table.print(std::cout);
    table.writeCsv("fig05.csv");
    std::cout << "\nAll four categories should be represented; "
                 "hammocks, loop fall-throughs and procedure\n"
                 "fall-throughs are all important task types "
                 "(paper Section 2.2).\n";
    return 0;
}
