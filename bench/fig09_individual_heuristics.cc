/**
 * @file
 * Figure 9: speedup over the 8-wide superscalar for each individual
 * heuristic spawn policy (loop, loopFT, procFT, hammock, other) and
 * for control-equivalent spawning from all immediate postdominators
 * (postdoms). Superscalar IPCs are reported per benchmark, as in
 * the paper. The (workload x policy) grid runs on the sweep engine.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Figure 9: individual heuristic spawn policies "
           "(speedup % over superscalar)");

    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loop(),    SpawnPolicy::loopFT(),
        SpawnPolicy::procFT(),  SpawnPolicy::hammock(),
        SpawnPolicy::other(),   SpawnPolicy::postdoms(),
    };
    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = benchScale();

    // One baseline plus one run per policy, per workload.
    std::vector<driver::SweepCell> cells;
    for (const std::string &name : names) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const auto &p : policies) {
            cells.push_back({name, scale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    std::vector<std::string> header = {"benchmark", "ssIPC"};
    for (const auto &p : policies)
        header.push_back(p.name);
    Table table(header);

    const size_t stride = 1 + policies.size();
    std::vector<std::vector<double>> columns(policies.size());
    for (size_t w = 0; w < names.size(); ++w) {
        const TimingResult &base = results[w * stride].sim;
        table.startRow();
        table.cell(names[w]);
        table.cell(base.ipc());
        for (size_t i = 0; i < policies.size(); ++i) {
            const TimingResult &r = results[w * stride + 1 + i].sim;
            double s = r.speedupOver(base);
            columns[i].push_back(s);
            table.cell(s, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    table.cell(std::string(""));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig09.csv");
    writeRunStats("fig09.stats.json", cells, results);
    printCycleAttribution(cells, results);

    // Paper headline: postdoms more than doubles the best
    // individual heuristic's average speedup.
    double best = 0;
    for (size_t i = 0; i + 1 < columns.size(); ++i)
        best = std::max(best, mean(columns[i]));
    std::cout << "\npostdoms avg = " << mean(columns.back())
              << "%, best individual heuristic avg = " << best
              << "%\n";
    return 0;
}
