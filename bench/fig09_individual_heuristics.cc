/**
 * @file
 * Figure 9: speedup over the 8-wide superscalar for each individual
 * heuristic spawn policy (loop, loopFT, procFT, hammock, other) and
 * for control-equivalent spawning from all immediate postdominators
 * (postdoms). Superscalar IPCs are reported per benchmark, as in
 * the paper.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main()
{
    banner("Figure 9: individual heuristic spawn policies "
           "(speedup % over superscalar)");

    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loop(),    SpawnPolicy::loopFT(),
        SpawnPolicy::procFT(),  SpawnPolicy::hammock(),
        SpawnPolicy::other(),   SpawnPolicy::postdoms(),
    };

    std::vector<std::string> header = {"benchmark", "ssIPC"};
    for (const auto &p : policies)
        header.push_back(p.name);
    Table table(header);

    std::vector<std::vector<double>> columns(policies.size());
    for (const std::string &name : allWorkloadNames()) {
        TracedWorkload tw = traceWorkload(name, benchScale());
        SimResult base = runBaseline(tw);
        table.startRow();
        table.cell(name);
        table.cell(base.ipc());
        for (size_t i = 0; i < policies.size(); ++i) {
            SimResult r = runPolicy(tw, policies[i]);
            double s = r.speedupOver(base);
            columns[i].push_back(s);
            table.cell(s, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    table.cell(std::string(""));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig09.csv");

    // Paper headline: postdoms more than doubles the best
    // individual heuristic's average speedup.
    double best = 0;
    for (size_t i = 0; i + 1 < columns.size(); ++i)
        best = std::max(best, mean(columns[i]));
    std::cout << "\npostdoms avg = " << mean(columns.back())
              << "%, best individual heuristic avg = " << best
              << "%\n";
    return 0;
}
