/**
 * @file
 * Related-work comparison (paper Section 5): DMT-style dynamic
 * heuristics (loop fall-through after backward branches + procedure
 * fall-throughs) vs the reconvergence-predictor spawning of Section
 * 4.4 vs compiler postdominators. The paper claims its static and
 * dynamic techniques capture more spawn opportunities than DMT.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main()
{
    banner("Related work: DMT heuristics vs rec_pred vs postdoms "
           "(speedup % over superscalar)");

    Table t({"benchmark", "DMT", "rec_pred", "postdoms"});
    std::vector<double> dmtCol, recCol, pdCol;

    for (const std::string &name : allWorkloadNames()) {
        TracedWorkload tw = traceWorkload(name, benchScale());
        SimResult base = runBaseline(tw);

        DmtSpawnSource dmt;
        SimResult rDmt =
            simulate(MachineConfig{}, tw.trace, &dmt, "dmt");
        ReconSpawnSource rec;
        SimResult rRec =
            simulate(MachineConfig{}, tw.trace, &rec, "rec_pred");
        SimResult rPd = runPolicy(tw, SpawnPolicy::postdoms());

        t.startRow();
        t.cell(name);
        double d = rDmt.speedupOver(base);
        double r = rRec.speedupOver(base);
        double p = rPd.speedupOver(base);
        dmtCol.push_back(d);
        recCol.push_back(r);
        pdCol.push_back(p);
        t.cell(d, 1);
        t.cell(r, 1);
        t.cell(p, 1);
    }
    t.startRow();
    t.cell(std::string("Average"));
    t.cell(mean(dmtCol), 1);
    t.cell(mean(recCol), 1);
    t.cell(mean(pdCol), 1);
    t.print(std::cout);
    t.writeCsv("related_dynamic.csv");
    std::cout << "\nExpected ordering (paper Section 5): "
                 "DMT <= rec_pred <= postdoms on average.\n";
    return 0;
}
