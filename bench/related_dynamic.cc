/**
 * @file
 * Related-work comparison (paper Section 5): DMT-style dynamic
 * heuristics (loop fall-through after backward branches + procedure
 * fall-throughs) vs the reconvergence-predictor spawning of Section
 * 4.4 vs compiler postdominators. The paper claims its static and
 * dynamic techniques capture more spawn opportunities than DMT.
 * The grid runs on the sweep engine.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Related work: DMT heuristics vs rec_pred vs postdoms "
           "(speedup % over superscalar)");

    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = benchScale();

    std::vector<driver::SweepCell> cells;
    for (const std::string &name : names) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        cells.push_back({name, scale, driver::SourceSpec::dmt(),
                         MachineConfig{}, "dmt"});
        cells.push_back({name, scale, driver::SourceSpec::recon(),
                         MachineConfig{}, "rec_pred"});
        cells.push_back({name, scale,
                         driver::SourceSpec::statics(
                             SpawnPolicy::postdoms()),
                         MachineConfig{},
                         SpawnPolicy::postdoms().name});
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    Table t({"benchmark", "DMT", "rec_pred", "postdoms"});
    std::vector<double> dmtCol, recCol, pdCol;

    const size_t stride = 4;
    for (size_t w = 0; w < names.size(); ++w) {
        const TimingResult &base = results[w * stride].sim;
        t.startRow();
        t.cell(names[w]);
        double d = results[w * stride + 1].sim.speedupOver(base);
        double r = results[w * stride + 2].sim.speedupOver(base);
        double p = results[w * stride + 3].sim.speedupOver(base);
        dmtCol.push_back(d);
        recCol.push_back(r);
        pdCol.push_back(p);
        t.cell(d, 1);
        t.cell(r, 1);
        t.cell(p, 1);
    }
    t.startRow();
    t.cell(std::string("Average"));
    t.cell(mean(dmtCol), 1);
    t.cell(mean(recCol), 1);
    t.cell(mean(pdCol), 1);
    t.print(std::cout);
    t.writeCsv("related_dynamic.csv");
    writeRunStats("related_dynamic.stats.json", cells, results);
    printCycleAttribution(cells, results);
    std::cout << "\nExpected ordering (paper Section 5): "
                 "DMT <= rec_pred <= postdoms on average.\n";
    return 0;
}
