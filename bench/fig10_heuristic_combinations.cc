/**
 * @file
 * Figure 10: combinations of heuristics for spawn points. Compares
 * the three widely-used heuristic combinations (loop + loopFT,
 * loopFT + procFT, loop + procFT + loopFT) against spawning from
 * immediate postdominators. The grid runs on the sweep engine.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main(int argc, char **argv)
{
    banner("Figure 10: heuristic combinations vs postdominators "
           "(speedup % over superscalar)");

    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loopPlusLoopFT(),
        SpawnPolicy::loopFTPlusProcFT(),
        SpawnPolicy::loopProcFTLoopFT(),
        SpawnPolicy::postdoms(),
    };
    const std::vector<std::string> &names = allWorkloadNames();
    const double scale = benchScale();

    std::vector<driver::SweepCell> cells;
    for (const std::string &name : names) {
        cells.push_back({name, scale, driver::SourceSpec::baseline(),
                         MachineConfig::superscalar(),
                         "superscalar"});
        for (const auto &p : policies) {
            cells.push_back({name, scale,
                             driver::SourceSpec::statics(p),
                             MachineConfig{}, p.name});
        }
    }
    driver::SweepRunner runner(driver::jobsFromArgs(argc, argv),
                               driver::batchWidthFromArgs(argc, argv));
    const auto results = runner.run(cells);

    std::vector<std::string> header = {"benchmark"};
    for (const auto &p : policies)
        header.push_back(p.name);
    Table table(header);

    const size_t stride = 1 + policies.size();
    std::vector<std::vector<double>> columns(policies.size());
    for (size_t w = 0; w < names.size(); ++w) {
        const TimingResult &base = results[w * stride].sim;
        table.startRow();
        table.cell(names[w]);
        for (size_t i = 0; i < policies.size(); ++i) {
            const TimingResult &r = results[w * stride + 1 + i].sim;
            double s = r.speedupOver(base);
            columns[i].push_back(s);
            table.cell(s, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig10.csv");
    writeRunStats("fig10.stats.json", cells, results);
    printCycleAttribution(cells, results);

    double bestCombo = 0;
    for (size_t i = 0; i + 1 < columns.size(); ++i)
        bestCombo = std::max(bestCombo, mean(columns[i]));
    std::cout << "\npostdoms avg = " << mean(columns.back())
              << "%, best combination avg = " << bestCombo << "%\n";
    return 0;
}
