/**
 * @file
 * Figure 10: combinations of heuristics for spawn points. Compares
 * the three widely-used heuristic combinations (loop + loopFT,
 * loopFT + procFT, loop + procFT + loopFT) against spawning from
 * immediate postdominators.
 */

#include "bench_util.hh"

using namespace polyflow;
using namespace polyflow::bench;

int
main()
{
    banner("Figure 10: heuristic combinations vs postdominators "
           "(speedup % over superscalar)");

    const std::vector<SpawnPolicy> policies = {
        SpawnPolicy::loopPlusLoopFT(),
        SpawnPolicy::loopFTPlusProcFT(),
        SpawnPolicy::loopProcFTLoopFT(),
        SpawnPolicy::postdoms(),
    };

    std::vector<std::string> header = {"benchmark"};
    for (const auto &p : policies)
        header.push_back(p.name);
    Table table(header);

    std::vector<std::vector<double>> columns(policies.size());
    for (const std::string &name : allWorkloadNames()) {
        TracedWorkload tw = traceWorkload(name, benchScale());
        SimResult base = runBaseline(tw);
        table.startRow();
        table.cell(name);
        for (size_t i = 0; i < policies.size(); ++i) {
            SimResult r = runPolicy(tw, policies[i]);
            double s = r.speedupOver(base);
            columns[i].push_back(s);
            table.cell(s, 1);
        }
    }
    table.startRow();
    table.cell(std::string("Average"));
    for (auto &col : columns)
        table.cell(mean(col), 1);

    table.print(std::cout);
    table.writeCsv("fig10.csv");

    double bestCombo = 0;
    for (size_t i = 0; i + 1 < columns.size(); ++i)
        bestCombo = std::max(bestCombo, mean(columns[i]));
    std::cout << "\npostdoms avg = " << mean(columns.back())
              << "%, best combination avg = " << bestCombo << "%\n";
    return 0;
}
