file(REMOVE_RECURSE
  "CMakeFiles/fig11_exclusion_loss.dir/fig11_exclusion_loss.cc.o"
  "CMakeFiles/fig11_exclusion_loss.dir/fig11_exclusion_loss.cc.o.d"
  "fig11_exclusion_loss"
  "fig11_exclusion_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_exclusion_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
