# Empty dependencies file for fig11_exclusion_loss.
# This may be replaced when dependencies are built.
