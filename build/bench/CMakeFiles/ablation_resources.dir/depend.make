# Empty dependencies file for ablation_resources.
# This may be replaced when dependencies are built.
