file(REMOVE_RECURSE
  "CMakeFiles/ablation_resources.dir/ablation_resources.cc.o"
  "CMakeFiles/ablation_resources.dir/ablation_resources.cc.o.d"
  "ablation_resources"
  "ablation_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
