# Empty compiler generated dependencies file for fig08_machine_config.
# This may be replaced when dependencies are built.
