file(REMOVE_RECURSE
  "CMakeFiles/fig08_machine_config.dir/fig08_machine_config.cc.o"
  "CMakeFiles/fig08_machine_config.dir/fig08_machine_config.cc.o.d"
  "fig08_machine_config"
  "fig08_machine_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_machine_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
