# Empty compiler generated dependencies file for fig05_static_distribution.
# This may be replaced when dependencies are built.
