file(REMOVE_RECURSE
  "CMakeFiles/fig05_static_distribution.dir/fig05_static_distribution.cc.o"
  "CMakeFiles/fig05_static_distribution.dir/fig05_static_distribution.cc.o.d"
  "fig05_static_distribution"
  "fig05_static_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_static_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
