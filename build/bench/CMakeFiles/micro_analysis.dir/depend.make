# Empty dependencies file for micro_analysis.
# This may be replaced when dependencies are built.
