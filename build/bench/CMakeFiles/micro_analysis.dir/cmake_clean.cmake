file(REMOVE_RECURSE
  "CMakeFiles/micro_analysis.dir/micro_analysis.cc.o"
  "CMakeFiles/micro_analysis.dir/micro_analysis.cc.o.d"
  "micro_analysis"
  "micro_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
