# Empty compiler generated dependencies file for fig12_reconvergence_predictor.
# This may be replaced when dependencies are built.
