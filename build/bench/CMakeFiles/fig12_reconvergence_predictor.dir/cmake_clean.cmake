file(REMOVE_RECURSE
  "CMakeFiles/fig12_reconvergence_predictor.dir/fig12_reconvergence_predictor.cc.o"
  "CMakeFiles/fig12_reconvergence_predictor.dir/fig12_reconvergence_predictor.cc.o.d"
  "fig12_reconvergence_predictor"
  "fig12_reconvergence_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reconvergence_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
