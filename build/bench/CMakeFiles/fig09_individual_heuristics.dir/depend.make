# Empty dependencies file for fig09_individual_heuristics.
# This may be replaced when dependencies are built.
