file(REMOVE_RECURSE
  "CMakeFiles/fig09_individual_heuristics.dir/fig09_individual_heuristics.cc.o"
  "CMakeFiles/fig09_individual_heuristics.dir/fig09_individual_heuristics.cc.o.d"
  "fig09_individual_heuristics"
  "fig09_individual_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_individual_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
