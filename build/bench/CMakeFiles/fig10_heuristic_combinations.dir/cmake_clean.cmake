file(REMOVE_RECURSE
  "CMakeFiles/fig10_heuristic_combinations.dir/fig10_heuristic_combinations.cc.o"
  "CMakeFiles/fig10_heuristic_combinations.dir/fig10_heuristic_combinations.cc.o.d"
  "fig10_heuristic_combinations"
  "fig10_heuristic_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_heuristic_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
