# Empty compiler generated dependencies file for fig10_heuristic_combinations.
# This may be replaced when dependencies are built.
