file(REMOVE_RECURSE
  "CMakeFiles/related_dynamic.dir/related_dynamic.cc.o"
  "CMakeFiles/related_dynamic.dir/related_dynamic.cc.o.d"
  "related_dynamic"
  "related_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
