# Empty dependencies file for related_dynamic.
# This may be replaced when dependencies are built.
