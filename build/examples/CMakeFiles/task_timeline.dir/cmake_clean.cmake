file(REMOVE_RECURSE
  "CMakeFiles/task_timeline.dir/task_timeline.cc.o"
  "CMakeFiles/task_timeline.dir/task_timeline.cc.o.d"
  "task_timeline"
  "task_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
