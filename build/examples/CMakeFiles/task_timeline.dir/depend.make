# Empty dependencies file for task_timeline.
# This may be replaced when dependencies are built.
