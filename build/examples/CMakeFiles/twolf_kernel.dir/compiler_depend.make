# Empty compiler generated dependencies file for twolf_kernel.
# This may be replaced when dependencies are built.
