file(REMOVE_RECURSE
  "CMakeFiles/twolf_kernel.dir/twolf_kernel.cc.o"
  "CMakeFiles/twolf_kernel.dir/twolf_kernel.cc.o.d"
  "twolf_kernel"
  "twolf_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twolf_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
