# Empty dependencies file for pfasm.
# This may be replaced when dependencies are built.
