# Empty compiler generated dependencies file for pfasm.
# This may be replaced when dependencies are built.
