file(REMOVE_RECURSE
  "CMakeFiles/pfasm.dir/pfasm.cc.o"
  "CMakeFiles/pfasm.dir/pfasm.cc.o.d"
  "pfasm"
  "pfasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
