file(REMOVE_RECURSE
  "CMakeFiles/dump_graphs.dir/dump_graphs.cc.o"
  "CMakeFiles/dump_graphs.dir/dump_graphs.cc.o.d"
  "dump_graphs"
  "dump_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
