# Empty compiler generated dependencies file for dump_graphs.
# This may be replaced when dependencies are built.
