# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_spawn[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_asm[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_sim[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_sim_mechanisms[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_exec_props[1]_include.cmake")
include("/root/repo/build/tests/test_fetch_details[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_workload_character[1]_include.cmake")
include("/root/repo/build/tests/test_spawn_sources[1]_include.cmake")
