file(REMOVE_RECURSE
  "CMakeFiles/test_exec_props.dir/test_exec_props.cc.o"
  "CMakeFiles/test_exec_props.dir/test_exec_props.cc.o.d"
  "test_exec_props"
  "test_exec_props.pdb"
  "test_exec_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
