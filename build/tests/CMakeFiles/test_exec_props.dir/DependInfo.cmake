
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_exec_props.cc" "tests/CMakeFiles/test_exec_props.dir/test_exec_props.cc.o" "gcc" "tests/CMakeFiles/test_exec_props.dir/test_exec_props.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/pf_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pf_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/spawn/CMakeFiles/pf_spawn.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/pf_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pf_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
