# Empty dependencies file for test_exec_props.
# This may be replaced when dependencies are built.
