file(REMOVE_RECURSE
  "CMakeFiles/test_workload_character.dir/test_workload_character.cc.o"
  "CMakeFiles/test_workload_character.dir/test_workload_character.cc.o.d"
  "test_workload_character"
  "test_workload_character.pdb"
  "test_workload_character[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_character.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
