# Empty compiler generated dependencies file for test_workload_character.
# This may be replaced when dependencies are built.
