file(REMOVE_RECURSE
  "CMakeFiles/test_spawn_sources.dir/test_spawn_sources.cc.o"
  "CMakeFiles/test_spawn_sources.dir/test_spawn_sources.cc.o.d"
  "test_spawn_sources"
  "test_spawn_sources.pdb"
  "test_spawn_sources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spawn_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
