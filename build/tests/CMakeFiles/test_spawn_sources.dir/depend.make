# Empty dependencies file for test_spawn_sources.
# This may be replaced when dependencies are built.
