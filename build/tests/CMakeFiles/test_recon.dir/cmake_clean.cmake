file(REMOVE_RECURSE
  "CMakeFiles/test_recon.dir/test_recon.cc.o"
  "CMakeFiles/test_recon.dir/test_recon.cc.o.d"
  "test_recon"
  "test_recon.pdb"
  "test_recon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
