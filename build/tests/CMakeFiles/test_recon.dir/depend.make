# Empty dependencies file for test_recon.
# This may be replaced when dependencies are built.
