# Empty dependencies file for test_sim_mechanisms.
# This may be replaced when dependencies are built.
