file(REMOVE_RECURSE
  "CMakeFiles/test_sim_mechanisms.dir/test_sim_mechanisms.cc.o"
  "CMakeFiles/test_sim_mechanisms.dir/test_sim_mechanisms.cc.o.d"
  "test_sim_mechanisms"
  "test_sim_mechanisms.pdb"
  "test_sim_mechanisms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
