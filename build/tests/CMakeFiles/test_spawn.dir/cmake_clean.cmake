file(REMOVE_RECURSE
  "CMakeFiles/test_spawn.dir/test_spawn.cc.o"
  "CMakeFiles/test_spawn.dir/test_spawn.cc.o.d"
  "test_spawn"
  "test_spawn.pdb"
  "test_spawn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
