# Empty dependencies file for test_spawn.
# This may be replaced when dependencies are built.
