file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_sim.dir/test_fuzz_sim.cc.o"
  "CMakeFiles/test_fuzz_sim.dir/test_fuzz_sim.cc.o.d"
  "test_fuzz_sim"
  "test_fuzz_sim.pdb"
  "test_fuzz_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
