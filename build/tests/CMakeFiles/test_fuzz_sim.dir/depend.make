# Empty dependencies file for test_fuzz_sim.
# This may be replaced when dependencies are built.
