file(REMOVE_RECURSE
  "CMakeFiles/test_fetch_details.dir/test_fetch_details.cc.o"
  "CMakeFiles/test_fetch_details.dir/test_fetch_details.cc.o.d"
  "test_fetch_details"
  "test_fetch_details.pdb"
  "test_fetch_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetch_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
