# Empty dependencies file for test_fetch_details.
# This may be replaced when dependencies are built.
