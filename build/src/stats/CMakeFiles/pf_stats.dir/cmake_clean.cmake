file(REMOVE_RECURSE
  "CMakeFiles/pf_stats.dir/table.cc.o"
  "CMakeFiles/pf_stats.dir/table.cc.o.d"
  "libpf_stats.a"
  "libpf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
