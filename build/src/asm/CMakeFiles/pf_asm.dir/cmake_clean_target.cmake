file(REMOVE_RECURSE
  "libpf_asm.a"
)
