file(REMOVE_RECURSE
  "CMakeFiles/pf_asm.dir/assembler.cc.o"
  "CMakeFiles/pf_asm.dir/assembler.cc.o.d"
  "libpf_asm.a"
  "libpf_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
