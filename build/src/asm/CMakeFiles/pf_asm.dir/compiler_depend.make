# Empty compiler generated dependencies file for pf_asm.
# This may be replaced when dependencies are built.
