# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ir")
subdirs("isa")
subdirs("asm")
subdirs("analysis")
subdirs("spawn")
subdirs("recon")
subdirs("sim")
subdirs("workloads")
subdirs("stats")
