file(REMOVE_RECURSE
  "CMakeFiles/pf_isa.dir/arch_state.cc.o"
  "CMakeFiles/pf_isa.dir/arch_state.cc.o.d"
  "CMakeFiles/pf_isa.dir/exec.cc.o"
  "CMakeFiles/pf_isa.dir/exec.cc.o.d"
  "CMakeFiles/pf_isa.dir/functional_sim.cc.o"
  "CMakeFiles/pf_isa.dir/functional_sim.cc.o.d"
  "libpf_isa.a"
  "libpf_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
