
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/arch_state.cc" "src/isa/CMakeFiles/pf_isa.dir/arch_state.cc.o" "gcc" "src/isa/CMakeFiles/pf_isa.dir/arch_state.cc.o.d"
  "/root/repo/src/isa/exec.cc" "src/isa/CMakeFiles/pf_isa.dir/exec.cc.o" "gcc" "src/isa/CMakeFiles/pf_isa.dir/exec.cc.o.d"
  "/root/repo/src/isa/functional_sim.cc" "src/isa/CMakeFiles/pf_isa.dir/functional_sim.cc.o" "gcc" "src/isa/CMakeFiles/pf_isa.dir/functional_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
