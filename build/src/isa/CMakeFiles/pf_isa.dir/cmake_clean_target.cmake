file(REMOVE_RECURSE
  "libpf_isa.a"
)
