# Empty compiler generated dependencies file for pf_isa.
# This may be replaced when dependencies are built.
