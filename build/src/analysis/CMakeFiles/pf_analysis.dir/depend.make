# Empty dependencies file for pf_analysis.
# This may be replaced when dependencies are built.
