
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/callgraph.cc" "src/analysis/CMakeFiles/pf_analysis.dir/callgraph.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/callgraph.cc.o.d"
  "/root/repo/src/analysis/cfg_view.cc" "src/analysis/CMakeFiles/pf_analysis.dir/cfg_view.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/cfg_view.cc.o.d"
  "/root/repo/src/analysis/control_dep.cc" "src/analysis/CMakeFiles/pf_analysis.dir/control_dep.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/control_dep.cc.o.d"
  "/root/repo/src/analysis/dominators.cc" "src/analysis/CMakeFiles/pf_analysis.dir/dominators.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/dominators.cc.o.d"
  "/root/repo/src/analysis/dot.cc" "src/analysis/CMakeFiles/pf_analysis.dir/dot.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/dot.cc.o.d"
  "/root/repo/src/analysis/iterative_dom.cc" "src/analysis/CMakeFiles/pf_analysis.dir/iterative_dom.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/iterative_dom.cc.o.d"
  "/root/repo/src/analysis/liveness.cc" "src/analysis/CMakeFiles/pf_analysis.dir/liveness.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/liveness.cc.o.d"
  "/root/repo/src/analysis/loops.cc" "src/analysis/CMakeFiles/pf_analysis.dir/loops.cc.o" "gcc" "src/analysis/CMakeFiles/pf_analysis.dir/loops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
