file(REMOVE_RECURSE
  "libpf_analysis.a"
)
