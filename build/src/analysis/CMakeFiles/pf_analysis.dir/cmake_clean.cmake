file(REMOVE_RECURSE
  "CMakeFiles/pf_analysis.dir/callgraph.cc.o"
  "CMakeFiles/pf_analysis.dir/callgraph.cc.o.d"
  "CMakeFiles/pf_analysis.dir/cfg_view.cc.o"
  "CMakeFiles/pf_analysis.dir/cfg_view.cc.o.d"
  "CMakeFiles/pf_analysis.dir/control_dep.cc.o"
  "CMakeFiles/pf_analysis.dir/control_dep.cc.o.d"
  "CMakeFiles/pf_analysis.dir/dominators.cc.o"
  "CMakeFiles/pf_analysis.dir/dominators.cc.o.d"
  "CMakeFiles/pf_analysis.dir/dot.cc.o"
  "CMakeFiles/pf_analysis.dir/dot.cc.o.d"
  "CMakeFiles/pf_analysis.dir/iterative_dom.cc.o"
  "CMakeFiles/pf_analysis.dir/iterative_dom.cc.o.d"
  "CMakeFiles/pf_analysis.dir/liveness.cc.o"
  "CMakeFiles/pf_analysis.dir/liveness.cc.o.d"
  "CMakeFiles/pf_analysis.dir/loops.cc.o"
  "CMakeFiles/pf_analysis.dir/loops.cc.o.d"
  "libpf_analysis.a"
  "libpf_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
