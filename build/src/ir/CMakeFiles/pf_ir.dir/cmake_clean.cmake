file(REMOVE_RECURSE
  "CMakeFiles/pf_ir.dir/basic_block.cc.o"
  "CMakeFiles/pf_ir.dir/basic_block.cc.o.d"
  "CMakeFiles/pf_ir.dir/function.cc.o"
  "CMakeFiles/pf_ir.dir/function.cc.o.d"
  "CMakeFiles/pf_ir.dir/instruction.cc.o"
  "CMakeFiles/pf_ir.dir/instruction.cc.o.d"
  "CMakeFiles/pf_ir.dir/module.cc.o"
  "CMakeFiles/pf_ir.dir/module.cc.o.d"
  "CMakeFiles/pf_ir.dir/printer.cc.o"
  "CMakeFiles/pf_ir.dir/printer.cc.o.d"
  "CMakeFiles/pf_ir.dir/transforms.cc.o"
  "CMakeFiles/pf_ir.dir/transforms.cc.o.d"
  "libpf_ir.a"
  "libpf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
