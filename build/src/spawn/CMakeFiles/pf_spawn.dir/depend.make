# Empty dependencies file for pf_spawn.
# This may be replaced when dependencies are built.
