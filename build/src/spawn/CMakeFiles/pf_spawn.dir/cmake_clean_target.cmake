file(REMOVE_RECURSE
  "libpf_spawn.a"
)
