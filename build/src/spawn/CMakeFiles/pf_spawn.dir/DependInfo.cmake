
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spawn/policy.cc" "src/spawn/CMakeFiles/pf_spawn.dir/policy.cc.o" "gcc" "src/spawn/CMakeFiles/pf_spawn.dir/policy.cc.o.d"
  "/root/repo/src/spawn/spawn_analysis.cc" "src/spawn/CMakeFiles/pf_spawn.dir/spawn_analysis.cc.o" "gcc" "src/spawn/CMakeFiles/pf_spawn.dir/spawn_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pf_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
