file(REMOVE_RECURSE
  "CMakeFiles/pf_spawn.dir/policy.cc.o"
  "CMakeFiles/pf_spawn.dir/policy.cc.o.d"
  "CMakeFiles/pf_spawn.dir/spawn_analysis.cc.o"
  "CMakeFiles/pf_spawn.dir/spawn_analysis.cc.o.d"
  "libpf_spawn.a"
  "libpf_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
