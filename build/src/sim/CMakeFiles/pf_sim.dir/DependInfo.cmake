
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/addr_index.cc" "src/sim/CMakeFiles/pf_sim.dir/addr_index.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/addr_index.cc.o.d"
  "/root/repo/src/sim/branch_pred.cc" "src/sim/CMakeFiles/pf_sim.dir/branch_pred.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/branch_pred.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/pf_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/sim/CMakeFiles/pf_sim.dir/config.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/config.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/sim/CMakeFiles/pf_sim.dir/core.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/core.cc.o.d"
  "/root/repo/src/sim/spawn_source.cc" "src/sim/CMakeFiles/pf_sim.dir/spawn_source.cc.o" "gcc" "src/sim/CMakeFiles/pf_sim.dir/spawn_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/pf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/spawn/CMakeFiles/pf_spawn.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/pf_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pf_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
