file(REMOVE_RECURSE
  "CMakeFiles/pf_sim.dir/addr_index.cc.o"
  "CMakeFiles/pf_sim.dir/addr_index.cc.o.d"
  "CMakeFiles/pf_sim.dir/branch_pred.cc.o"
  "CMakeFiles/pf_sim.dir/branch_pred.cc.o.d"
  "CMakeFiles/pf_sim.dir/cache.cc.o"
  "CMakeFiles/pf_sim.dir/cache.cc.o.d"
  "CMakeFiles/pf_sim.dir/config.cc.o"
  "CMakeFiles/pf_sim.dir/config.cc.o.d"
  "CMakeFiles/pf_sim.dir/core.cc.o"
  "CMakeFiles/pf_sim.dir/core.cc.o.d"
  "CMakeFiles/pf_sim.dir/spawn_source.cc.o"
  "CMakeFiles/pf_sim.dir/spawn_source.cc.o.d"
  "libpf_sim.a"
  "libpf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
