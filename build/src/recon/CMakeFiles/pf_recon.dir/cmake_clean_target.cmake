file(REMOVE_RECURSE
  "libpf_recon.a"
)
