# Empty compiler generated dependencies file for pf_recon.
# This may be replaced when dependencies are built.
