file(REMOVE_RECURSE
  "CMakeFiles/pf_recon.dir/recon_predictor.cc.o"
  "CMakeFiles/pf_recon.dir/recon_predictor.cc.o.d"
  "libpf_recon.a"
  "libpf_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
