
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/pf_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/wl_bzip2.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_bzip2.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_bzip2.cc.o.d"
  "/root/repo/src/workloads/wl_common.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_common.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_common.cc.o.d"
  "/root/repo/src/workloads/wl_crafty.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_crafty.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_crafty.cc.o.d"
  "/root/repo/src/workloads/wl_gap.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gap.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gap.cc.o.d"
  "/root/repo/src/workloads/wl_gcc.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gcc.cc.o.d"
  "/root/repo/src/workloads/wl_gzip.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gzip.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_gzip.cc.o.d"
  "/root/repo/src/workloads/wl_mcf.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_mcf.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_mcf.cc.o.d"
  "/root/repo/src/workloads/wl_parser.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_parser.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_parser.cc.o.d"
  "/root/repo/src/workloads/wl_perlbmk.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_perlbmk.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_perlbmk.cc.o.d"
  "/root/repo/src/workloads/wl_twolf.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_twolf.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_twolf.cc.o.d"
  "/root/repo/src/workloads/wl_vortex.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_vortex.cc.o.d"
  "/root/repo/src/workloads/wl_vpr.cc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_vpr.cc.o" "gcc" "src/workloads/CMakeFiles/pf_workloads.dir/wl_vpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pf_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
