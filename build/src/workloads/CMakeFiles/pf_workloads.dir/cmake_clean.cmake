file(REMOVE_RECURSE
  "CMakeFiles/pf_workloads.dir/registry.cc.o"
  "CMakeFiles/pf_workloads.dir/registry.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_bzip2.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_bzip2.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_common.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_common.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_crafty.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_crafty.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_gap.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_gap.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_gcc.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_gcc.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_gzip.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_gzip.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_mcf.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_mcf.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_parser.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_parser.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_perlbmk.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_perlbmk.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_twolf.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_twolf.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_vortex.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_vortex.cc.o.d"
  "CMakeFiles/pf_workloads.dir/wl_vpr.cc.o"
  "CMakeFiles/pf_workloads.dir/wl_vpr.cc.o.d"
  "libpf_workloads.a"
  "libpf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
