#!/usr/bin/env sh
# Smoke check: the tier-1 verify flow plus one sweep-engine bench at
# a tenth of the default workload scale. Catches build breaks, test
# regressions and bench-harness crashes in a couple of minutes.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# One bench through the sweep engine; table goes to stdout, timing
# to stderr, CSV into the build tree.
(cd build/bench && PF_BENCH_SCALE=0.1 ./fig09_individual_heuristics)

# Cycle-accounting report: re-verifies the slot-accounting identity
# (buckets sum to cycles x issueWidth) on a live grid and exercises
# the JSON/CSV stats export.
(cd build/tools && ./pf_report --scale 0.05 \
    --json pf_report.smoke.json --csv pf_report.smoke.csv)

echo "smoke: OK"
