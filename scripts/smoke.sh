#!/usr/bin/env sh
# Smoke check: the tier-1 verify flow plus one sweep-engine bench at
# a tenth of the default workload scale. Catches build breaks, test
# regressions and bench-harness crashes in a couple of minutes.
#
# All smoke artifacts share one persistent store (PF_CACHE_DIR), so
# running this script twice exercises the warm path: the second run
# performs zero functional simulations and must produce identical
# tables. The warm-cache CI job asserts exactly that.
set -eu

cd "$(dirname "$0")/.."

PF_CACHE_DIR="${PF_CACHE_DIR:-$PWD/build/.pf-cache}"
export PF_CACHE_DIR

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# One bench through the sweep engine; table goes to stdout, timing
# and cache accounting to stderr, CSV into the build tree.
(cd build/bench && PF_BENCH_SCALE=0.1 ./fig09_individual_heuristics)

# Cycle-accounting report: re-verifies the slot-accounting identity
# (buckets sum to cycles x issueWidth) on a live grid and exercises
# the JSON/CSV stats export.
(cd build/tools && ./pf_report --scale 0.05 \
    --json pf_report.smoke.json --csv pf_report.smoke.csv)

# Every artifact the runs above persisted must validate.
./build/tools/pf_cache verify

echo "smoke: OK"
